# Developer entry points.  The offline-friendly install path is documented
# in README.md ("Install").

.PHONY: install test bench bench-full reproduce examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

# Paper-scale benchmarks (15 services / 19 nodes / 1 h).  Slow.
bench-full:
	REPRO_FULL=1 pytest benchmarks/ --benchmark-only -s

reproduce:
	hyscale-repro reproduce

examples:
	for f in examples/*.py; do echo "=== $$f ==="; python $$f; done

clean:
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
