# Developer entry points.  The offline-friendly install path is documented
# in README.md ("Install").

.PHONY: install lint analyze test test-simsan bench bench-full profile telemetry-check telemetry-scale sanitize sweep-check engine-bench app-bench reproduce examples clean

install:
	pip install -e . || python setup.py develop

# Static analysis: the in-tree determinism/invariant linter is mandatory;
# mypy and ruff run when installed (CI always has them, offline dev boxes
# may not — see docs/dev-tooling.md).
lint:
	PYTHONPATH=src python -m repro.devtools.lint src tests benchmarks examples
	@if command -v ruff >/dev/null 2>&1; then ruff check src tests benchmarks examples; \
	else echo "ruff not installed; skipping (pip install -e .[dev])"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy; \
	else echo "mypy not installed; skipping (pip install -e .[dev])"; fi

# FlowLint + DetFlow (docs/dev-tooling.md): interprocedural call-graph &
# effect analysis over src/repro — hot-path allocation rules,
# parallel-safety rules, determinism-taint rules (DET101-104), registry
# contracts (CON001-003), the ranked repro.flow/2 allocation and
# tainted-path inventories.  Fails on any violation not covered by
# .flowlint-baseline.json, and on a blown wall-time budget (--max-wall:
# 2x the single-parse PR 6 baseline of ~1.7 s); the JSON report (with
# per-phase timings) is uploaded as a CI artifact.
analyze:
	PYTHONPATH=src python -m repro.devtools.flow --report BENCH_static_analysis.json --max-wall 3.4

test: lint analyze
	pytest tests/

# The sanitized lane: every Simulation built by the suite runs under the
# recording SimSan sanitizer (docs/dev-tooling.md); any invariant
# violation fails the owning test.
test-simsan:
	pytest tests/ --simsan

bench:
	pytest benchmarks/ --benchmark-only -s

# Paper-scale benchmarks (15 services / 19 nodes / 1 h).  Slow.
bench-full:
	REPRO_FULL=1 pytest benchmarks/ --benchmark-only -s

# Per-engine-phase wall-time profile (docs/observability.md); the JSON
# report is uploaded as a CI artifact for run-to-run comparison.
profile:
	PYTHONPATH=src python -m repro.cli profile --workload cpu --algorithm hybrid \
		--json BENCH_phase_profile.json

# End-to-end telemetry validation (docs/telemetry.md): runs a short
# instrumented scenario twice, validates the OpenMetrics/JSONL exports with
# the in-tree parsers, and checks byte-determinism; the JSON report is
# uploaded as a CI artifact next to the phase profile.
telemetry-check:
	PYTHONPATH=src python -m repro.telemetry.check --out BENCH_telemetry_snapshot.json

# Monitoring-at-scale probe (docs/telemetry.md "Scaling the observer"):
# sweeps the sampling policies at 24/200/1,000 nodes on the array engine,
# asserting zero scaling-action divergence, >= 5x cheaper simulated
# collection under `adaptive` at 1,000 nodes, and O(series touched)
# sharded exports.  Uploaded as a CI artifact.
telemetry-scale:
	PYTHONPATH=src python -m repro.telemetry.scale_check --out BENCH_telemetry_scale.json

# SimSan end-to-end probe (docs/dev-tooling.md): a fixed-seed scenario runs
# bare and sanitized; the report proves zero violations, no perturbation,
# and measures the sanitizer-off overhead.  Uploaded as a CI artifact.
sanitize:
	PYTHONPATH=src python -m repro.sanitizer.check --out BENCH_sanitizer_report.json

# Parallel-sweep end-to-end probe (docs/parallel.md): asserts a probe sweep
# is byte-identical serial vs parallel, exercises the shard cache
# (cold/warm/version-invalidation), and times the serial-vs-parallel
# speedup.  Uploaded as a CI artifact.
sweep-check:
	PYTHONPATH=src python -m repro.parallel.check --out BENCH_sweep_parallel.json --jobs 2

# Engine-backend end-to-end probe (docs/engine.md): asserts every policy
# is byte-identical on the array vs object engine at paper scale, then
# measures steps/sec on both backends at 24/200/1,000 nodes (>= 5x at
# 1,000 nodes is the acceptance gate).  Uploaded as a CI artifact.
engine-bench:
	PYTHONPATH=src python -m repro.engine_core.check --out BENCH_engine_scale.json

# Application-graph end-to-end probe (docs/app_graphs.md): asserts the
# three-tier app is byte-identical on the array vs object engine at the
# paper's 19-worker scale, and that capping the db tier degrades the
# frontend's ingress SLO monotonically (back-pressure direction).
# Uploaded as a CI artifact.
app-bench:
	PYTHONPATH=src python -m repro.experiments.app_check --out BENCH_app_graph.json

reproduce:
	hyscale-repro reproduce

examples:
	for f in examples/*.py; do echo "=== $$f ==="; python $$f; done

clean:
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
