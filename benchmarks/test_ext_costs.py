"""Extension — pricing the conclusion's economic claim.

"The higher SLA adherence and faster response times attained will allow
cloud data centres to save substantially on power consumption costs and SLA
violation penalties" (Section VII).  The paper never prices this; we do,
with the cost model in :mod:`repro.metrics.costs` (energy integrated over
the run's timeline + contracted per-violation penalties + occupancy).

One nuance the pricing surfaces: HyScale completes requests Kubernetes
*drops*, so under a tight response-time SLA its long tail can out-penalize
Kubernetes' outright failures.  At a contract target comfortably above the
healthy response time (8 s here) the paper's claim holds on both fronts.
"""

import pytest

from repro.experiments.configs import cpu_bound, make_policy, mixed
from repro.experiments.report import format_table
from repro.experiments.runner import Simulation
from repro.metrics import Sla
from repro.metrics.costs import cost_comparison_rows, evaluate_costs

SLA = Sla(response_time_target=8.0, availability_target=0.998, penalty_per_violation=0.01)


def priced_run(spec, algorithm):
    simulation = Simulation.build(
        config=spec.config,
        specs=list(spec.specs),
        loads=list(spec.loads),
        policy=make_policy(algorithm, spec.config),
        workload_label=spec.label,
    )
    simulation.run(spec.duration)
    return evaluate_costs(simulation.collector, SLA)


@pytest.fixture(scope="module")
def cpu_costs():
    spec = cpu_bound("high")
    return {name: priced_run(spec, name) for name in ("kubernetes", "hybrid", "hybridmem")}


@pytest.fixture(scope="module")
def mixed_costs():
    spec = mixed("high")
    return {name: priced_run(spec, name) for name in ("kubernetes", "hybridmem")}


HEADERS = ["algorithm", "kWh", "node-h", "violations", "total", "savings"]


def test_ext_costs_cpu_regenerate(benchmark, cpu_costs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("CPU-bound, high burst — run cost (energy + occupancy + SLA penalties)")
    print(format_table(HEADERS, cost_comparison_rows(cpu_costs)))
    for name, report in cpu_costs.items():
        benchmark.extra_info[f"{name}_total"] = round(report.total_cost, 4)
    # The conclusion's claim, priced: both hybrids run cheaper than K8s.
    assert cpu_costs["hybrid"].total_cost < cpu_costs["kubernetes"].total_cost
    assert cpu_costs["hybridmem"].total_cost < cpu_costs["kubernetes"].total_cost


def test_ext_costs_energy_savings(cpu_costs, mixed_costs):
    """Power specifically: tighter packing and fewer replicas burn less."""
    assert cpu_costs["hybridmem"].energy_kwh < cpu_costs["kubernetes"].energy_kwh
    assert mixed_costs["hybridmem"].energy_kwh < mixed_costs["kubernetes"].energy_kwh


def test_ext_costs_mixed_regenerate(benchmark, mixed_costs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print("Mixed, high burst — run cost")
    print(format_table(HEADERS, cost_comparison_rows(mixed_costs)))
    assert mixed_costs["hybridmem"].total_cost < mixed_costs["kubernetes"].total_cost
