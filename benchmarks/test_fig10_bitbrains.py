"""Figure 10 — request statistics for the Bitbrains experiment.

Paper findings (Section VI-B):

* "HYSCALE_CPU+Mem performs the best because of its ability to scale both
  CPU and memory";
* "Kubernetes, however, outperformed the HYSCALE_CPU because of its
  preference to horizontally scale ... Kubernetes' horizontal scaling
  actions inadvertently allocated more memory to each replica".
"""

import pytest

from benchmarks.conftest import print_figure, run_matrix
from repro.experiments.configs import bitbrains


@pytest.fixture(scope="module")
def runs():
    return run_matrix(bitbrains())


def test_fig10_regenerate(benchmark, runs):
    benchmark.pedantic(lambda: bitbrains().run("hybridmem"), rounds=1, iterations=1)
    print_figure("Figure 10: Bitbrains Rnd replay", runs)
    for name, s in runs.items():
        benchmark.extra_info[f"{name}_rt"] = round(s.avg_response_time, 3)
        benchmark.extra_info[f"{name}_failed_pct"] = round(s.percent_failed, 3)
    # Core Figure 10 orderings, asserted here for --benchmark-only runs.
    assert runs["hybridmem"].percent_failed <= runs["kubernetes"].percent_failed
    assert runs["kubernetes"].percent_failed < runs["hybrid"].percent_failed


def test_fig10_hybridmem_best(runs):
    """Fewest failures outright; response competitive with the best.

    (At default scale hybridmem is also the outright fastest; at paper
    scale Kubernetes' surviving-request mean can edge ahead *because* it
    drops its slow requests, so the response comparison allows a small
    factor while the failure comparison stays strict.)"""
    assert runs["hybridmem"].percent_failed <= min(
        runs["kubernetes"].percent_failed, runs["hybrid"].percent_failed
    )
    best_rt = min(runs["kubernetes"].avg_response_time, runs["hybrid"].avg_response_time)
    assert runs["hybridmem"].avg_response_time <= 1.5 * best_rt


def test_fig10_kubernetes_outperforms_hybrid_cpu(runs):
    """The paper's second finding: K8s' accidental memory provisioning beats
    HYSCALE_CPU's vertical preference on this mixed trace — visible as a
    much lower failure rate (timed-out / dropped requests)."""
    assert runs["kubernetes"].percent_failed < runs["hybrid"].percent_failed


def test_fig10_hybrid_memory_blindness_visible(runs):
    assert runs["hybrid"].percent_failed > 2.0
