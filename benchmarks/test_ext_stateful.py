"""Extension — stateful microservices (Section IV-B's motivating case).

"Horizontally scaling microservices that need to preserve state is
non-trivial as it introduces the need for a consistency model to maintain
state amongst all replicas.  Hence, in these scenarios, the best scaling
decisions are those that bring forth more resources to a particular
container (i.e., vertical scaling)."

This benchmark quantifies that sentence: the same CPU-bound workload, run
stateless and stateful (per-extra-replica consistency overhead + state
transfer on replica creation), under horizontal-only Kubernetes and the
hybrid.  The hybrid's advantage must *widen* on the stateful variant.
"""

import pytest

from benchmarks.conftest import print_figure
from repro.analysis.speedup import response_speedup
from repro.cluster import MicroserviceSpec
from repro.experiments.configs import Scale, _base_config, make_policy
from repro.experiments.runner import run_experiment
from repro.workloads import CPU_BOUND, HighBurstLoad, ServiceLoad


def build(stateful: bool):
    scale = Scale.current()
    config = _base_config(scale, seed=4)
    specs = []
    loads = []
    for i in range(scale.n_services):
        name = f"ledger-{i:02d}"
        specs.append(
            MicroserviceSpec(
                name=name, max_replicas=16, stateful=stateful, state_size_mb=512.0
            )
        )
        loads.append(
            ServiceLoad(
                service=name,
                profile=CPU_BOUND,
                # Spikes stay within one machine's vertical range: the
                # regime Section IV-B argues about.  (Spiking *past* a node
                # with stateful services is hard for every reactive scaler:
                # new replicas pay the state transfer mid-spike.)
                pattern=HighBurstLoad(
                    base=5.0 * scale.rate_scale,
                    peak=12.0 * scale.rate_scale,
                    period=150.0,
                    duty=0.3,
                    phase=150.0 * i / scale.n_services,
                    ramp=6.0,
                ),
            )
        )
    return config, specs, loads, scale.duration


def run_variant(stateful: bool, algorithm: str):
    config, specs, loads, duration = build(stateful)
    return run_experiment(
        config=config,
        specs=specs,
        loads=loads,
        policy=make_policy(algorithm, config),
        duration=duration,
        workload_label=f"stateful={stateful}",
    )


@pytest.fixture(scope="module")
def matrix():
    return {
        (stateful, algorithm): run_variant(stateful, algorithm)
        for stateful in (False, True)
        for algorithm in ("kubernetes", "hybrid")
    }


def test_ext_stateful_regenerate(benchmark, matrix):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_figure(
        "Extension: stateless variant (high burst)",
        {alg: matrix[(False, alg)] for alg in ("kubernetes", "hybrid")},
    )
    print_figure(
        "Extension: stateful variant (consistency overhead + state transfer)",
        {alg: matrix[(True, alg)] for alg in ("kubernetes", "hybrid")},
    )
    stateless_gap = response_speedup(matrix[(False, "hybrid")], matrix[(False, "kubernetes")])
    stateful_gap = response_speedup(matrix[(True, "hybrid")], matrix[(True, "kubernetes")])
    print()
    print(f"hybrid speedup over kubernetes, stateless: {stateless_gap:.2f}x")
    print(f"hybrid speedup over kubernetes, stateful : {stateful_gap:.2f}x")
    benchmark.extra_info["stateless_gap"] = round(stateless_gap, 3)
    benchmark.extra_info["stateful_gap"] = round(stateful_gap, 3)
    # Section IV-B, quantified: state widens the hybrid's advantage.
    assert stateful_gap > stateless_gap
    assert stateful_gap > 1.2


def test_ext_stateful_consistency_costs_kubernetes(matrix):
    """Kubernetes' fleets pay the consistency tax: its stateful runs are
    slower than its stateless runs on identical load."""
    assert (
        matrix[(True, "kubernetes")].avg_response_time
        > matrix[(False, "kubernetes")].avg_response_time
    )


def test_ext_stateful_hybrid_barely_affected(matrix):
    """The hybrid keeps replica counts low, so the consistency model barely
    touches it."""
    hybrid_penalty = (
        matrix[(True, "hybrid")].avg_response_time
        / matrix[(False, "hybrid")].avg_response_time
    )
    k8s_penalty = (
        matrix[(True, "kubernetes")].avg_response_time
        / matrix[(False, "kubernetes")].avg_response_time
    )
    assert hybrid_penalty < k8s_penalty
