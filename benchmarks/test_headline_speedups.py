"""The paper's headline numbers (abstract + Section VI), side by side.

"Results indicated up to 1.49x speedups in response times for our hybrid
algorithms, and 1.69x speedups for our network algorithm under high-burst
network loads" — plus the 10x failure reduction and >= 99.8 % availability.

This benchmark aggregates the whole evaluation matrix and prints our
measured counterparts next to the published values.
"""

import pytest

from benchmarks.conftest import ALL_ALGORITHMS, run_matrix
from repro.analysis.speedup import failure_reduction, response_speedup
from repro.experiments.configs import cpu_bound, network_bound
from repro.experiments.report import format_table


@pytest.fixture(scope="module")
def cpu_runs():
    return {burst: run_matrix(cpu_bound(burst)) for burst in ("low", "high")}


@pytest.fixture(scope="module")
def net_runs():
    return {burst: run_matrix(network_bound(burst), ALL_ALGORITHMS) for burst in ("low", "high")}


def test_headline_table(benchmark, cpu_runs, net_runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    measured = {}

    for burst, paper in (("low", 1.49), ("high", 1.43)):
        best = max(
            response_speedup(cpu_runs[burst][h], cpu_runs[burst]["kubernetes"])
            for h in ("hybrid", "hybridmem")
        )
        measured[f"cpu_{burst}"] = best
        rows.append([f"hybrid speedup, CPU {burst}-burst", f"{paper:.2f}x", f"{best:.2f}x"])

    net_speedup = response_speedup(
        net_runs["high"]["network"], net_runs["high"]["hybrid"]
    )
    measured["network_high"] = net_speedup
    rows.append(["network speedup vs others, high burst", "1.69x", f"{net_speedup:.2f}x"])

    reduction = failure_reduction(
        cpu_runs["low"]["hybrid"], cpu_runs["low"]["kubernetes"]
    )
    rows.append(
        ["failure reduction vs K8s, CPU", "up to 10x", "inf" if reduction == float("inf") else f"{reduction:.1f}x"]
    )

    availability = min(
        cpu_runs[burst][name].availability
        for burst in ("low", "high")
        for name in ("hybrid", "hybridmem")
    )
    rows.append(["HyScale availability floor, CPU", ">= 99.8 %", f"{100 * availability:.2f} %"])

    print()
    print(format_table(["headline metric", "paper", "measured"], rows))
    for key, value in measured.items():
        benchmark.extra_info[key] = round(value, 3)
    # Headline claims, asserted here for --benchmark-only runs.
    assert measured["cpu_low"] > 1.2 and measured["cpu_high"] > 1.2
    assert measured["network_high"] > 1.1


def test_hybrid_speedups_reproduce(cpu_runs):
    for burst in ("low", "high"):
        speedup = max(
            response_speedup(cpu_runs[burst][h], cpu_runs[burst]["kubernetes"])
            for h in ("hybrid", "hybridmem")
        )
        assert speedup > 1.2, f"CPU {burst}-burst hybrid speedup collapsed: {speedup:.2f}x"


def test_network_speedup_reproduces(net_runs):
    """The dedicated scaler clearly beats the hybrids at high burst."""
    speedup = response_speedup(net_runs["high"]["network"], net_runs["high"]["hybrid"])
    assert speedup > 1.1


def test_failure_reduction_reproduces(cpu_runs):
    for burst in ("low", "high"):
        reduction = failure_reduction(
            cpu_runs[burst]["hybrid"], cpu_runs[burst]["kubernetes"]
        )
        assert reduction >= 5.0 or reduction == float("inf")
