"""Decision latency of every algorithm at cluster scale.

Section I: "These resource allocations and reconfigurations must be
determined in real-time, thus limiting the time spent searching the
solution space."  The MONITOR calls ``decide()`` every 5 s; a policy that
cannot decide well inside that period at data-centre scale is not viable.

Unlike the figure benchmarks (single simulation runs), these are true
micro-benchmarks: pytest-benchmark re-runs each ``decide()`` on a frozen
synthetic snapshot of a large cluster — 100 services x up to 16 replicas on
240 nodes — and reports the distribution.
"""

import pytest

from repro.core.disk import DiskHpa
from repro.core.elasticdocker import ElasticDockerPolicy
from repro.core.hyscale import HyScaleCpu
from repro.core.hyscale_mem import HyScaleCpuMem
from repro.core.kubernetes import KubernetesHpa
from repro.core.network import NetworkHpa
from repro.core.view import ClusterView, NodeView, ReplicaView, ServiceView
from repro.cluster.resources import ResourceVector

N_SERVICES = 100
N_NODES = 240


def big_view(seed: int = 0) -> ClusterView:
    """A deterministic, heterogeneous snapshot of a large busy cluster."""
    import numpy as np

    rng = np.random.default_rng(seed)
    node_names = [f"n{i:03d}" for i in range(N_NODES)]
    allocated = {name: ResourceVector.zero() for name in node_names}
    hosted: dict[str, set] = {name: set() for name in node_names}

    services = []
    for s in range(N_SERVICES):
        name = f"svc-{s:03d}"
        replicas = []
        for r in range(int(rng.integers(1, 16))):
            node = node_names[int(rng.integers(0, N_NODES))]
            cpu_request = float(rng.uniform(0.25, 1.5))
            mem_limit = float(rng.uniform(256.0, 1024.0))
            replicas.append(
                ReplicaView(
                    container_id=f"{name}.r{r}",
                    service=name,
                    node=node,
                    booting=False,
                    cpu_request=cpu_request,
                    cpu_usage=float(rng.uniform(0.0, 2.5)),
                    mem_limit=mem_limit,
                    mem_usage=float(rng.uniform(100.0, 1200.0)),
                    net_rate=50.0,
                    net_usage=float(rng.uniform(0.0, 80.0)),
                    disk_quota=50.0,
                    disk_usage=float(rng.uniform(0.0, 80.0)),
                )
            )
            allocated[node] = allocated[node] + ResourceVector(cpu_request, mem_limit, 50.0)
            hosted[node].add(name)
        services.append(
            ServiceView(
                name=name,
                min_replicas=1,
                max_replicas=16,
                target_utilization=0.5,
                base_cpu_request=0.5,
                base_mem_limit=512.0,
                base_net_rate=50.0,
                replicas=tuple(replicas),
            )
        )

    nodes = tuple(
        NodeView(
            name=name,
            capacity=ResourceVector(4.0, 8192.0, 1000.0),
            allocated=allocated[name],
            services=tuple(sorted(hosted[name])),
        )
        for name in node_names
    )
    return ClusterView(now=1000.0, services=tuple(services), nodes=nodes)


VIEW = big_view()

POLICIES = {
    "kubernetes": KubernetesHpa,
    "network": NetworkHpa,
    "disk": DiskHpa,
    "hybrid": HyScaleCpu,
    "hybridmem": HyScaleCpuMem,
    "elasticdocker": ElasticDockerPolicy,
}


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_decide_latency(benchmark, name):
    """decide() on 100 services / 240 nodes must fit the 5 s period with
    orders of magnitude to spare."""
    policy_cls = POLICIES[name]

    def run():
        # Fresh policy per call: interval guards would otherwise mute
        # everything after the first decision.
        return policy_cls().decide(VIEW)

    actions = benchmark(run)
    assert isinstance(actions, list)
    benchmark.extra_info["actions"] = len(actions)
    # The real-time constraint, with a 100x safety margin on the 5 s period.
    assert benchmark.stats["mean"] < 0.05
