"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark module regenerates one table or figure from the paper:
it runs the experiment(s), prints the same rows/series the paper reports
(visible with ``pytest benchmarks/ --benchmark-only -s`` or in the captured
output), and asserts the published *shape* — orderings and rough factors,
not absolute numbers (our substrate is a simulator, the authors' was a
24-node testbed).

Experiments are executed once per module via cached fixtures;
``benchmark.pedantic(..., rounds=1)`` wraps the run so pytest-benchmark
records wall-clock cost without re-executing hour-long simulations.
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import ExperimentSpec
from repro.metrics.summary import RunSummary

#: The three algorithms the paper's Figures 6-7 compare (the network scaler
#: is evaluated on network-bound loads, Figure 8).
CORE_ALGORITHMS = ("kubernetes", "hybrid", "hybridmem")
ALL_ALGORITHMS = ("kubernetes", "hybrid", "hybridmem", "network")


def run_matrix(spec: ExperimentSpec, algorithms=CORE_ALGORITHMS) -> dict[str, RunSummary]:
    """Run one workload under several algorithms."""
    return {name: spec.run(name) for name in algorithms}


def print_figure(title: str, summaries: dict[str, RunSummary]) -> None:
    """Emit the paper-style comparison table for one figure."""
    from repro.experiments.report import comparison_table

    print()
    print(comparison_table(summaries, title=title))


@pytest.fixture(scope="session")
def benchmark_banner():
    print("\n=== HyScale reproduction benchmarks (REPRO_FULL=1 for paper scale) ===")
    return True
