"""Figure 8 — network-bound experiments.

Paper findings (Section VI-A):

* "our network scaling algorithm outperformed the others overall";
* the CPU-driven algorithms "still manage to stay competitive under
  low-burst stable workloads, due to the moderate use of CPU caused by
  networking system calls";
* under high burst "dedicated network scaling shows a clear advantage"
  (response times dropping by up to 59.22 %).

Known deviation (see EXPERIMENTS.md): in our substrate Kubernetes'
accidental horizontal response to syscall CPU keeps it closer to the
network scaler than the paper's testbed showed; the paper's
"Kubernetes slowest" ordering is therefore asserted only against the
dedicated network scaler, not against the hybrids.
"""

import pytest

from benchmarks.conftest import ALL_ALGORITHMS, print_figure, run_matrix
from repro.experiments.configs import network_bound


@pytest.fixture(scope="module")
def low():
    return run_matrix(network_bound("low"), ALL_ALGORITHMS)


@pytest.fixture(scope="module")
def high():
    return run_matrix(network_bound("high"), ALL_ALGORITHMS)


def test_fig8a_regenerate(benchmark, low):
    benchmark.pedantic(lambda: network_bound("low").run("network"), rounds=1, iterations=1)
    print_figure("Figure 8a: network-bound, low burst", low)
    for name, s in low.items():
        benchmark.extra_info[f"{name}_rt"] = round(s.avg_response_time, 3)
    assert min(low, key=lambda n: low[n].avg_response_time) == "network"


def test_fig8b_regenerate(benchmark, high):
    benchmark.pedantic(lambda: network_bound("high").run("kubernetes"), rounds=1, iterations=1)
    print_figure("Figure 8b: network-bound, high burst", high)
    assert min(high, key=lambda n: high[n].avg_response_time) == "network"


def test_fig8_network_scaler_fastest(low, high):
    for runs in (low, high):
        best = min(runs, key=lambda n: runs[n].avg_response_time)
        assert best == "network", f"network scaler must win; got {best}"


def test_fig8_others_competitive_at_low_burst(low):
    """'They still manage to stay competitive under low-burst stable
    workloads' — within ~25 % of the dedicated scaler."""
    reference = low["network"].avg_response_time
    for name in ("kubernetes", "hybrid", "hybridmem"):
        assert low[name].avg_response_time < 1.35 * reference


def test_fig8_network_advantage_grows_with_burst(low, high):
    """The dedicated scaler's edge over the hybrids widens at high burst."""
    def gap(runs):
        return runs["hybrid"].avg_response_time / runs["network"].avg_response_time

    assert gap(high) > gap(low)


def test_fig8_network_scaler_scales_on_bandwidth(high):
    assert high["network"].horizontal_scale_ups > 0
    # The hybrids never add replicas for bandwidth (their signal is CPU).
    assert high["hybrid"].horizontal_scale_ups == 0
