"""Section III-B — memory scaling findings (reported as text in the paper).

Findings reproduced as a table:

* equivalent vertical/horizontal memory splits perform the same while
  neither swaps;
* "increasing memory limits did not speed up processing times";
* performance "drastically degraded" once the working set forces swap;
* "horizontally scaled instances are much more likely to swap compared to a
  single vertically scaled instance, given the same amount of memory"
  (the duplicated application footprint).
"""

import pytest

from repro.experiments.report import memory_table
from repro.experiments.section3 import memory_scaling_scenario, memory_scaling_table


@pytest.fixture(scope="module")
def table():
    return memory_scaling_table()


@pytest.fixture(scope="module")
def rows(table):
    return {m.label: m for m in table}


def test_sec3b_regenerate(benchmark, table):
    benchmark.pedantic(
        lambda: memory_scaling_scenario("probe", 1, 512.0), rounds=1, iterations=1
    )
    print()
    print(memory_table(table, title="Section III-B: memory vertical vs horizontal scaling"))
    for row in table:
        benchmark.extra_info[row.label] = round(row.avg_response_time, 2)
    # Core III-B findings, asserted here as well so --benchmark-only runs them.
    rows = {m.label: m for m in table}
    assert rows["horizontal-2x256"].swapped and not rows["vertical-512"].swapped


def test_sec3b_same_total_memory_horizontal_swaps(rows):
    assert not rows["vertical-512"].swapped
    assert rows["horizontal-2x256"].swapped


def test_sec3b_equivalent_when_no_swap(rows):
    assert rows["horizontal-2x448"].avg_response_time == pytest.approx(
        rows["vertical-512"].avg_response_time, rel=0.35
    )


def test_sec3b_more_memory_no_speedup(rows):
    assert rows["vertical-1024"].avg_response_time == pytest.approx(
        rows["vertical-512"].avg_response_time, rel=0.05
    )


def test_sec3b_swap_degrades_drastically(rows):
    assert rows["vertical-starved-224"].avg_response_time > 3.0 * rows["vertical-512"].avg_response_time
