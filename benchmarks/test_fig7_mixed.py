"""Figure 7 — mixed CPU+memory experiments.

Paper findings (Section VI-A):

* "Kubernetes and HYSCALE_CPU showed significant percentages of failed
  requests, mainly due to the lack of consideration for memory usage";
* Figure 7a ("interesting observation"): Kubernetes beats HYSCALE_CPU at low
  burst — horizontal scale-outs *accidentally* add memory, while
  HYSCALE_CPU's vertical preference leaves its replicas swapping;
* Figure 7b: response times of the memory-blind algorithms are "skewed"
  because they effectively handle fewer requests ("up to 23.67 % less");
* HYSCALE_CPU+Mem is the only algorithm that stays healthy on both axes.
"""

import pytest

from benchmarks.conftest import print_figure, run_matrix
from repro.experiments.configs import mixed


@pytest.fixture(scope="module")
def low():
    return run_matrix(mixed("low"))


@pytest.fixture(scope="module")
def high():
    return run_matrix(mixed("high"))


def test_fig7a_regenerate(benchmark, low):
    benchmark.pedantic(lambda: mixed("low").run("hybridmem"), rounds=1, iterations=1)
    print_figure("Figure 7a: mixed CPU+memory, low burst", low)
    for name, s in low.items():
        benchmark.extra_info[f"{name}_rt"] = round(s.avg_response_time, 3)
        benchmark.extra_info[f"{name}_failed_pct"] = round(s.percent_failed, 3)
    # The paper's 'interesting observation', asserted for --benchmark-only.
    assert low["kubernetes"].avg_response_time < low["hybrid"].avg_response_time


def test_fig7b_regenerate(benchmark, high):
    benchmark.pedantic(lambda: mixed("high").run("hybrid"), rounds=1, iterations=1)
    print_figure("Figure 7b: mixed CPU+memory, high burst", high)
    assert high["hybridmem"].percent_failed <= min(
        high["kubernetes"].percent_failed, high["hybrid"].percent_failed
    )


def test_fig7a_kubernetes_beats_hybrid_cpu(low):
    """The paper's 'interesting observation' at low burst."""
    assert low["kubernetes"].avg_response_time < low["hybrid"].avg_response_time


def test_fig7_hybridmem_fails_least(low, high):
    for runs in (low, high):
        assert runs["hybridmem"].percent_failed <= min(
            runs["kubernetes"].percent_failed, runs["hybrid"].percent_failed
        )


def test_fig7b_memory_blind_drop_requests(high):
    """Figure 7b's 'significant difference in failed requests': the
    memory-blind hybrid drops a large share (paper: up to 23.67 % fewer
    requests effectively handled)."""
    assert high["hybrid"].percent_failed > 10.0
    assert high["hybridmem"].percent_failed < 5.0


def test_fig7b_failure_gap_vs_7a(low, high):
    """'Note the significant difference in failed requests between 7a and
    7b' (the figure caption)."""
    assert high["hybrid"].percent_failed > low["hybrid"].percent_failed


def test_fig7_hybridmem_competitive_response(low, high):
    """HYSCALE_CPU+Mem stays within a small factor of Kubernetes' response
    time at both bursts — while, unlike Kubernetes, dropping (almost) no
    requests.  (At default scale it is outright faster at low burst; at
    paper scale, where Kubernetes sheds more of its slow requests, the
    honest-response comparison narrows to a near-tie.)"""
    assert low["hybridmem"].avg_response_time < 1.5 * low["kubernetes"].avg_response_time
    assert high["hybridmem"].avg_response_time < 1.5 * high["kubernetes"].avg_response_time
    assert low["hybridmem"].percent_failed <= low["kubernetes"].percent_failed
    assert high["hybridmem"].percent_failed <= high["kubernetes"].percent_failed
