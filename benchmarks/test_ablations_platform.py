"""Platform ablations: placement and routing choices.

Two knobs the paper's platform fixes implicitly, isolated here:

* **Placement** — Section I frames packing as the power lever ("Increasing
  the efficiency of resource utilization on each machine, while minimizing
  the number of machines used, presents another way to lower the overall
  power consumption cost", immediately warning that ignoring machine limits
  "can lead to overloaded machines").  Bin-packing vs. spreading is exactly
  that trade: fewer powered machines vs. co-location contention.
* **Routing** — vertical scaling creates *heterogeneous* replicas (one fat,
  one thin).  Round-robin sends them equal traffic and drowns the thin one;
  the platform defaults to capacity-weighted routing for this reason.
"""

import pytest

from repro.cluster.placement import BinPackPlacement, SpreadPlacement
from repro.experiments.configs import cpu_bound, make_policy
from repro.experiments.report import format_table
from repro.experiments.runner import Simulation
from repro.metrics import Sla
from repro.metrics.costs import evaluate_costs
from repro.platform.load_balancer import RoutingPolicy


def run_variant(placement=None, routing=RoutingPolicy.WEIGHTED_CPU, algorithm="hybrid"):
    spec = cpu_bound("high")
    simulation = Simulation.build(
        config=spec.config,
        specs=list(spec.specs),
        loads=list(spec.loads),
        policy=make_policy(algorithm, spec.config),
        workload_label=spec.label,
        placement=placement,
        routing=routing,
    )
    summary = simulation.run(spec.duration)
    costs = evaluate_costs(simulation.collector, Sla(response_time_target=8.0))
    return summary, costs


@pytest.fixture(scope="module")
def placement_runs():
    return {
        "spread": run_variant(placement=SpreadPlacement()),
        "binpack": run_variant(placement=BinPackPlacement()),
    }


@pytest.fixture(scope="module")
def routing_runs():
    return {
        "weighted": run_variant(routing=RoutingPolicy.WEIGHTED_CPU),
        "round-robin": run_variant(routing=RoutingPolicy.ROUND_ROBIN),
        "least-outstanding": run_variant(routing=RoutingPolicy.LEAST_OUTSTANDING),
    }


def test_ablation_placement(benchmark, placement_runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for name, (summary, costs) in sorted(placement_runs.items()):
        rows.append(
            [
                name,
                f"{summary.avg_response_time:.3f}",
                f"{summary.percent_failed:.2f}",
                f"{costs.node_hours:.2f}",
                f"{costs.energy_kwh:.3f}",
            ]
        )
    print()
    print("Placement ablation (HyScale, CPU-bound high burst)")
    print(format_table(["placement", "avg resp (s)", "failed %", "node-h", "kWh"], rows))

    spread_summary, spread_costs = placement_runs["spread"]
    binpack_summary, binpack_costs = placement_runs["binpack"]
    benchmark.extra_info["spread_rt"] = round(spread_summary.avg_response_time, 3)
    benchmark.extra_info["binpack_rt"] = round(binpack_summary.avg_response_time, 3)
    # The Section I trade-off: packing powers fewer machine-hours...
    assert binpack_costs.node_hours <= spread_costs.node_hours + 1e-9
    # ...while spreading serves at least as fast (less co-location).
    assert spread_summary.avg_response_time <= binpack_summary.avg_response_time * 1.05


def test_ablation_routing(benchmark, routing_runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [name, f"{s.avg_response_time:.3f}", f"{s.p95_response_time:.2f}", f"{s.percent_failed:.2f}"]
        for name, (s, _) in sorted(routing_runs.items())
    ]
    print()
    print("Routing ablation (HyScale, CPU-bound high burst)")
    print(format_table(["routing", "avg resp (s)", "p95 (s)", "failed %"], rows))

    weighted = routing_runs["weighted"][0]
    rr = routing_runs["round-robin"][0]
    benchmark.extra_info["weighted_rt"] = round(weighted.avg_response_time, 3)
    benchmark.extra_info["rr_rt"] = round(rr.avg_response_time, 3)
    # Heterogeneous replicas make capacity-blind round-robin slower.
    assert weighted.avg_response_time < rr.avg_response_time


def test_ablation_routing_tail(routing_runs):
    """Round-robin's damage concentrates in the tail (the thin replica's
    queue), not only the mean."""
    weighted = routing_runs["weighted"][0]
    rr = routing_runs["round-robin"][0]
    assert weighted.p95_response_time <= rr.p95_response_time
