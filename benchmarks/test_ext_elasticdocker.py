"""Extension — the ElasticDocker comparator and the paper's fairness critique.

Section II-A: ElasticDocker (vertical scaling + live migration) was "shown
to outperform Kubernetes by 37.63%.  The main flaw with this solution is
the difference in monitoring and scaling periods between ElasticDocker and
Kubernetes.  ElasticDocker polls resource usage and scales every 4 seconds,
while Kubernetes scales every 30 seconds, giving ElasticDocker an unfair
advantage to react to fluctuating workloads more quickly."

Having implemented the comparator (:mod:`repro.core.elasticdocker`), we can
*quantify* that critique:

1. replicate the original claim — ElasticDocker@4s vs Kubernetes@30s on a
   load that fits single machines: a large win;
2. level the periods at the paper's 5 s: the win shrinks — part of
   ElasticDocker's reported advantage was the measurement setup;
3. and the paper's own point: HyScale's hybrid beats ElasticDocker anyway,
   because vertical scaling plus migration still cannot exceed one
   machine's capacity.
"""

import pytest

from repro.analysis.speedup import response_speedup
from repro.experiments.configs import cpu_bound, make_policy
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment


def run_with_period(algorithm, period, burst="low"):
    spec = cpu_bound(burst)
    config = spec.config.with_overrides(monitor_period=period)
    return run_experiment(
        config=config,
        specs=list(spec.specs),
        loads=list(spec.loads),
        policy=make_policy(algorithm, config),
        duration=spec.duration,
        workload_label=f"{spec.label}@{period:.0f}s",
    )


@pytest.fixture(scope="module")
def fairness_matrix():
    return {
        "elasticdocker@4s": run_with_period("elasticdocker", 4.0),
        "kubernetes@30s": run_with_period("kubernetes", 30.0),
        "elasticdocker@5s": run_with_period("elasticdocker", 5.0),
        "kubernetes@5s": run_with_period("kubernetes", 5.0),
        "hybrid@5s": run_with_period("hybrid", 5.0),
    }


def test_ext_elasticdocker_regenerate(benchmark, fairness_matrix):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    m = fairness_matrix
    unfair = response_speedup(m["elasticdocker@4s"], m["kubernetes@30s"])
    fair = response_speedup(m["elasticdocker@5s"], m["kubernetes@5s"])
    hyscale = response_speedup(m["hybrid@5s"], m["elasticdocker@5s"])
    print()
    print(
        format_table(
            ["comparison", "paper says", "measured"],
            [
                ["ED@4s vs K8s@30s (their setup)", "37.63 % better (1.60x)", f"{unfair:.2f}x"],
                ["ED@5s vs K8s@5s (fair periods)", "'unfair advantage' removed", f"{fair:.2f}x"],
                ["HyScale vs ED, equal periods", "hybrid should win", f"{hyscale:.2f}x"],
            ],
        )
    )
    print()
    print(
        format_table(
            ["run", "avg resp (s)", "failed %", "vertical ops", "migrations incl."],
            [
                [name, f"{s.avg_response_time:.3f}", f"{s.percent_failed:.2f}",
                 str(s.vertical_scale_ops), "-"]
                for name, s in sorted(fairness_matrix.items())
            ],
        )
    )
    benchmark.extra_info["unfair_speedup"] = round(unfair, 3)
    benchmark.extra_info["fair_speedup"] = round(fair, 3)
    benchmark.extra_info["hyscale_vs_ed"] = round(hyscale, 3)
    # The original claim reproduces under the original (unfair) setup...
    assert unfair > 1.2
    # ...and HyScale still beats the vertical-only comparator when fair.
    assert hyscale > 1.0


def test_ext_elasticdocker_fairness_gap(fairness_matrix):
    """Part of ElasticDocker's reported edge came from the period mismatch:
    levelling the periods must shrink its advantage."""
    m = fairness_matrix
    unfair = response_speedup(m["elasticdocker@4s"], m["kubernetes@30s"])
    fair = response_speedup(m["elasticdocker@5s"], m["kubernetes@5s"])
    assert fair < unfair


def test_ext_elasticdocker_is_vertical_only(fairness_matrix):
    for name, summary in fairness_matrix.items():
        if name.startswith("elasticdocker"):
            assert summary.horizontal_scale_ups == 0
            assert summary.horizontal_scale_downs == 0
