"""Extension — disk-bound experiments (the paper's declared future work).

Section VI: "Additional computing resource types, such as disk I/O, are
also supported, however, they are not currently implemented and will be
part of future works."  We implement the axis (DESIGN.md §8) and evaluate
it with the paper's own method: the same fleet under every algorithm, low
and high burst.

Expected shape, by the same physics as Figure 8: spindle bandwidth grows
only by replication across machines, and a request waiting on disk burns no
CPU — so CPU-driven scalers are blind, and the dedicated disk scaler wins
under burst.
"""

import pytest

from benchmarks.conftest import print_figure
from repro.experiments.configs import disk_bound

ALGORITHMS = ("kubernetes", "hybrid", "hybridmem", "disk")


@pytest.fixture(scope="module")
def low():
    spec = disk_bound("low")
    return {name: spec.run(name) for name in ALGORITHMS}


@pytest.fixture(scope="module")
def high():
    spec = disk_bound("high")
    return {name: spec.run(name) for name in ALGORITHMS}


def test_ext_disk_low_regenerate(benchmark, low):
    benchmark.pedantic(lambda: disk_bound("low").run("disk"), rounds=1, iterations=1)
    print_figure("Extension: disk-bound, low burst", low)
    for name, s in low.items():
        benchmark.extra_info[f"{name}_rt"] = round(s.avg_response_time, 3)
    # Everyone copes while a single spindle covers the stable load.
    worst = max(s.avg_response_time for s in low.values())
    best = min(s.avg_response_time for s in low.values())
    assert worst < 2.0 * best


def test_ext_disk_high_regenerate(benchmark, high):
    benchmark.pedantic(lambda: disk_bound("high").run("hybrid"), rounds=1, iterations=1)
    print_figure("Extension: disk-bound, high burst", high)
    # The dedicated scaler must clearly beat the vertical-first hybrids.
    assert high["disk"].avg_response_time < high["hybrid"].avg_response_time
    assert high["disk"].avg_response_time < high["hybridmem"].avg_response_time


def test_ext_disk_hybrids_blind(high):
    """Vertical scaling cannot add spindles; the hybrids never scale out."""
    assert high["hybrid"].horizontal_scale_ups == 0
    assert high["disk"].horizontal_scale_ups > 0


def test_ext_disk_advantage_grows_with_burst(low, high):
    def gap(runs):
        return runs["hybrid"].avg_response_time / runs["disk"].avg_response_time

    assert gap(high) > gap(low)
