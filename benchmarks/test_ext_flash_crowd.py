"""Extension — an unannounced flash crowd.

The paper's high-burst pattern repeats, so a scaler (or an operator) can
learn it.  A flash crowd happens once: a viral link sends traffic from
baseline to many times capacity on an exponential ramp and never comes
back.  This stresses pure reaction speed — the regime where the paper's
argument for fast, fine-grained vertical scaling is sharpest — and probes
what the predictive extension can and cannot do without a season to learn.
"""

import pytest

from repro import SimulationConfig
from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig
from repro.experiments.configs import make_policy
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment
from repro.workloads import CPU_BOUND, FlashCrowdLoad, ServiceLoad

ALGORITHMS = ("kubernetes", "hybrid", "hybridmem", "predictive", "elasticdocker")


def crowd_spec():
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=8), seed=9)
    specs = [MicroserviceSpec(name="frontpage", max_replicas=16)]
    loads = [
        ServiceLoad(
            "frontpage",
            CPU_BOUND,
            # 2 req/s baseline surging toward ~36 req/s (~9 cores of work):
            # far beyond one machine, arriving within ~1 minute.
            FlashCrowdLoad(base=2.0, peak=36.0, onset=60.0, rise_tau=12.0, decay_tau=90.0),
        )
    ]
    return config, specs, loads


@pytest.fixture(scope="module")
def runs():
    config, specs, loads = crowd_spec()
    return {
        name: run_experiment(
            config=config,
            specs=specs,
            loads=loads,
            policy=make_policy(name, config),
            duration=360.0,
            workload_label="flash-crowd",
        )
        for name in ALGORITHMS
    }


def test_ext_flash_crowd_regenerate(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        [name, f"{s.avg_response_time:.3f}", f"{s.p95_response_time:.2f}",
         f"{s.percent_failed:.2f}", str(s.horizontal_scale_ups)]
        for name, s in sorted(runs.items())
    ]
    print()
    print("Extension: unannounced flash crowd (2 -> 36 req/s in ~1 min)")
    print(format_table(["policy", "avg resp (s)", "p95 (s)", "failed %", "scale ups"], rows))
    for name, s in runs.items():
        benchmark.extra_info[f"{name}_rt"] = round(s.avg_response_time, 3)
    # The hybrids ride the ramp better than the baseline.
    assert runs["hybrid"].avg_response_time < runs["kubernetes"].avg_response_time
    assert runs["hybridmem"].avg_response_time < runs["kubernetes"].avg_response_time


def test_ext_flash_crowd_vertical_only_ceiling(runs):
    """A crowd beyond one machine defeats vertical-plus-migration."""
    assert runs["elasticdocker"].percent_failed > runs["hybrid"].percent_failed
    assert runs["elasticdocker"].avg_response_time > runs["hybrid"].avg_response_time


def test_ext_flash_crowd_predictive_rides_the_ramp(runs):
    """With no season to learn, the trend term is all the predictor has —
    it must at least not lose to its reactive parent on the ramp."""
    assert (
        runs["predictive"].avg_response_time
        <= runs["hybridmem"].avg_response_time * 1.10
    )


def test_ext_flash_crowd_everyone_survives(runs):
    for name in ("kubernetes", "hybrid", "hybridmem", "predictive"):
        assert runs[name].availability > 0.9, f"{name} collapsed under the crowd"
