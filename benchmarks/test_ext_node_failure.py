"""Extension — node-failure resilience (dynamic fleet, paper future work).

"We also aim to support features such as the dynamic addition and removal
of machines" (Section VII).  This benchmark kills a loaded machine mid-run
under each algorithm and measures how user-perceived service degrades and
recovers: the in-flight requests on the dead box are lost (removal
failures), and the autoscaler must rebuild capacity elsewhere.
"""

import pytest

from benchmarks.conftest import print_figure
from repro.experiments.configs import cpu_bound, make_policy
from repro.experiments.runner import Simulation

ALGORITHMS = ("kubernetes", "hybrid", "hybridmem")
CRASH_AT = 80.0


def run_with_crash(algorithm):
    spec = cpu_bound("low")
    simulation = Simulation.build(
        config=spec.config,
        specs=list(spec.specs),
        loads=list(spec.loads),
        policy=make_policy(algorithm, spec.config),
        workload_label=f"{spec.label}+crash",
    )
    simulation.faults.schedule_crash(CRASH_AT, "node-00")
    summary = simulation.run(spec.duration)
    return summary, simulation


@pytest.fixture(scope="module")
def runs():
    return {name: run_with_crash(name) for name in ALGORITHMS}


def test_ext_node_failure_regenerate(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_figure(
        f"Extension: CPU-bound low burst with node-00 crashing at t={CRASH_AT:.0f}s",
        {name: summary for name, (summary, _) in runs.items()},
    )
    for name, (summary, sim) in runs.items():
        benchmark.extra_info[f"{name}_availability"] = round(summary.availability, 4)
        # The crash happened and cost something under every algorithm.
        assert sim.faults.log.crashes
        assert summary.removal_failures >= sim.faults.log.lost_requests
    # Every algorithm keeps the fleet serving after losing a machine.
    for name, (summary, _) in runs.items():
        assert summary.availability > 0.90, f"{name} collapsed after the crash"


def test_ext_node_failure_recovery(runs):
    """Replica floors are restored on the surviving machines."""
    for name, (_, sim) in runs.items():
        for service in sim.cluster.services.values():
            assert service.replica_count >= service.spec.min_replicas, (
                f"{name}: {service.name} below min replicas after crash"
            )


def test_ext_node_failure_hybrids_stay_fast(runs):
    """The paper's CPU-bound ordering survives a machine loss."""
    k8s = runs["kubernetes"][0]
    for hybrid in ("hybrid", "hybridmem"):
        assert runs[hybrid][0].avg_response_time < k8s.avg_response_time
