"""Seed robustness — the headline orderings are not one lucky draw.

The paper averages each experiment over 5 runs; we check that the Figure 6
orderings (hybrids faster than Kubernetes, hybrids failing less) hold for
every seed in a small sweep, and that the speedup's spread is sane.
"""

import statistics

import pytest

from repro.analysis.speedup import response_speedup
from repro.experiments.configs import cpu_bound

SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def sweep():
    results = {}
    for seed in SEEDS:
        spec = cpu_bound("high", seed=seed)
        results[seed] = {name: spec.run(name) for name in ("kubernetes", "hybrid")}
    return results


def test_seed_robustness_regenerate(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    speedups = []
    print()
    for seed, runs in sorted(sweep.items()):
        speedup = response_speedup(runs["hybrid"], runs["kubernetes"])
        speedups.append(speedup)
        print(
            f"seed {seed}: k8s rt={runs['kubernetes'].avg_response_time:.3f}s "
            f"fail={runs['kubernetes'].percent_failed:.2f}% | "
            f"hybrid rt={runs['hybrid'].avg_response_time:.3f}s "
            f"fail={runs['hybrid'].percent_failed:.2f}% | speedup {speedup:.2f}x"
        )
    mean = statistics.mean(speedups)
    spread = max(speedups) - min(speedups)
    print(f"mean speedup {mean:.2f}x, spread {spread:.2f}")
    benchmark.extra_info["mean_speedup"] = round(mean, 3)
    benchmark.extra_info["spread"] = round(spread, 3)
    # The ordering holds for every seed, not just the default one.
    assert all(s > 1.1 for s in speedups)


def test_seed_robustness_failures(sweep):
    for seed, runs in sweep.items():
        assert runs["hybrid"].percent_failed <= runs["kubernetes"].percent_failed, (
            f"failure ordering flipped at seed {seed}"
        )


def test_seed_robustness_arrivals_differ(sweep):
    totals = {runs["hybrid"].total_requests for runs in sweep.values()}
    assert len(totals) == len(SEEDS), "seeds must produce distinct workloads"
