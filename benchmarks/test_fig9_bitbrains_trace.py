"""Figure 9 — the Bitbrains Rnd workload trace (CPU and memory aggregate).

The paper plots the trace's CPU % and memory usage "averaged over all
microservices": CPU is jagged with repeated spikes (high-burst-like),
memory is smoother.  This benchmark regenerates our synthetic stand-in and
asserts those published characteristics.
"""

import numpy as np
import pytest

from repro.experiments.configs import Scale
from repro.experiments.report import trace_series_table
from repro.workloads.bitbrains import generate_bitbrains_trace


@pytest.fixture(scope="module")
def trace():
    scale = Scale.current()
    return generate_bitbrains_trace(
        n_vms=scale.bitbrains_vms,
        duration=scale.duration,
        interval=max(10.0, scale.duration / 120.0),
        seed=0,
    )


def test_fig9_regenerate(benchmark, trace):
    benchmark.pedantic(
        lambda: generate_bitbrains_trace(n_vms=50, duration=600.0, interval=30.0, seed=0),
        rounds=1,
        iterations=1,
    )
    cpu = trace.aggregate_cpu()
    mem = trace.aggregate_mem()
    print()
    print(
        trace_series_table(
            list(trace.times()),
            list(cpu),
            list(mem),
            stride=max(1, trace.n_samples // 20),
            title=f"Figure 9: Bitbrains Rnd aggregate ({trace.n_vms} VMs, synthetic)",
        )
    )
    benchmark.extra_info["cpu_mean_pct"] = round(float(cpu.mean()), 2)
    benchmark.extra_info["cpu_peak_pct"] = round(float(cpu.max()), 2)
    benchmark.extra_info["mem_mean_pct"] = round(float(mem.mean() * 100), 2)


def test_fig9_cpu_is_bursty(trace):
    cpu = trace.aggregate_cpu()
    assert cpu.max() > 1.5 * np.median(cpu), "aggregate CPU must show spikes"


def test_fig9_memory_smoother_than_cpu(trace):
    cpu = trace.aggregate_cpu()
    mem = trace.aggregate_mem()
    cpu_roughness = np.abs(np.diff(cpu)).mean() / max(float(cpu.mean()), 1e-9)
    mem_roughness = np.abs(np.diff(mem)).mean() / max(float(mem.mean()), 1e-9)
    assert cpu_roughness > 2.0 * mem_roughness


def test_fig9_levels_plausible(trace):
    """Managed-hosting VMs idle low on CPU with moderate memory residency."""
    assert 3.0 < float(trace.aggregate_cpu().mean()) < 60.0
    assert 0.2 < float(trace.aggregate_mem().mean()) < 0.8
