"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper — these isolate the mechanisms the paper argues
for, so a reader can see *why* each knob exists:

* **anti-thrash intervals** (Section IV-A1): disabling the scale-down guard
  makes Kubernetes churn replicas;
* **monitor cadence** (the ElasticDocker critique in Section II-A: unequal
  monitoring periods are unfair): the paper's 5 s period reacts better than
  the Kubernetes 30 s default under bursts;
* **hybrid vs. purely-horizontal and purely-vertical scaling** (Section I's
  central claim): vertical-only hits the single-machine wall, horizontal-
  only pays replication overheads — the hybrid takes both benefits;
* **memory-bound loads** (Section VI): why the paper had to omit Kubernetes
  and HYSCALE_CPU results — memory-blind scaling collapses.
"""

import pytest

from repro.core.hyscale import HyScaleCpu
from repro.core.hyscale_mem import HyScaleCpuMem
from repro.core.kubernetes import KubernetesHpa
from repro.experiments.configs import cpu_bound, memory_bound
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment


def run_with_policy(spec, policy):
    return run_experiment(
        config=spec.config,
        specs=list(spec.specs),
        loads=list(spec.loads),
        policy=policy,
        duration=spec.duration,
        workload_label=spec.label,
    )


@pytest.fixture(scope="module")
def guard_ablation():
    spec = cpu_bound("high")
    guarded = run_with_policy(spec, KubernetesHpa(scale_up_interval=3.0, scale_down_interval=50.0))
    unguarded = run_with_policy(spec, KubernetesHpa(scale_up_interval=0.0, scale_down_interval=0.0))
    return guarded, unguarded


def test_ablation_interval_guard(benchmark, guard_ablation):
    guarded, unguarded = guard_ablation
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["variant", "scale downs", "removal fail %", "avg resp (s)"],
            [
                ["k8s, paper intervals (3s/50s)", str(guarded.horizontal_scale_downs),
                 f"{guarded.percent_removal_failures:.2f}", f"{guarded.avg_response_time:.3f}"],
                ["k8s, no intervals", str(unguarded.horizontal_scale_downs),
                 f"{unguarded.percent_removal_failures:.2f}", f"{unguarded.avg_response_time:.3f}"],
            ],
        )
    )
    benchmark.extra_info["guarded_downs"] = guarded.horizontal_scale_downs
    benchmark.extra_info["unguarded_downs"] = unguarded.horizontal_scale_downs
    # Removing the guard causes scale-down churn (thrashing).
    assert unguarded.horizontal_scale_downs > guarded.horizontal_scale_downs
    assert unguarded.percent_removal_failures >= guarded.percent_removal_failures


@pytest.fixture(scope="module")
def cadence_ablation():
    fast_spec = cpu_bound("high")
    slow_spec = cpu_bound("high")
    fast = run_with_policy(fast_spec, HyScaleCpu())
    slow = run_experiment(
        config=slow_spec.config.with_overrides(monitor_period=30.0),
        specs=list(slow_spec.specs),
        loads=list(slow_spec.loads),
        policy=HyScaleCpu(),
        duration=slow_spec.duration,
        workload_label=slow_spec.label,
    )
    return fast, slow


def test_ablation_monitor_cadence(benchmark, cadence_ablation):
    fast, slow = cadence_ablation
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["monitor period", "avg resp (s)", "p95 (s)", "failed %"],
            [
                ["5 s (paper experiments)", f"{fast.avg_response_time:.3f}",
                 f"{fast.p95_response_time:.3f}", f"{fast.percent_failed:.2f}"],
                ["30 s (Kubernetes default)", f"{slow.avg_response_time:.3f}",
                 f"{slow.p95_response_time:.3f}", f"{slow.percent_failed:.2f}"],
            ],
        )
    )
    benchmark.extra_info["rt_5s"] = round(fast.avg_response_time, 3)
    benchmark.extra_info["rt_30s"] = round(slow.avg_response_time, 3)
    # Slower reaction under bursty load costs response time.
    assert fast.avg_response_time < slow.avg_response_time


@pytest.fixture(scope="module")
def hybrid_ablation():
    spec = cpu_bound("high")
    hybrid = run_with_policy(spec, HyScaleCpu())
    horizontal_only = run_with_policy(spec, KubernetesHpa())
    # Vertical-only: forbid replication by capping max replicas at the
    # current minimum.
    from dataclasses import replace

    vertical_specs = [replace(s, max_replicas=s.min_replicas) for s in spec.specs]
    vertical_only = run_experiment(
        config=spec.config,
        specs=vertical_specs,
        loads=list(spec.loads),
        policy=HyScaleCpu(),
        duration=spec.duration,
        workload_label=spec.label,
    )
    return hybrid, horizontal_only, vertical_only


def test_ablation_hybrid_vs_pure_strategies(benchmark, hybrid_ablation):
    hybrid, horizontal_only, vertical_only = hybrid_ablation
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["strategy", "avg resp (s)", "failed %"],
            [
                ["hybrid (HyScale)", f"{hybrid.avg_response_time:.3f}", f"{hybrid.percent_failed:.2f}"],
                ["horizontal only (K8s)", f"{horizontal_only.avg_response_time:.3f}",
                 f"{horizontal_only.percent_failed:.2f}"],
                ["vertical only", f"{vertical_only.avg_response_time:.3f}",
                 f"{vertical_only.percent_failed:.2f}"],
            ],
        )
    )
    # Section I's claim: the hybrid beats both pure strategies when demand
    # exceeds a single machine (vertical-only hits the wall) and replication
    # carries overheads (horizontal-only pays them).
    assert hybrid.avg_response_time < horizontal_only.avg_response_time
    assert hybrid.avg_response_time < vertical_only.avg_response_time


@pytest.fixture(scope="module")
def memory_crash():
    spec = memory_bound("high")
    blind = run_with_policy(spec, HyScaleCpu())
    aware = run_with_policy(spec, HyScaleCpuMem())
    return blind, aware


def test_ablation_memory_bound_omitted_results(benchmark, memory_crash):
    """Why the paper omits memory-bound results for K8s / HYSCALE_CPU."""
    blind, aware = memory_crash
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["policy", "failed %", "OOM kills", "avg resp (s)"],
            [
                ["hyscale-cpu (memory-blind)", f"{blind.percent_failed:.2f}",
                 str(blind.oom_kills), f"{blind.avg_response_time:.3f}"],
                ["hyscale-cpu+mem", f"{aware.percent_failed:.2f}",
                 str(aware.oom_kills), f"{aware.avg_response_time:.3f}"],
            ],
        )
    )
    assert aware.percent_failed <= blind.percent_failed
    assert aware.oom_kills <= blind.oom_kills


@pytest.fixture(scope="module")
def multimetric_ablation():
    from repro.core.kubernetes_multi import KubernetesMultiMetricHpa
    from repro.experiments.configs import mixed

    spec = mixed("high")
    plain = run_with_policy(spec, KubernetesHpa())
    multi = run_with_policy(
        spec,
        KubernetesMultiMetricHpa(scale_up_interval=3.0, scale_down_interval=50.0),
    )
    hybridmem = run_with_policy(spec, HyScaleCpuMem())
    return plain, multi, hybridmem


def test_ablation_multimetric_kubernetes(benchmark, multimetric_ablation):
    """Section II-B's critique, measured: the beta multi-metric HPA (largest
    metric wins) improves on CPU-only Kubernetes for mixed loads, but —
    still horizontal-only — keeps dropping requests the hybrid serves."""
    plain, multi, hybridmem = multimetric_ablation
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["policy", "avg resp (s)", "failed %", "scale ups"],
            [
                ["kubernetes (cpu only)", f"{plain.avg_response_time:.3f}",
                 f"{plain.percent_failed:.2f}", str(plain.horizontal_scale_ups)],
                ["kubernetes-multi (cpu+mem, beta rule)", f"{multi.avg_response_time:.3f}",
                 f"{multi.percent_failed:.2f}", str(multi.horizontal_scale_ups)],
                ["hyscale cpu+mem (hybrid)", f"{hybridmem.avg_response_time:.3f}",
                 f"{hybridmem.percent_failed:.2f}", str(hybridmem.horizontal_scale_ups)],
            ],
        )
    )
    benchmark.extra_info["multi_rt"] = round(multi.avg_response_time, 3)
    # Seeing memory helps the HPA...
    assert multi.percent_failed <= plain.percent_failed
    # ...but the hybrid still wins on failures with a fraction of the churn.
    assert hybridmem.percent_failed < multi.percent_failed
    assert hybridmem.horizontal_scale_ups < multi.horizontal_scale_ups / 2
