"""Extension — predictive scaling (the paper's "machine learning aspect").

Two findings, both honest:

1. **Where vertical scaling is instant, forecasting buys nothing.**  On the
   paper's stateless CPU workload, reactive HyScale already closes the loop
   within one monitor period (``docker update`` has no lead time), so the
   Holt forecaster lands within a few percent of the reactive baseline —
   prediction cannot beat a zero-lead-time actuator.
2. **Where capacity has a lead time, forecasting pays.**  Stateful replicas
   must transfer their state before serving (~7 s here), so the reactive
   scaler always eats the spike front; the predictor starts the spill
   during the ramp and arrives provisioned.
"""

import pytest

from repro import SimulationConfig
from repro.analysis.speedup import response_speedup
from repro.cluster import MicroserviceSpec
from repro.config import ClusterConfig
from repro.experiments.configs import cpu_bound, make_policy
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment
from repro.workloads import CPU_BOUND, HighBurstLoad, ServiceLoad


def stateful_spec():
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=10), seed=6)
    specs = [
        MicroserviceSpec(name=f"s{i}", max_replicas=16, stateful=True, state_size_mb=512.0)
        for i in range(6)
    ]
    loads = [
        ServiceLoad(
            s.name,
            CPU_BOUND,
            HighBurstLoad(base=5.5, peak=18.0, period=150.0, duty=0.3, phase=i * 25.0, ramp=6.0),
        )
        for i, s in enumerate(specs)
    ]
    return config, specs, loads


@pytest.fixture(scope="module")
def stateless_runs():
    spec = cpu_bound("high")
    return {name: spec.run(name) for name in ("hybridmem", "predictive")}


@pytest.fixture(scope="module")
def stateful_runs():
    config, specs, loads = stateful_spec()
    out = {}
    for name in ("hybridmem", "predictive", "kubernetes"):
        out[name] = run_experiment(
            config=config,
            specs=specs,
            loads=loads,
            policy=make_policy(name, config),
            duration=240.0,
            workload_label="stateful-spikes",
        )
    return out


def test_ext_predictive_regenerate(benchmark, stateless_runs, stateful_runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for scenario, runs in (("stateless cpu/high", stateless_runs), ("stateful spikes", stateful_runs)):
        for name, summary in sorted(runs.items()):
            rows.append(
                [
                    scenario,
                    name,
                    f"{summary.avg_response_time:.3f}",
                    f"{summary.p95_response_time:.2f}",
                    f"{summary.percent_failed:.2f}",
                ]
            )
    print()
    print(format_table(["scenario", "policy", "avg resp (s)", "p95 (s)", "failed %"], rows))

    stateless_ratio = response_speedup(stateless_runs["predictive"], stateless_runs["hybridmem"])
    stateful_ratio = response_speedup(stateful_runs["predictive"], stateful_runs["hybridmem"])
    print()
    print(f"predictive vs reactive, stateless: {stateless_ratio:.2f}x")
    print(f"predictive vs reactive, stateful : {stateful_ratio:.2f}x")
    benchmark.extra_info["stateless_ratio"] = round(stateless_ratio, 3)
    benchmark.extra_info["stateful_ratio"] = round(stateful_ratio, 3)
    # Finding 1: no instant-actuator regression worth speaking of.
    assert stateless_ratio > 0.9
    # Finding 2: a real win where capacity has a lead time.
    assert stateful_ratio > 1.05


def test_ext_predictive_fails_less_on_stateful(stateful_runs):
    assert (
        stateful_runs["predictive"].percent_failed
        <= stateful_runs["hybridmem"].percent_failed
    )


def test_ext_predictive_still_a_hyscale(stateful_runs):
    """It inherits the hybrid machinery: verticals plus (pre-)spills."""
    summary = stateful_runs["predictive"]
    assert summary.vertical_scale_ops > 0
    assert summary.horizontal_scale_ups > 0
