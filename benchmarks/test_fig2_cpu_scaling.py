"""Figure 2 — response times of horizontal scaling for the CPU tests.

Paper finding (Section III-A): with total resources held constant, response
times *increase* with the number of replicas — ~17 % co-location contention,
per-replica application (JVM) overhead, and a logarithmic cross-node
distribution cost — while the equivalent vertical allocation shows
negligible overhead.
"""

import pytest

from repro.experiments.report import scaling_curve_table
from repro.experiments.section3 import cpu_scaling_curve

REPLICA_COUNTS = (1, 2, 4, 8, 16)


@pytest.fixture(scope="module")
def curve():
    return cpu_scaling_curve(REPLICA_COUNTS)


def test_fig2_regenerate(benchmark, curve):
    """Regenerate and print the Figure 2 series."""
    points = benchmark.pedantic(
        lambda: cpu_scaling_curve((1, 4)), rounds=1, iterations=1
    )
    print()
    print(scaling_curve_table(curve, title="Figure 2: CPU horizontal scaling (640 requests, stress co-tenant)"))
    for point in curve:
        benchmark.extra_info[f"replicas_{point.replicas}"] = round(point.avg_response_time, 2)
    assert all(p.completed == 640 for p in curve)
    # Core Figure 2 shape, asserted here as well so --benchmark-only runs it.
    times = [p.avg_response_time for p in curve]
    assert times == sorted(times)


def test_fig2_response_grows_with_replicas(curve):
    times = [p.avg_response_time for p in curve]
    assert times == sorted(times), "Figure 2 shape: response must grow with replica count"


def test_fig2_replication_cost_is_material(curve):
    by_replicas = {p.replicas: p.avg_response_time for p in curve}
    # The paper's 16-replica deployment is dramatically slower than 1.
    assert by_replicas[16] > 1.5 * by_replicas[1]


def test_fig2_growth_is_sublinear(curve):
    """'A logarithmic increase with the number of replicas': doubling the
    replica count must not double the response time."""
    by_replicas = {p.replicas: p.avg_response_time for p in curve}
    for small, big in ((1, 2), (2, 4), (4, 8), (8, 16)):
        assert by_replicas[big] < 2.0 * by_replicas[small]
