"""Benchmark suite: one module per table/figure in the paper (see DESIGN.md
section 6 for the experiment index)."""
