"""Figure 6 — CPU-bound experiments: % failed and average response times.

Paper findings (Section VI-A):

* "HYSCALE_CPU+Mem has the fastest response times overall, while Kubernetes
  has the slowest" — 1.49x / 1.43x speedups at low / high burst;
* "HYSCALE drastically lowers the number of failed requests (up to 10 times
  fewer compared to Kubernetes)";
* availability stays high throughout ("at least 99.8 % up-time").
"""

import pytest

from benchmarks.conftest import print_figure, run_matrix
from repro.analysis.speedup import response_speedup
from repro.experiments.configs import cpu_bound


@pytest.fixture(scope="module")
def low():
    return run_matrix(cpu_bound("low"))


@pytest.fixture(scope="module")
def high():
    return run_matrix(cpu_bound("high"))


def test_fig6a_regenerate(benchmark, low):
    benchmark.pedantic(lambda: cpu_bound("low").run("hybrid"), rounds=1, iterations=1)
    print_figure("Figure 6a: CPU-bound, low burst", low)
    for name, s in low.items():
        benchmark.extra_info[f"{name}_rt"] = round(s.avg_response_time, 3)
        benchmark.extra_info[f"{name}_failed_pct"] = round(s.percent_failed, 3)
    # Core orderings, asserted here as well so --benchmark-only runs them.
    assert low["hybrid"].avg_response_time < low["kubernetes"].avg_response_time
    assert low["hybridmem"].avg_response_time < low["kubernetes"].avg_response_time


def test_fig6b_regenerate(benchmark, high):
    benchmark.pedantic(lambda: cpu_bound("high").run("kubernetes"), rounds=1, iterations=1)
    print_figure("Figure 6b: CPU-bound, high burst", high)
    assert high["hybrid"].avg_response_time < high["kubernetes"].avg_response_time
    assert high["hybrid"].percent_failed <= high["kubernetes"].percent_failed


@pytest.mark.parametrize("burst", ["low", "high"])
def test_fig6_hybrids_beat_kubernetes(burst, low, high):
    runs = low if burst == "low" else high
    for hybrid in ("hybrid", "hybridmem"):
        speedup = response_speedup(runs[hybrid], runs["kubernetes"])
        assert speedup > 1.15, (
            f"{hybrid} must beat kubernetes on CPU-bound {burst} burst "
            f"(paper: 1.49x/1.43x); got {speedup:.2f}x"
        )


@pytest.mark.parametrize("burst", ["low", "high"])
def test_fig6_hybrids_fail_less(burst, low, high):
    runs = low if burst == "low" else high
    for hybrid in ("hybrid", "hybridmem"):
        assert runs[hybrid].percent_failed <= runs["kubernetes"].percent_failed


def test_fig6_availability_high(low, high):
    """HyScale maintains the paper's >= 99.8 % availability on CPU loads."""
    for runs in (low, high):
        for name in ("hybrid", "hybridmem"):
            assert runs[name].availability >= 0.998


def test_fig6_speedup_roughly_matches_paper(high):
    """High-burst speedup lands in the right regime (paper: 1.43x)."""
    speedup = response_speedup(high["hybrid"], high["kubernetes"])
    assert 1.15 <= speedup <= 4.0
