"""Figure 3 — response times of horizontal scaling for the network tests.

Paper finding (Section III-C): with a fixed 100 Mbit/s total allocation
shaped by tc, vertical network scaling changes nothing, but horizontal
scaling over more machines relieves tx-queue contention — "a large decrease
in execution time ... tapering off at around 8 replicas".
"""

import pytest

from repro.analysis.speedup import taper_point
from repro.experiments.report import scaling_curve_table
from repro.experiments.section3 import network_scaling_curve

REPLICA_COUNTS = (1, 2, 4, 8, 16)


@pytest.fixture(scope="module")
def curve():
    return network_scaling_curve(REPLICA_COUNTS)


def test_fig3_regenerate(benchmark, curve):
    points = benchmark.pedantic(
        lambda: network_scaling_curve((1, 8)), rounds=1, iterations=1
    )
    print()
    print(
        scaling_curve_table(
            curve, title="Figure 3: network horizontal scaling (100 Mbit/s total, net-stress co-tenant)"
        )
    )
    for point in curve:
        benchmark.extra_info[f"replicas_{point.replicas}"] = round(point.avg_response_time, 2)
    assert all(p.failed == 0 for p in curve)
    # Core Figure 3 shape, asserted here as well so --benchmark-only runs it.
    times = [p.avg_response_time for p in curve]
    assert times == sorted(times, reverse=True)


def test_fig3_execution_time_decreases(curve):
    times = [p.avg_response_time for p in curve]
    assert times == sorted(times, reverse=True), "Figure 3 shape: time must fall with replicas"


def test_fig3_tapers_around_eight(curve):
    """The marginal gain drops below 10 % somewhere in the 8-16 range."""
    taper = taper_point(curve, threshold=0.10)
    assert taper in (8, 16)


def test_fig3_total_gain_is_significant(curve):
    by_replicas = {p.replicas: p.avg_response_time for p in curve}
    assert by_replicas[1] / by_replicas[16] > 1.3
