"""Canonical JSONL metric snapshots (schema ``repro.telemetry/1``).

One line per series, keys sorted, compact separators — the same contract as
the decision-trace codec (:mod:`repro.obs.export`): a snapshot file is a
pure function of the registry contents plus the simulated timestamp, so two
same-seed runs write *byte-identical* files.  Lines are self-contained JSON
objects (each carries the schema tag), so snapshots stream through ``jq`` /
``grep`` and partial files stay readable up to the cut.

Line kinds:

* ``counter`` / ``gauge`` — ``{name, labels, value, time, unit}``
* ``histogram`` — adds ``buckets`` (``[bound, cumulative_count]`` pairs,
  ``+Inf`` encoded as ``null``), ``count``, and ``sum``
* ``slo_alert`` — one line per SLO burn-rate transition (see
  :mod:`repro.telemetry.slo`), appended after the series lines
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.errors import TelemetryError
from repro.telemetry.instruments import Histogram
from repro.telemetry.registry import MetricRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.telemetry.slo import SloAlert

#: Schema tag embedded in every line; bump when the line shape changes.
TELEMETRY_SCHEMA = "repro.telemetry/1"


def _dump(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def snapshot_lines(
    registry: MetricRegistry,
    *,
    now: float,
    include_volatile: bool = False,
    alerts: Iterable["SloAlert"] = (),
) -> list[str]:
    """Every series (and alert) as canonical single-line JSON encodings.

    ``now`` is the simulated time the snapshot was taken at (callers pass
    ``engine.clock.now``); it is stamped into every line.  Volatile families
    are excluded unless asked for, keeping persisted snapshots deterministic.
    """
    lines: list[str] = []
    for family in registry.families(include_volatile=include_volatile):
        for values, child in family.children():
            payload: dict = {
                "schema": TELEMETRY_SCHEMA,
                "kind": family.kind,
                "name": family.name,
                "labels": dict(zip(family.label_names, values)),
                "time": now,
            }
            if family.unit:
                payload["unit"] = family.unit
            if isinstance(child, Histogram):
                cumulative = child.cumulative()
                bounds: list[float | None] = list(child.bounds) + [None]  # None == +Inf
                payload["buckets"] = [list(pair) for pair in zip(bounds, cumulative)]
                payload["count"] = child.count
                payload["sum"] = child.sum
            else:
                payload["value"] = child.value
            lines.append(_dump(payload))
    for alert in alerts:
        lines.append(_dump({"schema": TELEMETRY_SCHEMA, "kind": "slo_alert", **alert.to_dict()}))
    return lines


def snapshot_to_jsonl(
    registry: MetricRegistry,
    *,
    now: float,
    include_volatile: bool = False,
    alerts: Iterable["SloAlert"] = (),
) -> str:
    """The whole snapshot as JSONL text (trailing newline when non-empty)."""
    lines = snapshot_lines(
        registry, now=now, include_volatile=include_volatile, alerts=alerts
    )
    return "\n".join(lines) + "\n" if lines else ""


def write_snapshot_jsonl(
    registry: MetricRegistry,
    path: str | Path,
    *,
    now: float,
    include_volatile: bool = False,
    alerts: Iterable["SloAlert"] = (),
) -> int:
    """Write a snapshot file; returns the number of lines written."""
    text = snapshot_to_jsonl(
        registry, now=now, include_volatile=include_volatile, alerts=alerts
    )
    Path(path).write_text(text, encoding="utf-8")
    return len(text.splitlines())


def parse_snapshot_line(line: str) -> dict:
    """Parse and schema-check one snapshot line."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TelemetryError(f"snapshot line is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise TelemetryError("snapshot line must be a JSON object")
    schema = payload.get("schema")
    if schema != TELEMETRY_SCHEMA:
        raise TelemetryError(
            f"unsupported snapshot schema {schema!r} (want {TELEMETRY_SCHEMA!r})"
        )
    kind = payload.get("kind")
    if kind not in ("counter", "gauge", "histogram", "slo_alert"):
        raise TelemetryError(f"unknown snapshot line kind {kind!r}")
    return payload


def read_snapshot_jsonl(path: str | Path) -> list[dict]:
    """Read a snapshot file back into parsed line payloads."""
    out: list[dict] = []
    for lineno, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            out.append(parse_snapshot_line(line))
        except TelemetryError as exc:
            raise TelemetryError(f"{path}:{lineno}: {exc}") from None
    return out
