"""The run-wide instrument catalogue and its sampling actor.

:class:`RunTelemetry` owns the standard instruments every experiment
exposes (see ``docs/telemetry.md`` for the catalogue) and runs as the
**final** engine actor — after the metrics collector — so each sampling
interval observes the fully settled step.  It is fed by two paths:

* **push** — hot-path call sites hand it events as they happen:
  :meth:`observe_request` per finished request,
  :meth:`observe_rejection` per LB admission failure;
* **pull** — :meth:`on_step` samples cumulative sources (node usage, LB
  totals, generator tallies) on the sampling interval, converting them to
  gauge sets and counter deltas, then calls ``registry.capture``.

When the registry is the :data:`~repro.telemetry.registry.NULL_REGISTRY`
every instrument handle is a shared no-op and the sampler body is skipped
(``registry.enabled`` is ``False``), so an un-instrumented run pays one
attribute check per step.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.obs.profiler import PhaseProfiler
from repro.platform.lb_tier import LoadBalancerTier
from repro.sim.clock import SimClock
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.sampling import SamplingController, resolve_sampling
from repro.telemetry.slo import SloAlert, SloTracker
from repro.workloads.generator import ClientLoadGenerator
from repro.workloads.requests import Request, RequestState


def _counter_value(family) -> float:  # type: ignore[no-untyped-def]
    """Current value of an unlabelled counter family, without minting it."""
    child = family.peek()
    return child.value if child is not None else 0.0


class RunTelemetry:
    """Standard instrument catalogue plus the per-interval sampling actor.

    Build one per simulation (``Simulation.build`` does this), then
    ``bind`` the data sources once wiring is complete.  The instance is
    registered as the engine's last actor under the name ``telemetry``.
    """

    def __init__(
        self,
        registry: MetricRegistry,
        *,
        slo: SloTracker | None = None,
        sample_every: float = 5.0,
        profiler: PhaseProfiler | None = None,
        sampling: SamplingController | None = None,
    ) -> None:
        self.registry = registry
        self.slo = slo
        #: The run's sampling controller (``full`` unless one was passed);
        #: it decides which nodes each pull pass freshly collects and
        #: charges the observation-cost budget (see docs/telemetry.md).
        self.sampling = sampling if sampling is not None else resolve_sampling(None)
        #: Mirrors the registry: ``False`` under ``NULL_REGISTRY``, so the
        #: hub plugs into :func:`repro.instrument.when_enabled` wiring.
        self.enabled = registry.enabled
        self._sample_every = sample_every
        self._next_sample = 0.0
        self._profiler = profiler
        self._cluster: Cluster | None = None
        self._lb: LoadBalancerTier | None = None
        self._generator: ClientLoadGenerator | None = None
        #: Per-request ingress/internal accounting; off outside app runs so
        #: the single-service instrument set is untouched byte-for-byte.
        self._graph_enabled = False
        # Delta baselines for cumulative pull sources.
        self._prev_routed = 0
        self._prev_rejected = 0
        self._prev_offered: dict[str, int] = {}
        self._prev_containers: dict[str, set[str]] = {}

        # --- instrument catalogue (no-ops under NullRegistry) ----------
        self.sim_time = registry.gauge(
            "sim_time_seconds", "Simulated time of the latest sample.", unit="seconds"
        )
        self.sim_steps = registry.counter("sim_steps", "Engine steps executed.")
        self.sim_events_fired = registry.counter(
            "sim_events_fired", "Scheduled events fired by the engine's event queue."
        )
        self.node_cpu = registry.gauge(
            "node_cpu_utilization_ratio",
            "Measured CPU usage over node capacity (0-1).",
            labels=("node",),
        )
        self.node_memory = registry.gauge(
            "node_memory_utilization_ratio",
            "Measured memory usage over node capacity (0-1).",
            labels=("node",),
        )
        self.node_network = registry.gauge(
            "node_network_utilization_ratio",
            "Measured NIC usage over node capacity (0-1).",
            labels=("node",),
        )
        self.node_containers = registry.gauge(
            "node_containers", "Active containers placed on the node.", labels=("node",)
        )
        self.container_starts = registry.counter(
            "container_starts", "Containers that appeared on the node.", labels=("node",)
        )
        self.container_stops = registry.counter(
            "container_stops", "Containers that left the node.", labels=("node",)
        )
        self.service_replicas = registry.gauge(
            "service_replicas", "Active replica count per service.", labels=("service",)
        )
        self.requests_offered = registry.counter(
            "requests_offered", "Requests generated by the client workload.", labels=("service",)
        )
        self.requests_completed = registry.counter(
            "requests_completed", "Requests finished successfully.", labels=("service",)
        )
        self.requests_failed = registry.counter(
            "requests_failed",
            "Requests that failed, by failure class.",
            labels=("service", "reason"),
        )
        self.response_seconds = registry.histogram(
            "request_response_seconds",
            "End-to-end response time of successful requests.",
            unit="seconds",
            labels=("service",),
        )
        # Application-graph instruments.  Declared eagerly like the rest of
        # the catalogue — families with zero children export nothing, so
        # single-service runs stay byte-identical; children are only minted
        # once enable_graph() flips per-request graph accounting on.
        self.app_response_seconds = registry.histogram(
            "app_request_response_seconds",
            "End-to-end response time of ingress requests across the application graph.",
            unit="seconds",
            labels=("service",),
        )
        self.requests_ingress = registry.counter(
            "requests_ingress",
            "Finished requests that entered at an ingress tier (user traffic).",
            labels=("service",),
        )
        self.requests_internal = registry.counter(
            "requests_internal",
            "Finished internal tier-to-tier calls spawned by the graph router.",
            labels=("service",),
        )
        self.graph_edge_calls = registry.counter(
            "graph_edge_calls",
            "Internal calls dispatched per application-graph edge.",
            labels=("edge",),
        )
        self.lb_routed = registry.counter(
            "lb_requests_routed", "Requests the LB tier assigned to a replica."
        )
        self.lb_rejected = registry.counter(
            "lb_requests_rejected", "Requests the LB tier gave up on (connection failures)."
        )
        self.lb_backlog = registry.gauge(
            "lb_backlog_requests", "Requests waiting in the LB retry backlog."
        )
        self.monitor_ticks = registry.counter("monitor_ticks", "Monitor query periods executed.")
        self.monitor_actions_emitted = registry.counter(
            "monitor_actions_emitted", "Scaling actions the policy emitted."
        )
        self.monitor_actions_applied = registry.counter(
            "monitor_actions_applied", "Scaling actions applied successfully."
        )
        self.monitor_actions_failed = registry.counter(
            "monitor_actions_failed", "Scaling actions that could not be applied."
        )
        self.scaling_actions = registry.counter(
            "scaling_actions", "Applied scaling actions by kind.", labels=("kind",)
        )
        self.oom_kills = registry.counter(
            "oom_kills", "Containers reaped after exceeding their memory limit."
        )
        self.slo_burn = registry.gauge(
            "slo_burn_rate",
            "Error-budget burn rate over the window's trailing horizon.",
            labels=("service", "window"),
        )
        self.slo_budget_remaining = registry.gauge(
            "slo_error_budget_remaining_ratio",
            "Whole-run error budget left (1 = untouched, <0 = blown).",
            labels=("service",),
        )
        self.slo_alerts = registry.counter(
            "slo_alerts", "Burn-rate alerts fired.", labels=("service", "window")
        )
        self.profile_seconds = registry.gauge(
            "profile_phase_seconds",
            "Cumulative wall time per engine phase (volatile: excluded from exports).",
            unit="seconds",
            labels=("phase",),
            volatile=True,
        )
        self.profile_calls = registry.gauge(
            "profile_phase_calls",
            "Phase invocations profiled (volatile: excluded from exports).",
            labels=("phase",),
            volatile=True,
        )

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(
        self,
        *,
        cluster: Cluster,
        lb: LoadBalancerTier,
        generator: ClientLoadGenerator,
    ) -> None:
        """Attach the pull sources (called once by ``Simulation.build``)."""
        self._cluster = cluster
        self._lb = lb
        self._generator = generator
        self.sampling.bind(
            cluster=cluster, registry=self.registry, sample_every=self._sample_every
        )

    def enable_graph(self) -> None:
        """Turn on ingress/internal accounting (called for app runs only)."""
        self._graph_enabled = True

    # ------------------------------------------------------------------
    # Push path
    # ------------------------------------------------------------------
    def observe_request(self, request: Request) -> None:
        """Record one finished request (called per drained request)."""
        service = request.service
        response = request.response_time
        if request.state is RequestState.SUCCEEDED:
            self.requests_completed.inc(service=service)
            if response is not None:
                self.response_seconds.observe(response, service=service)
        else:
            reason = request.failure_reason
            self.requests_failed.inc(
                service=service,
                reason=reason.value if reason is not None else "unknown",
            )
        if self._graph_enabled:
            if request.ingress:
                self.requests_ingress.inc(service=service)
            else:
                self.requests_internal.inc(service=service)
        # Internal graph calls never count against the user-facing SLO —
        # only ingress traffic burns error budget (for single-service runs
        # every request is ingress, so this is the old behaviour).
        if self.slo is not None and request.ingress:
            good = self.slo.is_good(
                succeeded=request.state is RequestState.SUCCEEDED,
                response_time=response if response is not None else float("inf"),
            )
            self.slo.record(service, good=1 if good else 0, bad=0 if good else 1)

    def observe_rejection(self, request: Request) -> None:
        """Record one LB admission failure, then account it as finished."""
        self.observe_request(request)

    def observe_graph_call(self, edge: str) -> None:
        """Record one internal call dispatched over a graph edge."""
        self.graph_edge_calls.inc(edge=edge)

    def observe_app_request(self, request: Request) -> None:
        """Record the end-to-end outcome of one ingress request's tree."""
        response = request.response_time
        if request.state is RequestState.SUCCEEDED and response is not None:
            self.app_response_seconds.observe(response, service=request.service)

    # ------------------------------------------------------------------
    # Pull path (engine actor)
    # ------------------------------------------------------------------
    def on_step(self, clock: SimClock) -> None:
        """Sample cumulative sources on the interval, then capture rings."""
        if not self.registry.enabled:
            return
        if clock.now + 1e-9 < self._next_sample:
            return
        self._next_sample += self._sample_every
        self.sample(clock.now)

    def sample(self, now: float) -> None:
        """One full sampling pass at simulated time ``now``."""
        self.sampling.begin_sample(
            now,
            oom_kills=_counter_value(self.oom_kills),
            actions_applied=_counter_value(self.monitor_actions_applied),
        )
        self.sim_time.set(now)
        if self._cluster is not None:
            self._sample_cluster(now)
        if self._lb is not None:
            routed, rejected = self._lb.total_routed, self._lb.total_rejected
            self.lb_routed.inc(routed - self._prev_routed)
            self.lb_rejected.inc(rejected - self._prev_rejected)
            self._prev_routed, self._prev_rejected = routed, rejected
            self.lb_backlog.set(self._lb.backlog())
        if self._generator is not None:
            for service, total in sorted(self._generator.generated_by_service.items()):
                delta = total - self._prev_offered.get(service, 0)
                if delta:
                    self.requests_offered.inc(delta, service=service)
                self._prev_offered[service] = total
        if self.slo is not None:
            for alert in self.slo.capture(now):
                if alert.state == "firing":
                    self.slo_alerts.inc(service=alert.service, window=alert.window)
            for service in self.slo.services():
                for window in self.slo.windows:
                    self.slo_burn.set(
                        self.slo.burn_rate(service, window.horizon, now),
                        service=service,
                        window=window.name,
                    )
                self.slo_budget_remaining.set(
                    self.slo.budget_remaining(service), service=service
                )
        if self._profiler is not None:
            for phase in self._profiler.phase_names():
                self.profile_seconds.set(self._profiler.seconds(phase), phase=phase)
                self.profile_calls.set(self._profiler.calls(phase), phase=phase)
        self.sampling.finish_sample(now, profiler=self._profiler)
        self.registry.capture(now)

    def _sample_cluster(self, now: float) -> None:
        cluster = self._cluster
        assert cluster is not None
        sampling = self.sampling
        for name, node in cluster.nodes.items():
            if not sampling.node_due(name, now):
                # Skipped: gauges keep their last-known values and capture
                # re-records them (bounded-staleness semantics — see
                # docs/telemetry.md "Scaling the observer").
                sampling.skip_node(name, now)
                continue
            cpu_usage = mem_usage = net_usage = 0.0
            active_ids: set[str] = set()
            for container_id, container in node.containers.items():
                if not container.is_active:
                    continue
                active_ids.add(container_id)
                cpu_usage += container.cpu_usage
                mem_usage += container.mem_usage
                net_usage += container.net_usage
            capacity = node.capacity
            cpu_ratio = cpu_usage / capacity.cpu if capacity.cpu else 0.0
            mem_ratio = mem_usage / capacity.memory if capacity.memory else 0.0
            net_ratio = net_usage / capacity.network if capacity.network else 0.0
            self.node_cpu.set(cpu_ratio, node=name)
            self.node_memory.set(mem_ratio, node=name)
            self.node_network.set(net_ratio, node=name)
            self.node_containers.set(len(active_ids), node=name)
            previous = self._prev_containers.get(name, set())
            started = len(active_ids - previous)
            stopped = len(previous - active_ids)
            if started:
                self.container_starts.inc(started, node=name)
            if stopped:
                self.container_stops.inc(stopped, node=name)
            self._prev_containers[name] = active_ids
            sampling.observe_node(
                name,
                now,
                cpu=cpu_ratio,
                memory=mem_ratio,
                network=net_ratio,
                containers=len(active_ids),
                churn=started + stopped,
            )
        for service in cluster.sorted_services():
            self.service_replicas.set(service.replica_count, service=service.name)

    # ------------------------------------------------------------------
    # Export helpers
    # ------------------------------------------------------------------
    def alerts(self) -> tuple[SloAlert, ...]:
        """Every SLO alert transition recorded so far (empty without SLO)."""
        if self.slo is None:
            return ()
        return self.slo.alerts()
