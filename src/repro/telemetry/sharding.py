"""Sharded metric retention: per-shard ring buffers, mergeable snapshots.

A :class:`ShardedMetricRegistry` is a drop-in
:class:`~repro.telemetry.registry.MetricRegistry` whose *children* (the
labelled series and their retention rings) are partitioned across N
inner shard registries by a stable hash of ``(family name, label
values)``.  The registry-level API is unchanged — families register
once, ``labels`` routes to the owning shard, ``capture`` stamps every
shard — so ``Simulation.build(telemetry=ShardedMetricRegistry(...))``
behaves exactly like the unsharded registry, byte for byte (pinned in
``tests/test_telemetry_sharding.py``).

What sharding buys:

* **Point reads stay O(1)** — ``family.peek(...)``/``labels(...)`` hash
  straight to one shard, so the ``top`` dashboard's per-row lookups
  never scan the full series population.
* **Partial exports stay O(series touched)** — :meth:`ShardedMetricRegistry.shard_snapshot`
  renders one shard's series in canonical order at a cost proportional
  to that shard alone, and :func:`merge_shard_snapshots` k-way-merges
  per-shard JSONL parts back into the **byte-identical** unsharded
  snapshot (each shard holds a disjoint, internally sorted subset of the
  global ``(name, labels)`` order, so the merge is a pure reorder).

Shard assignment uses ``zlib.crc32`` — stable across processes and
platforms, so shard layouts (and therefore per-shard exports) are
byte-deterministic for same-seed runs.
"""

from __future__ import annotations

import json
import zlib
from heapq import merge as _heapq_merge
from typing import Iterator, Sequence

from repro.errors import TelemetryError
from repro.telemetry.instruments import (
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    LabelValues,
    MetricFamily,
)
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.snapshot import snapshot_lines


def shard_index(name: str, values: LabelValues, shards: int) -> int:
    """Stable shard of one series: crc32 over name + label values."""
    key = "\x1f".join((name, *values)).encode("utf-8")
    return zlib.crc32(key) % shards


def _child_key(child: tuple[LabelValues, object]) -> LabelValues:
    """Merge key for k-way child iteration (module-level: no per-call closure)."""
    return child[0]


class _ShardedFamilyMixin:
    """Routes a family's children to per-shard concrete families.

    Mixed in *before* the concrete family class, so ``labels``/``peek``/
    ``children`` here win the MRO while ``kind``, validation, and the
    convenience writers (``inc``/``set``/``observe``, which call
    ``labels``) come from the concrete base.
    """

    _shards: tuple[MetricFamily, ...] = ()

    def _bind_shards(self, shard_families: tuple[MetricFamily, ...]) -> None:
        self._shards = shard_families

    def labels(self, *values: str, **named: str) -> object:
        resolved = self._resolve_values(values, named)  # type: ignore[attr-defined]
        owner = self._shards[shard_index(self.name, resolved, len(self._shards))]  # type: ignore[attr-defined]
        return owner.labels(*resolved)

    def peek(self, *values: str) -> object | None:
        resolved = tuple(str(v) for v in values)
        owner = self._shards[shard_index(self.name, resolved, len(self._shards))]  # type: ignore[attr-defined]
        return owner.peek(*resolved)

    def children(self) -> Iterator[tuple[LabelValues, object]]:
        """Global sorted label order via a k-way merge of sorted shards."""
        return _heapq_merge(
            *(shard.children() for shard in self._shards), key=_child_key
        )

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)


class _ShardedCounterFamily(_ShardedFamilyMixin, CounterFamily):
    """Counter family view over per-shard counter families."""


class _ShardedGaugeFamily(_ShardedFamilyMixin, GaugeFamily):
    """Gauge family view over per-shard gauge families."""


class _ShardedHistogramFamily(_ShardedFamilyMixin, HistogramFamily):
    """Histogram family view over per-shard histogram families."""


_VIEW_TYPES: dict[type, type] = {
    CounterFamily: _ShardedCounterFamily,
    GaugeFamily: _ShardedGaugeFamily,
    HistogramFamily: _ShardedHistogramFamily,
}


class ShardedMetricRegistry(MetricRegistry):
    """A :class:`MetricRegistry` with series partitioned across shards."""

    def __init__(self, *, shards: int = 4, retention: int = 240) -> None:
        if shards < 1:
            raise TelemetryError(f"need at least 1 shard, got {shards}")
        super().__init__(retention=retention)
        #: The inner per-shard registries (plain, unsharded).
        self.shards: tuple[MetricRegistry, ...] = tuple(
            MetricRegistry(retention=retention) for _ in range(shards)
        )

    @property
    def shard_count(self) -> int:
        """How many shards the series population is partitioned across."""
        return len(self.shards)

    def _register(self, family):  # type: ignore[no-untyped-def]
        existing = self._families.get(family.name)
        if existing is not None:
            if (
                existing.kind != family.kind
                or existing.label_names != family.label_names
                or existing.unit != family.unit
                or existing.volatile != family.volatile
                or getattr(existing, "buckets", None) != getattr(family, "buckets", None)
            ):
                raise TelemetryError(
                    f"metric {family.name!r} re-registered with a different schema "
                    f"(kind/labels/unit/buckets must match the first declaration)"
                )
            return existing
        # The concrete family the caller built becomes shard 0's storage;
        # the remaining shards get fresh clones with the same schema.
        view_type = _VIEW_TYPES[type(family)]
        kwargs: dict = {
            "unit": family.unit,
            "label_names": family.label_names,
            "volatile": family.volatile,
        }
        if isinstance(family, HistogramFamily):
            kwargs["buckets"] = family.buckets
        view = view_type(family.name, family.help, **kwargs)
        shard_families = tuple(
            shard._register(
                type(family)(family.name, family.help, **kwargs)
                if index
                else family
            )
            for index, shard in enumerate(self.shards)
        )
        view._bind_shards(shard_families)
        self._families[family.name] = view
        return view

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def capture(self, now: float) -> None:
        """Stamp every shard's rings at ``now`` (same contract as the base)."""
        if now < self.last_capture:
            raise TelemetryError(
                f"capture at t={now} after t={self.last_capture}: time must not go backwards"
            )
        self.last_capture = now
        for shard in self.shards:
            shard.capture(now)

    # ------------------------------------------------------------------
    # Per-shard exports
    # ------------------------------------------------------------------
    def shard_snapshot_lines(
        self, index: int, *, now: float, include_volatile: bool = False
    ) -> list[str]:
        """One shard's series as canonical JSONL lines (O(shard series))."""
        return snapshot_lines(self.shards[index], now=now, include_volatile=include_volatile)

    def shard_snapshot(
        self, index: int, *, now: float, include_volatile: bool = False
    ) -> str:
        """One shard's series as JSONL text (a mergeable snapshot part)."""
        lines = self.shard_snapshot_lines(index, now=now, include_volatile=include_volatile)
        return "\n".join(lines) + "\n" if lines else ""


def merge_shard_snapshots(parts: Sequence[str]) -> str:
    """Merge per-shard JSONL snapshot parts into the unsharded byte layout.

    Each part must already be in canonical order (which
    :meth:`ShardedMetricRegistry.shard_snapshot` guarantees); the merge
    reorders lines by ``(family name, label values)`` without rewriting
    them, so the output is byte-identical to a snapshot of the same
    series taken from an unsharded registry.  ``slo_alert`` lines (which
    are not series and carry no merge key) are appended after the series
    lines in encounter order — emit them from a single part.
    """
    keyed_parts: list[list[tuple[tuple[str, tuple[str, ...]], str]]] = []
    alerts: list[str] = []
    for part in parts:
        keyed: list[tuple[tuple[str, tuple[str, ...]], str]] = []
        for line in part.splitlines():
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(f"snapshot part line is not valid JSON: {exc}") from None
            if payload.get("kind") == "slo_alert":
                alerts.append(line)
                continue
            name = payload.get("name")
            if not isinstance(name, str):
                raise TelemetryError(f"snapshot part line has no series name: {line!r}")
            labels = payload.get("labels", {})
            keyed.append(((name, tuple(str(v) for v in labels.values())), line))
        keyed_parts.append(keyed)
    merged = _heapq_merge(*keyed_parts, key=lambda kv: kv[0])
    out = [line for _, line in merged]
    out.extend(alerts)
    return "\n".join(out) + "\n" if out else ""


__all__ = [
    "ShardedMetricRegistry",
    "merge_shard_snapshots",
    "shard_index",
]
