"""SLO error-budget accounting and multiwindow burn-rate alerts.

Extends the static contract in :mod:`repro.metrics.sla` with *streaming*
accounting.  The :class:`~repro.metrics.sla.Sla` defines the objective: a
request is **good** when it completes within ``response_time_target``,
**bad** otherwise (failed or slow), and ``availability_target`` is the
required good fraction — so the *error budget* is ``1 -
availability_target`` of all traffic.

Burn rate is the classic SRE quantity: the bad fraction observed over a
trailing window divided by the budget fraction.  Burn 1.0 means the budget
is being consumed exactly at the sustainable rate; burn 14.4 exhausts a
month-scale budget in hours.  :class:`SloTracker` evaluates one or more
:class:`BurnWindow` rules, each the standard *multiwindow* pair — a long
window (smooths noise) and a short confirmation window (stops alerting once
the problem clears) that must **both** exceed the threshold — and records
:class:`SloAlert` state transitions as deterministic, sim-timestamped
events.

Everything here is a pure function of the fed request outcomes and the
capture times, so alert streams are byte-reproducible run to run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import TelemetryError
from repro.metrics.sla import Sla


@dataclass(frozen=True)
class BurnWindow:
    """One multiwindow burn-rate alert rule."""

    #: Rule name ("fast"/"slow" conventionally) — the alert's identity.
    name: str
    #: Long-window horizon, simulated seconds.
    horizon: float
    #: Burn-rate threshold both windows must exceed to fire.
    threshold: float
    #: Short confirmation window as a fraction of ``horizon`` (SRE workbook
    #: convention: 1/12 of the long window; we default to 1/4 because sim
    #: horizons are already short).
    confirm_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not self.name:
            raise TelemetryError("burn window name must be non-empty")
        if self.horizon <= 0:
            raise TelemetryError("burn window horizon must be positive")
        if self.threshold <= 0:
            raise TelemetryError("burn threshold must be positive")
        if not 0 < self.confirm_fraction <= 1:
            raise TelemetryError("confirm_fraction must be in (0, 1]")

    @property
    def confirm_horizon(self) -> float:
        """The short confirmation window, simulated seconds."""
        return self.horizon * self.confirm_fraction


#: Default rules: a fast page (minute-scale, high burn) and a slow ticket
#: (five-minute-scale, moderate burn) — thresholds from the SRE workbook's
#: multiwindow table, horizons scaled to simulation durations.
DEFAULT_BURN_WINDOWS: tuple[BurnWindow, ...] = (
    BurnWindow(name="fast", horizon=60.0, threshold=14.4),
    BurnWindow(name="slow", horizon=300.0, threshold=6.0),
)


@dataclass(frozen=True)
class SloAlert:
    """One burn-rate alert state transition (firing or resolved)."""

    time: float
    service: str
    window: str
    state: str  # "firing" | "resolved"
    burn_rate: float
    threshold: float

    def to_dict(self) -> dict:
        """JSON-safe payload (embedded in snapshot JSONL lines)."""
        return {
            "time": self.time,
            "service": self.service,
            "window": self.window,
            "state": self.state,
            "burn_rate": self.burn_rate,
            "threshold": self.threshold,
        }


class _ServiceBudget:
    """Cumulative good/bad tallies plus their capture-point ring."""

    __slots__ = ("good", "bad", "history")

    def __init__(self, retention: int) -> None:
        self.good = 0
        self.bad = 0
        #: Ring of ``(time, good, bad)`` cumulative capture points.
        self.history: deque[tuple[float, int, int]] = deque(maxlen=retention)


class SloTracker:
    """Streaming error-budget accounting against one SLA.

    Feed request outcomes with :meth:`record_request` (or pre-classified
    counts with :meth:`record`), then call :meth:`capture` once per
    sampling interval with the simulated time; capture evaluates every
    burn window and returns the alert transitions it produced.
    """

    def __init__(
        self,
        sla: Sla | None = None,
        *,
        windows: tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS,
        retention: int = 240,
    ) -> None:
        self.sla = sla if sla is not None else Sla()
        if not windows:
            raise TelemetryError("SloTracker needs at least one burn window")
        names = [w.name for w in windows]
        if len(set(names)) != len(names):
            raise TelemetryError(f"duplicate burn window names: {names}")
        self.windows = tuple(windows)
        self._retention = retention
        self._services: dict[str, _ServiceBudget] = {}
        #: ``(service, window) -> currently firing?``
        self._firing: dict[tuple[str, str], bool] = {}
        self._alerts: list[SloAlert] = []
        #: Error budget fraction: the bad share the SLA tolerates.
        self.budget = 1.0 - self.sla.availability_target
        if self.budget <= 0:
            # availability_target == 1.0: any bad request is over budget.
            # Use an epsilon budget so burn rates stay finite.
            self.budget = 1e-9

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def record(self, service: str, *, good: int = 0, bad: int = 0) -> None:
        """Add pre-classified request outcomes for one service."""
        if good < 0 or bad < 0:
            raise TelemetryError("good/bad counts must be >= 0")
        budget = self._services.get(service)
        if budget is None:
            budget = self._services[service] = _ServiceBudget(self._retention)
        budget.good += good
        budget.bad += bad

    def is_good(self, *, succeeded: bool, response_time: float) -> bool:
        """Classify one finished request against the SLA objective."""
        return succeeded and response_time <= self.sla.response_time_target

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def capture(self, now: float) -> list[SloAlert]:
        """Snapshot tallies at ``now`` and evaluate every burn window.

        Returns the alert transitions (newly firing / newly resolved)
        produced by this capture, in (service, window) order; they are also
        appended to :meth:`alerts`.
        """
        transitions: list[SloAlert] = []
        for service in sorted(self._services):
            budget = self._services[service]
            budget.history.append((now, budget.good, budget.bad))
            for window in self.windows:
                burn = self._burn_rate(budget, now, window.horizon)
                confirm = self._burn_rate(budget, now, window.confirm_horizon)
                firing = burn >= window.threshold and confirm >= window.threshold
                key = (service, window.name)
                was_firing = self._firing.get(key, False)
                if firing != was_firing:
                    self._firing[key] = firing
                    alert = SloAlert(
                        time=now,
                        service=service,
                        window=window.name,
                        state="firing" if firing else "resolved",
                        burn_rate=burn,
                        threshold=window.threshold,
                    )
                    self._alerts.append(alert)
                    transitions.append(alert)
        return transitions

    def _burn_rate(self, budget: _ServiceBudget, now: float, horizon: float) -> float:
        """Bad fraction over the trailing ``horizon``, divided by the budget."""
        base_good = base_bad = 0
        cutoff = now - horizon
        if cutoff > 0:
            # Oldest capture point still inside the window; everything
            # before it is the baseline we difference against.
            for time, good, bad in budget.history:
                if time > cutoff + 1e-9:
                    break
                base_good, base_bad = good, bad
        delta_good = budget.good - base_good
        delta_bad = budget.bad - base_bad
        total = delta_good + delta_bad
        if total == 0:
            return 0.0
        return (delta_bad / total) / self.budget

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def burn_rate(self, service: str, horizon: float, now: float) -> float:
        """Current burn rate of one service over a trailing horizon."""
        budget = self._services.get(service)
        if budget is None:
            return 0.0
        return self._burn_rate(budget, now, horizon)

    def budget_remaining(self, service: str) -> float:
        """Whole-run error budget left, as a fraction (negative = blown)."""
        budget = self._services.get(service)
        if budget is None:
            return 1.0
        total = budget.good + budget.bad
        if total == 0:
            return 1.0
        return 1.0 - (budget.bad / total) / self.budget

    def services(self) -> list[str]:
        """Services with recorded traffic, sorted."""
        return sorted(self._services)

    def totals(self, service: str) -> tuple[int, int]:
        """Cumulative ``(good, bad)`` for one service (0, 0 if unseen)."""
        budget = self._services.get(service)
        if budget is None:
            return (0, 0)
        return (budget.good, budget.bad)

    def alerts(self) -> tuple[SloAlert, ...]:
        """Every alert transition recorded so far, in emission order."""
        return tuple(self._alerts)

    def firing(self) -> list[tuple[str, str]]:
        """Currently firing ``(service, window)`` pairs, sorted."""
        return sorted(key for key, state in self._firing.items() if state)
