"""The metric registry: one namespace of instrument families per run.

Mirrors the :class:`~repro.obs.tracer.NullTracer` pattern:

* :class:`MetricRegistry` — the recording implementation.  Families are
  registered idempotently (asking again with the same schema returns the
  same family; a conflicting re-declaration raises), children accumulate,
  and :meth:`~MetricRegistry.capture` appends each series' current value to
  a ring buffer stamped with *simulated* time.
* :class:`NullRegistry` — the zero-overhead default.  ``enabled`` is
  ``False`` and every family it hands out is a shared no-op, so
  instrumented code can hold instrument handles unconditionally and pay
  nothing when telemetry is off.

Retention is ring-buffered per series: ``MetricRegistry(retention=240)``
keeps the last 240 capture points of every series, enough for the live
``top`` dashboard's rate windows without unbounded growth on long runs.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TelemetryError
from repro.instrument import NullInstrument
from repro.telemetry.instruments import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricFamily,
)

#: Family kinds a registry can hold (exporters switch on this).
FAMILY_KINDS = ("counter", "gauge", "histogram")


class MetricRegistry:
    """Registry of metric families for one simulation run."""

    #: ``False`` on :class:`NullRegistry`: callers may skip building
    #: expensive label values / sampling passes entirely when unset.
    enabled = True

    def __init__(self, *, retention: int = 240) -> None:
        if retention < 2:
            raise TelemetryError(f"retention must be >= 2 capture points, got {retention}")
        #: Capture points kept per series (ring buffer length).
        self.retention = retention
        self._families: dict[str, MetricFamily[Counter] | MetricFamily[Gauge] | MetricFamily[Histogram]] = {}
        #: Simulated time of the most recent :meth:`capture` (-1 before any).
        self.last_capture = -1.0

    # ------------------------------------------------------------------
    # Registration (idempotent per name)
    # ------------------------------------------------------------------
    def counter(
        self,
        name: str,
        help: str,
        *,
        unit: str = "",
        labels: tuple[str, ...] = (),
        volatile: bool = False,
    ) -> CounterFamily:
        """Register (or fetch) a counter family."""
        return self._register(
            CounterFamily(name, help, unit=unit, label_names=labels, volatile=volatile)
        )

    def gauge(
        self,
        name: str,
        help: str,
        *,
        unit: str = "",
        labels: tuple[str, ...] = (),
        volatile: bool = False,
    ) -> GaugeFamily:
        """Register (or fetch) a gauge family."""
        return self._register(
            GaugeFamily(name, help, unit=unit, label_names=labels, volatile=volatile)
        )

    def histogram(
        self,
        name: str,
        help: str,
        *,
        unit: str = "",
        labels: tuple[str, ...] = (),
        volatile: bool = False,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> HistogramFamily:
        """Register (or fetch) a histogram family with fixed bucket bounds."""
        return self._register(
            HistogramFamily(
                name, help, unit=unit, label_names=labels, volatile=volatile, buckets=buckets
            )
        )

    def _register(self, family):  # type: ignore[no-untyped-def]
        existing = self._families.get(family.name)
        if existing is None:
            self._families[family.name] = family
            return family
        if (
            type(existing) is not type(family)
            or existing.label_names != family.label_names
            or existing.unit != family.unit
            or existing.volatile != family.volatile
            or getattr(existing, "buckets", None) != getattr(family, "buckets", None)
        ):
            raise TelemetryError(
                f"metric {family.name!r} re-registered with a different schema "
                f"(kind/labels/unit/buckets must match the first declaration)"
            )
        return existing

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, name: str) -> MetricFamily[Counter] | MetricFamily[Gauge] | MetricFamily[Histogram] | None:
        """The family registered under ``name``, or ``None``."""
        return self._families.get(name)

    def families(
        self, *, include_volatile: bool = True
    ) -> tuple[MetricFamily[Counter] | MetricFamily[Gauge] | MetricFamily[Histogram], ...]:
        """All families, sorted by name (the canonical export order)."""
        return tuple(
            family
            for name, family in sorted(self._families.items())
            if include_volatile or not family.volatile
        )

    def __len__(self) -> int:
        return len(self._families)

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def capture(self, now: float) -> None:
        """Append every series' current value to its ring, stamped ``now``.

        ``now`` is simulated time supplied by the caller (normally the
        telemetry sampling actor) — this module never reads a clock.
        """
        if now < self.last_capture:
            raise TelemetryError(
                f"capture at t={now} after t={self.last_capture}: time must not go backwards"
            )
        self.last_capture = now
        limit = self.retention
        for family in self._families.values():
            for _, child in family.children():
                history = child.history
                if isinstance(child, Histogram):
                    history.append((now, child.count, child.sum))
                else:
                    history.append((now, child.value))
                while len(history) > limit:
                    history.popleft()


class _NullCounter(Counter):
    """Shared no-op counter."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        """No-op."""


class _NullGauge(Gauge):
    """Shared no-op gauge."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """No-op."""

    def add(self, delta: float) -> None:
        """No-op."""


class _NullHistogram(Histogram):
    """Shared no-op histogram."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """No-op."""


class _NullCounterFamily(CounterFamily):
    """Counter family whose every child is the shared no-op counter."""

    def __init__(self) -> None:
        super().__init__("null", "no-op")
        self._child = _NullCounter()

    def labels(self, *values: str, **named: str) -> Counter:
        """The shared no-op child, whatever the labels."""
        return self._child

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """No-op."""


class _NullGaugeFamily(GaugeFamily):
    """Gauge family whose every child is the shared no-op gauge."""

    def __init__(self) -> None:
        super().__init__("null", "no-op")
        self._child = _NullGauge()

    def labels(self, *values: str, **named: str) -> Gauge:
        """The shared no-op child, whatever the labels."""
        return self._child

    def set(self, value: float, **labels: str) -> None:
        """No-op."""


class _NullHistogramFamily(HistogramFamily):
    """Histogram family whose every child is the shared no-op histogram."""

    def __init__(self) -> None:
        super().__init__("null", "no-op")
        self._child = _NullHistogram(self.buckets)

    def labels(self, *values: str, **named: str) -> Histogram:
        """The shared no-op child, whatever the labels."""
        return self._child

    def observe(self, value: float, **labels: str) -> None:
        """No-op."""


class NullRegistry(NullInstrument, MetricRegistry):
    """The zero-overhead default: hands out shared no-op instruments.

    Registration calls succeed (so instrumented code is written once,
    unconditionally) but record nothing, hold no per-name state, and
    :meth:`capture` is a no-op.  ``enabled`` comes from the shared
    :class:`~repro.instrument.NullInstrument` discipline (``False``), so
    samplers can skip whole collection passes.

    Null-ness is explicit: ``retention`` is ``0`` (no rings exist, so no
    fabricated "2 points" leaks into code that inspects registry kind),
    configuration keywords are rejected outright, and callers that need
    to branch on registry kind should test
    ``isinstance(registry, NullInstrument)`` (or just ``registry.enabled``)
    rather than sniffing attributes.
    """

    def __init__(self, *, retention: int | None = None) -> None:
        if retention is not None:
            raise TelemetryError(
                "NullRegistry keeps no series rings; retention does not apply "
                "(configure retention on a recording MetricRegistry instead)"
            )
        # Deliberately not chaining to MetricRegistry.__init__: its
        # retention floor (>= 2) would force this registry to claim ring
        # capacity it does not have.
        self._families = {}
        self.last_capture = -1.0
        #: No retention at all — nothing is ever captured.
        self.retention = 0
        self._null_counter = _NullCounterFamily()
        self._null_gauge = _NullGaugeFamily()
        self._null_histogram = _NullHistogramFamily()

    def counter(
        self,
        name: str,
        help: str,
        *,
        unit: str = "",
        labels: tuple[str, ...] = (),
        volatile: bool = False,
    ) -> CounterFamily:
        """The shared no-op counter family."""
        return self._null_counter

    def gauge(
        self,
        name: str,
        help: str,
        *,
        unit: str = "",
        labels: tuple[str, ...] = (),
        volatile: bool = False,
    ) -> GaugeFamily:
        """The shared no-op gauge family."""
        return self._null_gauge

    def histogram(
        self,
        name: str,
        help: str,
        *,
        unit: str = "",
        labels: tuple[str, ...] = (),
        volatile: bool = False,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> HistogramFamily:
        """The shared no-op histogram family."""
        return self._null_histogram

    def capture(self, now: float) -> None:
        """No-op."""


#: Shared default instance — NullRegistry is stateless, so one is enough.
NULL_REGISTRY = NullRegistry()
