"""Metric instruments: counters, gauges, and fixed-bucket histograms.

Three instrument kinds, deliberately mirroring the OpenMetrics data model so
the exposition layer (:mod:`repro.telemetry.openmetrics`) is a straight
rendering pass:

* :class:`Counter` — monotone accumulation (requests routed, actions applied).
* :class:`Gauge` — last-written value (backlog depth, per-node utilization).
* :class:`Histogram` — fixed, *declared* bucket bounds.  Bounds are part of
  the instrument's identity and never adapt to the data, so two same-seed
  runs bucket identically and snapshots are byte-reproducible.

Instruments are grouped into *families* (one per metric name); a family with
declared label names hands out one child instrument per label-value tuple.
Children are plain mutable objects with ``__slots__`` — the hot path is an
attribute add, nothing more.

Timestamps never originate here: series history is only written by
:meth:`repro.telemetry.MetricRegistry.capture`, which is handed the *sim*
clock's ``now`` by the caller.  Wall-clock reads inside this package are
forbidden outright (lint rule OBS001).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Generic, Iterator, Sequence, TypeVar

from repro.errors import TelemetryError

#: Resolved label values of one child, in the family's declared name order.
LabelValues = tuple[str, ...]

#: Default response-time bucket bounds (seconds).  Chosen to straddle the
#: paper's SLA targets (5 s default, 8 s in the cost experiments) and the
#: 30 s client timeout that turns a slow request into a connection failure.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value", "history")

    def __init__(self) -> None:
        self.value = 0.0
        #: Ring of ``(time, value)`` capture points (see ``MetricRegistry.capture``).
        self.history: deque[tuple[float, float]] = deque()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters never go down)."""
        if amount < 0:
            raise TelemetryError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def scalar(self) -> float:
        """The value captured into the series history."""
        return self.value


class Gauge:
    """A value that can go up and down; reads report the last write."""

    __slots__ = ("value", "history")

    def __init__(self) -> None:
        self.value = 0.0
        self.history: deque[tuple[float, float]] = deque()

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = value

    def add(self, delta: float) -> None:
        """Shift the gauge by ``delta`` (may be negative)."""
        self.value += delta

    def scalar(self) -> float:
        """The value captured into the series history."""
        return self.value


class Histogram:
    """Cumulative histogram over fixed, declared bucket bounds.

    ``bounds`` are the finite upper edges; an implicit ``+Inf`` bucket
    catches everything above the last bound.  ``counts[i]`` is the number of
    observations in ``(bounds[i-1], bounds[i]]`` — *non*-cumulative
    internally; the exporters accumulate at render time.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "history")

    def __init__(self, bounds: Sequence[float]) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise TelemetryError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(edges, edges[1:])):
            raise TelemetryError(f"histogram bounds must strictly increase: {edges}")
        self.bounds = edges
        self.counts = [0] * (len(edges) + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0
        #: Ring of ``(time, count, sum)`` capture points.
        self.history: deque[tuple[float, int, float]] = deque()

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> tuple[int, ...]:
        """Cumulative counts per bound, ending with the ``+Inf`` total."""
        out = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return tuple(out)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile by linear interpolation within buckets.

        The estimate is exact at bucket edges and linear between them — the
        standard Prometheus ``histogram_quantile`` construction.  Values in
        the ``+Inf`` bucket are reported as the largest finite bound (the
        estimator cannot extrapolate past its declared range).  Returns 0.0
        for an empty histogram.
        """
        if not 0 <= q <= 1:
            raise TelemetryError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0.0
        lower = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                if index < len(self.bounds):
                    lower = self.bounds[index]
                continue
            if running + bucket_count >= rank:
                if index >= len(self.bounds):  # +Inf bucket: clamp
                    return self.bounds[-1]
                upper = self.bounds[index]
                fraction = (rank - running) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
            running += bucket_count
            if index < len(self.bounds):
                lower = self.bounds[index]
        return self.bounds[-1]

    def scalar(self) -> tuple[int, float]:
        """``(count, sum)`` — the pair captured into the series history."""
        return (self.count, self.sum)


InstrumentT = TypeVar("InstrumentT", Counter, Gauge, Histogram)

#: Family name grammar (OpenMetrics metric-name subset).  The ``_total``
#: suffix is reserved: the exporter appends it to counter sample names, so a
#: family declared with it would double up.
_NAME_OK = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_")


def validate_metric_name(name: str) -> str:
    """Check a family name against the naming convention; returns it."""
    if not name or name[0] not in frozenset("abcdefghijklmnopqrstuvwxyz"):
        raise TelemetryError(f"metric name must start with a lowercase letter: {name!r}")
    if not set(name) <= _NAME_OK:
        raise TelemetryError(f"metric name may only use [a-z0-9_]: {name!r}")
    if name.endswith("_total"):
        raise TelemetryError(
            f"metric name must not end in '_total' (the exporter adds it): {name!r}"
        )
    return name


class MetricFamily(Generic[InstrumentT]):
    """All series of one metric name: metadata plus labelled children.

    Construction goes through :class:`~repro.telemetry.MetricRegistry`; the
    family keeps one child per label-value tuple, created on first use and
    iterated in sorted label order so exports are deterministic.
    """

    #: Overridden by the concrete family ("counter" / "gauge" / "histogram").
    kind = ""

    def __init__(
        self,
        name: str,
        help: str,
        *,
        unit: str = "",
        label_names: tuple[str, ...] = (),
        volatile: bool = False,
    ) -> None:
        self.name = validate_metric_name(name)
        self.help = help
        self.unit = unit
        self.label_names = tuple(label_names)
        #: Volatile families carry host-dependent values (wall-clock phase
        #: timings); exporters exclude them from persisted artifacts unless
        #: explicitly asked, so snapshots stay run-for-run reproducible.
        self.volatile = volatile
        self._children: dict[LabelValues, InstrumentT] = {}

    # ------------------------------------------------------------------
    # Child resolution
    # ------------------------------------------------------------------
    def labels(self, *values: str, **named: str) -> InstrumentT:
        """The child instrument for one label-value assignment.

        Accepts either positional values in declared order or keyword
        arguments; the resolved child is cached, so hot paths should hold
        the returned handle rather than re-resolving every call.
        """
        resolved = self._resolve_values(values, named)
        child = self._children.get(resolved)
        if child is None:
            child = self._make()
            self._children[resolved] = child
        return child

    def _resolve_values(self, values: tuple, named: dict) -> LabelValues:
        """Validate one label-value assignment into canonical tuple form."""
        if named:
            if values:
                raise TelemetryError("pass label values positionally or by name, not both")
            try:
                values = tuple(str(named[name]) for name in self.label_names)
            except KeyError as exc:
                raise TelemetryError(
                    f"{self.name}: missing label {exc.args[0]!r} "
                    f"(declared: {', '.join(self.label_names) or 'none'})"
                ) from None
            if len(named) != len(self.label_names):
                extra = sorted(set(named) - set(self.label_names))
                raise TelemetryError(f"{self.name}: unknown labels {extra}")
        else:
            values = tuple(str(v) for v in values)
        if len(values) != len(self.label_names):
            raise TelemetryError(
                f"{self.name} declares {len(self.label_names)} label(s) "
                f"({', '.join(self.label_names) or 'none'}), got {len(values)} value(s)"
            )
        return values

    def _make(self) -> InstrumentT:
        raise NotImplementedError  # pragma: no cover - abstract

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def peek(self, *values: str) -> InstrumentT | None:
        """The child for ``values`` if it already exists — never creates.

        Read-only consumers (the ``top`` renderer) use this so rendering a
        frame cannot mint empty series into the registry.
        """
        return self._children.get(tuple(str(v) for v in values))

    def children(self) -> Iterator[tuple[LabelValues, InstrumentT]]:
        """``(label_values, instrument)`` pairs in sorted label order."""
        return iter(sorted(self._children.items()))

    def __len__(self) -> int:
        return len(self._children)


class CounterFamily(MetricFamily[Counter]):
    """Family of :class:`Counter` series."""

    kind = "counter"

    def _make(self) -> Counter:
        return Counter()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Convenience: resolve the child and increment in one call."""
        self.labels(**labels).inc(amount)


class GaugeFamily(MetricFamily[Gauge]):
    """Family of :class:`Gauge` series."""

    kind = "gauge"

    def _make(self) -> Gauge:
        return Gauge()

    def set(self, value: float, **labels: str) -> None:
        """Convenience: resolve the child and set in one call."""
        self.labels(**labels).set(value)


class HistogramFamily(MetricFamily[Histogram]):
    """Family of :class:`Histogram` series sharing one set of bucket bounds."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        *,
        unit: str = "",
        label_names: tuple[str, ...] = (),
        volatile: bool = False,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, unit=unit, label_names=label_names, volatile=volatile)
        #: Shared bucket bounds — fixed at declaration, identical across children.
        self.buckets = tuple(float(b) for b in buckets)
        Histogram(self.buckets)  # validate the bounds once, up front

    def _make(self) -> Histogram:
        return Histogram(self.buckets)

    def observe(self, value: float, **labels: str) -> None:
        """Convenience: resolve the child and observe in one call."""
        self.labels(**labels).observe(value)
