"""Streaming telemetry: metric registry, exporters, SLO burn-rate tracking.

The observability layer for *running* experiments, complementing the
post-hoc summaries in :mod:`repro.metrics` and the decision traces in
:mod:`repro.obs`:

* :class:`MetricRegistry` / :data:`NULL_REGISTRY` — instrument namespace
  per run; the null default records nothing at zero cost (the
  ``NullTracer`` pattern).
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` and their
  families — the three OpenMetrics instrument kinds, sim-time only,
  fixed declared histogram buckets.
* :class:`RunTelemetry` — the standard instrument catalogue and the
  engine's sampling actor (wired by ``Simulation.build(telemetry=...)``).
* :class:`SloTracker` / :class:`BurnWindow` / :class:`SloAlert` —
  error-budget accounting with multiwindow burn-rate alerts.
* :func:`render_openmetrics` / :func:`write_snapshot_jsonl` and friends —
  byte-deterministic exporters (and their strict parsers).
* :func:`render_top` / :func:`run_top` — the live ``top`` dashboard.
* :class:`SamplingController` / :class:`SamplingSpec` /
  :func:`resolve_sampling` — adaptive sampling policies (``full``,
  ``adaptive``, ``threshold-aware``) with an
  :class:`ObservationCostModel`-charged :class:`MonitorBudget`.
* :class:`ShardedMetricRegistry` / :func:`merge_shard_snapshots` —
  per-shard series retention with byte-identical mergeable snapshots.

See ``docs/telemetry.md`` for the instrument catalogue and conventions,
including the "Scaling the observer" section for sampling and sharding.
"""

from repro.telemetry.cost import DEFAULT_COST_MODEL, MonitorBudget, ObservationCostModel
from repro.telemetry.hub import RunTelemetry
from repro.telemetry.instruments import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    CounterFamily,
    Gauge,
    GaugeFamily,
    Histogram,
    HistogramFamily,
    MetricFamily,
)
from repro.telemetry.openmetrics import (
    parse_openmetrics,
    render_openmetrics,
    write_openmetrics,
)
from repro.telemetry.registry import NULL_REGISTRY, MetricRegistry, NullRegistry
from repro.telemetry.sampling import (
    AdaptiveSamplingController,
    SamplingController,
    SamplingSpec,
    ThresholdAwareSamplingController,
    make_sampling,
    register_sampling_policy,
    registered_sampling_policies,
    resolve_sampling,
)
from repro.telemetry.sharding import (
    ShardedMetricRegistry,
    merge_shard_snapshots,
    shard_index,
)
from repro.telemetry.slo import (
    DEFAULT_BURN_WINDOWS,
    BurnWindow,
    SloAlert,
    SloTracker,
)
from repro.telemetry.snapshot import (
    TELEMETRY_SCHEMA,
    read_snapshot_jsonl,
    snapshot_to_jsonl,
    write_snapshot_jsonl,
)
from repro.telemetry.top import render_top, run_top

__all__ = [
    "Counter",
    "CounterFamily",
    "Gauge",
    "GaugeFamily",
    "Histogram",
    "HistogramFamily",
    "MetricFamily",
    "DEFAULT_LATENCY_BUCKETS",
    "MetricRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "RunTelemetry",
    "SloTracker",
    "SloAlert",
    "BurnWindow",
    "DEFAULT_BURN_WINDOWS",
    "TELEMETRY_SCHEMA",
    "render_openmetrics",
    "write_openmetrics",
    "parse_openmetrics",
    "snapshot_to_jsonl",
    "write_snapshot_jsonl",
    "read_snapshot_jsonl",
    "render_top",
    "run_top",
    "ObservationCostModel",
    "DEFAULT_COST_MODEL",
    "MonitorBudget",
    "SamplingSpec",
    "SamplingController",
    "AdaptiveSamplingController",
    "ThresholdAwareSamplingController",
    "registered_sampling_policies",
    "register_sampling_policy",
    "make_sampling",
    "resolve_sampling",
    "ShardedMetricRegistry",
    "merge_shard_snapshots",
    "shard_index",
]
