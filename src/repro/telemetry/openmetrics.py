"""OpenMetrics text exposition: deterministic render and strict parse.

The render side turns a :class:`~repro.telemetry.MetricRegistry` into the
OpenMetrics text format (the format Prometheus scrapes): ``# TYPE`` /
``# HELP`` / ``# UNIT`` metadata per family, one sample line per series,
``# EOF`` terminator.  Families render in sorted name order and children in
sorted label order, timestamps are omitted (sim time is carried by the JSONL
snapshots instead), and floats format canonically — so the exposition text
is a pure function of the registry contents and two same-seed runs produce
*byte-identical* documents.

The parse side is a self-contained validator used by ``make
telemetry-check`` and the test suite: it checks metadata ordering, sample
name/label grammar, histogram bucket monotonicity, and ``le="+Inf"`` ==
``_count`` consistency, without depending on any external client library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TelemetryError
from repro.telemetry.instruments import Histogram, MetricFamily
from repro.telemetry.registry import MetricRegistry


def format_value(value: float) -> str:
    """Canonical number formatting: integral floats as integers, the rest
    via ``repr`` (shortest round-trip form)."""
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_block(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _render_family(family: MetricFamily, lines: list[str]) -> None:
    name = family.name
    lines.append(f"# TYPE {name} {family.kind}")
    if family.unit:
        lines.append(f"# UNIT {name} {family.unit}")
    if family.help:
        lines.append(f"# HELP {name} {family.help}")
    label_names = family.label_names
    for values, child in family.children():
        if isinstance(child, Histogram):
            running = 0
            for bound, count in zip(child.bounds, child.counts):
                running += count
                block = _label_block(label_names, values, f'le="{format_value(bound)}"')
                lines.append(f"{name}_bucket{block} {running}")
            running += child.counts[-1]
            block = _label_block(label_names, values, 'le="+Inf"')
            lines.append(f"{name}_bucket{block} {running}")
            block = _label_block(label_names, values)
            lines.append(f"{name}_count{block} {child.count}")
            lines.append(f"{name}_sum{block} {format_value(child.sum)}")
        else:
            suffix = "_total" if family.kind == "counter" else ""
            block = _label_block(label_names, values)
            lines.append(f"{name}{suffix}{block} {format_value(child.value)}")


def render_openmetrics(registry: MetricRegistry, *, include_volatile: bool = False) -> str:
    """The registry as an OpenMetrics text document (ends with ``# EOF``).

    Volatile families (wall-clock phase timings) are excluded by default so
    the document stays a deterministic function of the simulated run; pass
    ``include_volatile=True`` for live views.
    """
    lines: list[str] = []
    for family in registry.families(include_volatile=include_volatile):
        if len(family) == 0:
            continue  # OpenMetrics forbids metadata-only families
        _render_family(family, lines)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    registry: MetricRegistry, path: str | Path, *, include_volatile: bool = False
) -> int:
    """Write the exposition document; returns the number of sample lines."""
    text = render_openmetrics(registry, include_volatile=include_volatile)
    Path(path).write_text(text, encoding="utf-8")
    return sum(1 for line in text.splitlines() if line and not line.startswith("#"))


# ----------------------------------------------------------------------
# Parsing / validation
# ----------------------------------------------------------------------
@dataclass
class ParsedFamily:
    """One metric family recovered from exposition text."""

    name: str
    kind: str
    unit: str = ""
    help: str = ""
    #: ``(sample_name, labels, value)`` in document order.
    samples: list[tuple[str, dict[str, str], float]] = field(default_factory=list)


def _parse_labels(block: str, lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    rest = block
    while rest:
        eq = rest.find("=")
        if eq < 0 or len(rest) < eq + 2 or rest[eq + 1] != '"':
            raise TelemetryError(f"line {lineno}: malformed label block {block!r}")
        name = rest[:eq]
        index = eq + 2
        value: list[str] = []
        while index < len(rest):
            char = rest[index]
            if char == "\\":
                if index + 1 >= len(rest):
                    raise TelemetryError(f"line {lineno}: dangling escape in {block!r}")
                escaped = rest[index + 1]
                value.append({"n": "\n", '"': '"', "\\": "\\"}.get(escaped, escaped))
                index += 2
            elif char == '"':
                break
            else:
                value.append(char)
                index += 1
        else:
            raise TelemetryError(f"line {lineno}: unterminated label value in {block!r}")
        labels[name] = "".join(value)
        rest = rest[index + 1 :]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            raise TelemetryError(f"line {lineno}: malformed label separator in {block!r}")
    return labels


#: Sample-name suffixes each family kind may legally expose.
_ALLOWED_SUFFIXES = {
    "counter": ("_total",),
    "gauge": ("",),
    "histogram": ("_bucket", "_count", "_sum"),
}


def parse_openmetrics(text: str) -> dict[str, ParsedFamily]:
    """Parse (and validate) an OpenMetrics document rendered by this module.

    Raises :class:`~repro.errors.TelemetryError` on structural problems:
    missing ``# EOF``, samples before their ``# TYPE``, unknown suffixes,
    non-monotone histogram buckets, or bucket/count mismatches.
    """
    families: dict[str, ParsedFamily] = {}
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if saw_eof:
            raise TelemetryError(f"line {lineno}: content after # EOF")
        if not line:
            raise TelemetryError(f"line {lineno}: blank lines are not allowed")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or parts[1] not in ("TYPE", "HELP", "UNIT"):
                raise TelemetryError(f"line {lineno}: malformed metadata line {line!r}")
            _, keyword, name, payload = parts
            if keyword == "TYPE":
                if name in families:
                    raise TelemetryError(f"line {lineno}: duplicate TYPE for {name!r}")
                if payload not in _ALLOWED_SUFFIXES:
                    raise TelemetryError(f"line {lineno}: unknown metric type {payload!r}")
                families[name] = ParsedFamily(name=name, kind=payload)
            else:
                family = families.get(name)
                if family is None:
                    raise TelemetryError(f"line {lineno}: {keyword} before TYPE for {name!r}")
                if family.samples:
                    raise TelemetryError(f"line {lineno}: {keyword} after samples of {name!r}")
                if keyword == "UNIT":
                    family.unit = payload
                else:
                    family.help = payload
            continue
        # Sample line: name[{labels}] value
        brace = line.find("{")
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise TelemetryError(f"line {lineno}: unbalanced braces in {line!r}")
            sample_name = line[:brace]
            labels = _parse_labels(line[brace + 1 : close], lineno)
            value_text = line[close + 1 :].strip()
        else:
            sample_name, _, value_text = line.partition(" ")
            labels = {}
        family = None
        for fam_name, candidate in families.items():
            if sample_name == fam_name or (
                sample_name.startswith(fam_name)
                and sample_name[len(fam_name) :] in _ALLOWED_SUFFIXES[candidate.kind]
            ):
                if family is None or len(fam_name) > len(family.name):
                    family = candidate
        if family is None:
            raise TelemetryError(f"line {lineno}: sample {sample_name!r} has no TYPE metadata")
        suffix = sample_name[len(family.name) :]
        if suffix not in _ALLOWED_SUFFIXES[family.kind]:
            raise TelemetryError(
                f"line {lineno}: suffix {suffix!r} is invalid for {family.kind} {family.name!r}"
            )
        try:
            value = float(value_text)
        except ValueError:
            raise TelemetryError(f"line {lineno}: bad sample value {value_text!r}") from None
        family.samples.append((sample_name, labels, value))
    if not saw_eof:
        raise TelemetryError("document does not end with # EOF")
    for family in families.values():
        if family.kind == "histogram":
            _validate_histogram_samples(family)
    return families


def _validate_histogram_samples(family: ParsedFamily) -> None:
    """Bucket counts must be cumulative and agree with ``_count``."""
    by_series: dict[tuple[tuple[str, str], ...], dict[str, object]] = {}
    for sample_name, labels, value in family.samples:
        suffix = sample_name[len(family.name) :]
        key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        series = by_series.setdefault(key, {"buckets": [], "count": None})
        if suffix == "_bucket":
            series["buckets"].append((labels.get("le", ""), value))  # type: ignore[union-attr]
        elif suffix == "_count":
            series["count"] = value
    for key, series in by_series.items():
        buckets = series["buckets"]
        assert isinstance(buckets, list)
        if not buckets or buckets[-1][0] != "+Inf":
            raise TelemetryError(f"{family.name}{dict(key)}: histogram missing le=\"+Inf\" bucket")
        counts = [count for _, count in buckets]
        if any(earlier > later for earlier, later in zip(counts, counts[1:])):
            raise TelemetryError(f"{family.name}{dict(key)}: bucket counts must be cumulative")
        if series["count"] is not None and counts[-1] != series["count"]:
            raise TelemetryError(
                f"{family.name}{dict(key)}: le=\"+Inf\" ({counts[-1]}) != _count ({series['count']})"
            )
