"""A ``top``-style plain-text dashboard over the live metric registry.

:func:`render_top` formats one frame — cluster header, per-node gauges,
per-service traffic with histogram-estimated latency quantiles, and SLO
burn-rate state — purely from registry contents, so frames are themselves
deterministic text.  :func:`run_top` drives a built simulation interval by
interval and writes a frame per interval, tolerating a closed pipe
(``hyscale-repro top | head`` must exit cleanly, not stack-trace).

Rates shown in frames are computed from the series rings written by
``MetricRegistry.capture`` — the dashboard never keeps state of its own.
"""

from __future__ import annotations

from typing import IO, Iterable

from repro.telemetry.instruments import Counter, Gauge, Histogram
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.slo import SloTracker

#: Trailing window used for the dashboard's rate columns (sim seconds).
RATE_WINDOW = 30.0


def series_rate(child: Counter, now: float, window: float = RATE_WINDOW) -> float:
    """Per-second increase of a counter over its trailing ring window."""
    base_time = None
    base_value = 0.0
    cutoff = now - window
    for time, value in child.history:
        if time > cutoff + 1e-9:
            break
        base_time, base_value = time, value
    if base_time is None:
        # Ring starts inside the window: rate since the start of the run.
        base_time = 0.0
    elapsed = now - base_time
    if elapsed <= 0:
        return 0.0
    return (child.value - base_value) / elapsed


def _scalar(registry: MetricRegistry, name: str, *values: str) -> float:
    family = registry.get(name)
    if family is None:
        return 0.0
    child = family.peek(*values)
    if child is None:
        return 0.0
    if isinstance(child, Histogram):
        return float(child.count)
    return child.value


def _children(registry: MetricRegistry, name: str) -> Iterable[tuple[tuple[str, ...], object]]:
    family = registry.get(name)
    if family is None:
        return ()
    return family.children()


def _bar(fraction: float, width: int = 10) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_top(
    registry: MetricRegistry,
    *,
    now: float,
    slo: SloTracker | None = None,
    title: str = "",
    max_nodes: int | None = None,
) -> str:
    """One dashboard frame as plain text (no ANSI codes).

    ``max_nodes`` caps the node panel at the K busiest nodes — ranked by
    their binding resource (the max of cpu/mem/net utilization), ties
    broken by name — with a trailing ``(+N more nodes)`` line.  ``None``
    (the default) renders every node in registration order, which keeps
    small-fleet frames byte-identical to the pre-``max_nodes`` dashboard.
    """
    if max_nodes is not None and max_nodes < 1:
        raise ValueError(f"max_nodes must be >= 1, got {max_nodes}")
    lines: list[str] = []
    header = f"hyscale-repro top — t={now:.1f}s"
    if title:
        header += f" — {title}"
    lines.append(header)
    lines.append(
        "steps={:.0f}  routed={:.0f}  rejected={:.0f}  backlog={:.0f}  oom={:.0f}".format(
            _scalar(registry, "sim_steps"),
            _scalar(registry, "lb_requests_routed"),
            _scalar(registry, "lb_requests_rejected"),
            _scalar(registry, "lb_backlog_requests"),
            _scalar(registry, "oom_kills"),
        )
    )
    lines.append(
        "scaling: ticks={:.0f} emitted={:.0f} applied={:.0f} failed={:.0f}".format(
            _scalar(registry, "monitor_ticks"),
            _scalar(registry, "monitor_actions_emitted"),
            _scalar(registry, "monitor_actions_applied"),
            _scalar(registry, "monitor_actions_failed"),
        )
    )

    node_rows = list(_children(registry, "node_cpu_utilization_ratio"))
    if node_rows:
        hidden = 0
        if max_nodes is not None:
            ranked = []
            for values, child in node_rows:
                node = values[0]
                assert isinstance(child, Gauge)
                binding = max(
                    child.value,
                    _scalar(registry, "node_memory_utilization_ratio", node),
                    _scalar(registry, "node_network_utilization_ratio", node),
                )
                ranked.append((-binding, node, (values, child)))
            ranked.sort(key=lambda entry: entry[:2])
            hidden = max(0, len(ranked) - max_nodes)
            node_rows = [entry[2] for entry in ranked[:max_nodes]]
        lines.append("")
        lines.append(f"{'NODE':<12} {'CPU':<16} {'MEM':<16} {'NET':<16} {'CTRS':>4}")
        for values, child in node_rows:
            node = values[0]
            assert isinstance(child, Gauge)
            cpu = child.value
            mem = _scalar(registry, "node_memory_utilization_ratio", node)
            net = _scalar(registry, "node_network_utilization_ratio", node)
            containers = _scalar(registry, "node_containers", node)
            lines.append(
                f"{node:<12} {_bar(cpu)} {cpu * 100:4.0f}% {_bar(mem)} {mem * 100:4.0f}% "
                f"{_bar(net)} {net * 100:4.0f}% {containers:4.0f}"
            )
        if hidden:
            lines.append(f"(+{hidden} more node{'s' if hidden != 1 else ''})")

    service_rows = list(_children(registry, "service_replicas"))
    if service_rows:
        lines.append("")
        lines.append(
            f"{'SERVICE':<16} {'REPL':>4} {'OFFER/S':>8} {'DONE/S':>8} "
            f"{'FAIL/S':>8} {'P50':>7} {'P95':>7} {'P99':>7}"
        )
        latency = registry.get("request_response_seconds")
        offered = registry.get("requests_offered")
        completed = registry.get("requests_completed")
        failed = registry.get("requests_failed")
        for values, child in service_rows:
            service = values[0]
            assert isinstance(child, Gauge)
            offer_rate = done_rate = 0.0
            if offered is not None:
                offer_child = offered.peek(service)
                if isinstance(offer_child, Counter):
                    offer_rate = series_rate(offer_child, now)
            if completed is not None:
                done_child = completed.peek(service)
                if isinstance(done_child, Counter):
                    done_rate = series_rate(done_child, now)
            fail_rate = 0.0
            if failed is not None:
                for fail_values, fail_child in failed.children():
                    if fail_values[0] == service:
                        assert isinstance(fail_child, Counter)
                        fail_rate += series_rate(fail_child, now)
            p50 = p95 = p99 = 0.0
            if latency is not None:
                hist = latency.peek(service)
                if isinstance(hist, Histogram) and hist.count:
                    p50, p95, p99 = (
                        hist.quantile(0.5),
                        hist.quantile(0.95),
                        hist.quantile(0.99),
                    )
            lines.append(
                f"{service:<16} {child.value:4.0f} {offer_rate:8.2f} {done_rate:8.2f} "
                f"{fail_rate:8.2f} {p50:6.2f}s {p95:6.2f}s {p99:6.2f}s"
            )

    # Application-graph user view: rendered only when the run recorded
    # end-to-end ingress observations, so single-service frames are
    # byte-identical to pre-graph releases.  Per-service rows above count
    # *all* tier traffic (capacity); these rows count each user request
    # exactly once.
    app_rows = list(_children(registry, "app_request_response_seconds"))
    if app_rows:
        lines.append("")
        lines.append(
            f"{'APP INGRESS':<16} {'IN/S':>8} {'E2E-P50':>8} {'E2E-P95':>8} {'E2E-P99':>8}"
        )
        ingress = registry.get("requests_ingress")
        internal = registry.get("requests_internal")
        for values, hist in app_rows:
            service = values[0]
            in_rate = 0.0
            if ingress is not None:
                in_child = ingress.peek(service)
                if isinstance(in_child, Counter):
                    in_rate = series_rate(in_child, now)
            p50 = p95 = p99 = 0.0
            if isinstance(hist, Histogram) and hist.count:
                p50, p95, p99 = (
                    hist.quantile(0.5),
                    hist.quantile(0.95),
                    hist.quantile(0.99),
                )
            lines.append(
                f"{service:<16} {in_rate:8.2f} {p50:7.2f}s {p95:7.2f}s {p99:7.2f}s"
            )
        if internal is not None:
            internal_rate = 0.0
            for _, int_child in internal.children():
                if isinstance(int_child, Counter):
                    internal_rate += series_rate(int_child, now)
            lines.append(f"{'(internal)':<16} {internal_rate:8.2f}")

    if slo is not None and slo.services():
        lines.append("")
        lines.append(f"{'SLO':<16} {'WINDOW':<8} {'BURN':>8} {'BUDGET':>8}  STATE")
        firing = set(slo.firing())
        for service in slo.services():
            remaining = slo.budget_remaining(service)
            for window in slo.windows:
                burn = slo.burn_rate(service, window.horizon, now)
                state = "FIRING" if (service, window.name) in firing else "ok"
                lines.append(
                    f"{service:<16} {window.name:<8} {burn:8.2f} {remaining * 100:7.1f}%  {state}"
                )

    return "\n".join(lines) + "\n"


def run_top(
    simulation: object,
    *,
    duration: float,
    interval: float,
    stream: IO[str],
    title: str = "",
    clear: bool = False,
    max_nodes: int | None = None,
) -> int:
    """Drive ``simulation`` and write one frame per simulated interval.

    ``simulation`` is a built :class:`repro.experiments.Simulation` (typed
    loosely to keep this module import-light).  Returns the number of
    frames written; stops early — cleanly — if the stream's consumer goes
    away (``BrokenPipeError``), so piping into ``head`` works.
    """
    engine = simulation.engine  # type: ignore[attr-defined]
    hub = simulation.telemetry  # type: ignore[attr-defined]
    if hub is None or not hub.registry.enabled:
        raise ValueError("run_top needs a simulation built with a recording registry")
    frames = 0
    remaining = duration
    try:
        while remaining > 1e-9:
            chunk = min(interval, remaining)
            engine.run_for(chunk)
            remaining -= chunk
            if clear:
                stream.write("\x1b[2J\x1b[H")
            stream.write(
                render_top(
                    hub.registry,
                    now=engine.clock.now,
                    slo=hub.slo,
                    title=title,
                    max_nodes=max_nodes,
                )
            )
            stream.write("\n")
            stream.flush()
            frames += 1
    except BrokenPipeError:
        pass
    return frames
