"""Adaptive sampling: decide *which nodes* the telemetry actor collects.

At fleet scale the per-interval pull pass (every node, every container —
see :meth:`repro.telemetry.RunTelemetry.sample`) is the observer's hot
loop.  A :class:`SamplingController` sits in front of it and decides,
node by node and deterministically, whether this pass collects fresh
values or keeps the last-known ones:

* ``full`` — every node, every pass: byte-identical to the pre-sampling
  telemetry layer, and the default everywhere.
* ``adaptive`` — full cadence for nodes whose utilization sits inside a
  configurable guard band around the scaling thresholds, or with recent
  OOM/boot/scale activity; exponentially decayed cadence (x2 per quiet
  observation, capped at ``max_backoff``) elsewhere.
* ``threshold-aware`` — ``adaptive`` whose guard-band edges are derived
  from the deployed services' declared ``target_utilization`` instead of
  fixed bounds, so the controller watches exactly where the autoscaling
  policies make decisions.

Skipped nodes keep **last-known values**: their gauges are not rewritten,
and ``capture`` re-records the stale value, so every series stays dense.
Staleness is *bounded*: a node is re-collected after at most
``max_backoff`` sampling intervals (:meth:`SamplingController.max_staleness`
reports the bound).  Activity hotness is *targeted*: a node that showed
boot/stop/OOM churn keeps full cadence for ``hot_seconds`` (an applied
scale action surfaces as churn on the affected node within the staleness
bound), and an OOM kill — rare and correctness-critical — additionally
forces one fleet-wide sweep so the reaped container's node is rediscovered
immediately rather than at its next due pass.

Every pass is charged to a :class:`~repro.telemetry.cost.MonitorBudget`
using an :class:`~repro.telemetry.cost.ObservationCostModel`, so the
observer's cost is a simulated quantity the scale bench can compare
across policies.  Decisions are pure functions of simulated state — no
clocks, no randomness — so sampled runs stay byte-deterministic.

Policies are pluggable behind a name registry mirroring
:mod:`repro.core.registry`: :func:`registered_sampling_policies`,
:func:`register_sampling_policy`, and :func:`resolve_sampling` (the one
coercion point behind every API accepting a policy name).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.errors import TelemetryError
from repro.telemetry.cost import DEFAULT_COST_MODEL, MonitorBudget, ObservationCostModel

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.cluster.cluster import Cluster
    from repro.obs.profiler import PhaseProfiler
    from repro.telemetry.registry import MetricRegistry


@dataclass(frozen=True)
class SamplingSpec:
    """Declarative sampling configuration (frozen, shareable).

    ``policy`` names the controller (see
    :func:`registered_sampling_policies`); the remaining knobs tune the
    decaying controllers and are ignored by ``full``:

    * ``guard_band`` — a node whose cpu/mem/net utilization is within
      this distance of a threshold edge keeps full cadence;
    * ``hot_low`` / ``hot_high`` — the fixed threshold edges used by
      ``adaptive`` (``threshold-aware`` derives edges from the fleet);
    * ``max_backoff`` — cadence decays x2 per quiet observation up to
      this multiplier of the sampling interval (the staleness bound);
    * ``hot_seconds`` — how long boot/stop/OOM churn keeps the affected
      node at full cadence.
    """

    policy: str = "full"
    guard_band: float = 0.1
    hot_low: float = 0.2
    hot_high: float = 0.8
    max_backoff: int = 8
    hot_seconds: float = 10.0
    cost: ObservationCostModel = DEFAULT_COST_MODEL

    def __post_init__(self) -> None:
        if not 0.0 <= self.guard_band <= 1.0:
            raise TelemetryError(f"guard_band must be in [0, 1], got {self.guard_band}")
        if not 0.0 <= self.hot_low <= self.hot_high <= 1.0:
            raise TelemetryError(
                f"need 0 <= hot_low <= hot_high <= 1, got {self.hot_low}/{self.hot_high}"
            )
        if self.max_backoff < 1:
            raise TelemetryError(f"max_backoff must be >= 1, got {self.max_backoff}")
        if self.hot_seconds < 0:
            raise TelemetryError(f"hot_seconds must be >= 0, got {self.hot_seconds}")


class SamplingController:
    """The ``full`` controller: collect everything, every pass.

    Also the base class for the decaying controllers — the shared parts
    are the cost ledger, the activity window, and the instrument
    publishing; subclasses override :meth:`node_due` and the hotness
    decision.  One controller instance belongs to one run (it carries
    per-node cadence state), so ``Simulation.build`` resolves a fresh one
    per simulation.
    """

    #: Registry name (overridden by subclasses / set by factories).
    name = "full"
    #: Whether this controller mints ``monitoring_*`` families.  ``full``
    #: does not: the default export byte-layout must match a build that
    #: never heard of sampling.
    exports_metrics = False

    def __init__(self, spec: SamplingSpec | None = None) -> None:
        self.spec = spec if spec is not None else SamplingSpec(policy=self.name)
        self.budget = MonitorBudget()
        self._registry: "MetricRegistry | None" = None
        self._sample_every = 5.0
        #: Simulated time each node was last freshly collected.
        self._last_observed: dict[str, float] = {}
        #: ``True`` while the current pass is a forced fleet-wide sweep.
        self._sweep = False
        self._prev_ooms = 0.0
        self._max_stale = 0.0
        self._published = MonitorBudget()
        self._instruments: dict[str, object] | None = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(
        self,
        *,
        cluster: "Cluster",
        registry: "MetricRegistry",
        sample_every: float,
    ) -> None:
        """Attach the run's data sources (called once by the hub)."""
        _ = cluster
        self._registry = registry
        self._sample_every = sample_every
        if self.exports_metrics and registry.enabled:
            cost = registry.counter(
                "monitoring_collection_cost_seconds",
                "Simulated collector CPU charged by the observation-cost model.",
                unit="seconds",
            )
            observed = registry.counter(
                "monitoring_nodes_observed", "Nodes freshly collected by the sampler."
            )
            skipped = registry.counter(
                "monitoring_nodes_skipped",
                "Node collection passes skipped (last-known values kept).",
            )
            containers = registry.counter(
                "monitoring_containers_observed",
                "Active containers touched by fresh collection passes.",
            )
            series = registry.counter(
                "monitoring_series_captured", "Series points written into retention."
            )
            stale = registry.gauge(
                "monitoring_staleness_seconds_max",
                "Oldest last-known value served in the latest sampling pass.",
                unit="seconds",
            )
            # Mint the children now so the series set is fixed from the
            # first capture (deterministic export layout).
            self._instruments = {
                "cost": cost.labels(),
                "nodes_observed": observed.labels(),
                "nodes_skipped": skipped.labels(),
                "containers": containers.labels(),
                "series": series.labels(),
                "staleness": stale.labels(),
            }

    # ------------------------------------------------------------------
    # Per-pass protocol (driven by RunTelemetry.sample)
    # ------------------------------------------------------------------
    def begin_sample(self, now: float, *, oom_kills: float, actions_applied: float) -> None:
        """Open one sampling pass; an OOM kill forces a fleet-wide sweep.

        Applied scale actions deliberately do *not* force a sweep — the
        affected nodes surface as churn within the staleness bound, and a
        busy autoscaler would otherwise pin the whole fleet at full
        cadence.  OOM kills are rare and correctness-critical, so they
        re-sync every node immediately.
        """
        _ = now, actions_applied
        self._sweep = oom_kills > self._prev_ooms
        self._prev_ooms = oom_kills
        self._max_stale = 0.0

    def node_due(self, node: str, now: float) -> bool:
        """Should this pass freshly collect ``node``?  ``full``: always."""
        _ = node, now
        return True

    def observe_node(
        self,
        node: str,
        now: float,
        *,
        cpu: float,
        memory: float,
        network: float,
        containers: int,
        churn: int,
    ) -> None:
        """Account one fresh collection and update the node's cadence."""
        _ = cpu, memory, network, churn
        self.budget.charge_node(self.spec.cost, containers)
        self._last_observed[node] = now

    def skip_node(self, node: str, now: float) -> None:
        """Account one skipped node; its series keep last-known values."""
        self.budget.charge_skip(self.spec.cost)
        stale = now - self._last_observed.get(node, now)
        if stale > self._max_stale:
            self._max_stale = stale

    def finish_sample(self, now: float, *, profiler: "PhaseProfiler | None" = None) -> None:
        """Close the pass: charge the capture, publish cost instruments."""
        _ = now
        registry = self._registry
        series = 0
        if registry is not None and registry.enabled:
            series = sum(len(family) for family in registry.families())
        budget = self.budget
        budget.charge_capture(self.spec.cost, series)
        published = self._published
        cost_delta = budget.collection_cost_seconds - published.collection_cost_seconds
        observed_delta = budget.nodes_observed - published.nodes_observed
        skipped_delta = budget.nodes_skipped - published.nodes_skipped
        containers_delta = budget.containers_observed - published.containers_observed
        series_delta = budget.series_captured - published.series_captured
        published.collection_cost_seconds = budget.collection_cost_seconds
        published.nodes_observed = budget.nodes_observed
        published.nodes_skipped = budget.nodes_skipped
        published.containers_observed = budget.containers_observed
        published.series_captured = budget.series_captured
        if self._instruments is not None:
            self._instruments["cost"].inc(cost_delta)  # type: ignore[attr-defined]
            self._instruments["nodes_observed"].inc(observed_delta)  # type: ignore[attr-defined]
            self._instruments["nodes_skipped"].inc(skipped_delta)  # type: ignore[attr-defined]
            self._instruments["containers"].inc(containers_delta)  # type: ignore[attr-defined]
            self._instruments["series"].inc(series_delta)  # type: ignore[attr-defined]
            self._instruments["staleness"].set(self._max_stale)  # type: ignore[attr-defined]
        if profiler is not None:
            profiler.increment("telemetry.nodes_observed", observed_delta)
            profiler.increment("telemetry.nodes_skipped", skipped_delta)
            profiler.increment("telemetry.series_captured", series_delta)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def max_staleness(self) -> float:
        """Upper bound on how old a served last-known value can be."""
        return self.spec.max_backoff * self._sample_every

    def last_pass_staleness(self) -> float:
        """Oldest last-known value actually served in the latest pass."""
        return self._max_stale


class AdaptiveSamplingController(SamplingController):
    """Guard-band adaptive cadence with exponential decay (``adaptive``)."""

    name = "adaptive"
    exports_metrics = True

    def __init__(self, spec: SamplingSpec | None = None) -> None:
        super().__init__(spec if spec is not None else SamplingSpec(policy="adaptive"))
        #: Current cadence multiplier per node (1 = every pass).
        self._interval: dict[str, int] = {}
        #: Simulated time each node's next fresh collection is due.
        self._due: dict[str, float] = {}
        #: Per-node activity window: churn keeps full cadence until then.
        self._node_hot: dict[str, float] = {}
        self._edges: tuple[float, ...] = (self.spec.hot_low, self.spec.hot_high)

    def node_due(self, node: str, now: float) -> bool:
        if self._sweep:
            return True
        return now + 1e-9 >= self._due.get(node, 0.0)

    def _hot(self, node: str, now: float, cpu: float, memory: float, network: float, churn: int) -> bool:
        if churn:
            self._node_hot[node] = now + self.spec.hot_seconds
            return True
        if now < self._node_hot.get(node, -1.0):
            return True
        edges = self._edges
        if not edges:
            return True
        band = self.spec.guard_band
        ceiling = edges[-1] - band
        for value in (cpu, memory, network):
            if value >= ceiling:
                return True
            for edge in edges:
                if abs(value - edge) <= band:
                    return True
        return False

    def observe_node(
        self,
        node: str,
        now: float,
        *,
        cpu: float,
        memory: float,
        network: float,
        containers: int,
        churn: int,
    ) -> None:
        self.budget.charge_node(self.spec.cost, containers)
        self._last_observed[node] = now
        if self._hot(node, now, cpu, memory, network, churn):
            interval = 1
        else:
            interval = min(self._interval.get(node, 1) * 2, self.spec.max_backoff)
        self._interval[node] = interval
        self._due[node] = now + interval * self._sample_every


class ThresholdAwareSamplingController(AdaptiveSamplingController):
    """``adaptive`` with edges read from the fleet's declared targets."""

    name = "threshold-aware"

    def bind(
        self,
        *,
        cluster: "Cluster",
        registry: "MetricRegistry",
        sample_every: float,
    ) -> None:
        super().bind(cluster=cluster, registry=registry, sample_every=sample_every)
        targets = sorted(
            {service.spec.target_utilization for service in cluster.services.values()}
        )
        if targets:
            self._edges = tuple(targets)


# ----------------------------------------------------------------------
# The name registry (mirrors repro.core.registry)
# ----------------------------------------------------------------------
#: A factory builds a fresh controller for one run from its spec.
SamplingFactory = Callable[[SamplingSpec], SamplingController]


class _SamplingRegistry:
    """Name -> controller-factory table, populated with the built-ins.

    The table lives on an instance (not a bare module dict) so the lookup
    paths that run inside sweep workers carry no module-level mutable
    state; like the policy and backend registries, it is fully populated
    at import time and only read afterwards, so every worker resolves
    identically.
    """

    def __init__(self) -> None:
        self._entries: dict[str, SamplingFactory] = {
            "full": SamplingController,
            "adaptive": AdaptiveSamplingController,
            "threshold-aware": ThresholdAwareSamplingController,
        }

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def add(self, name: str, factory: SamplingFactory, *, replace: bool) -> None:
        if not name:
            raise TelemetryError("sampling policy name must be non-empty")
        if name in self._entries and not replace:
            raise TelemetryError(f"sampling policy {name!r} is already registered")
        self._entries[name] = factory

    def make(self, name: str, spec: SamplingSpec | None) -> SamplingController:
        try:
            factory = self._entries[name]
        except KeyError:
            raise TelemetryError(
                f"unknown sampling policy {name!r}; known: {self.names()}"
            ) from None
        if spec is None:
            spec = SamplingSpec(policy=name)
        elif spec.policy != name:
            spec = replace(spec, policy=name)
        return factory(spec)


_REGISTRY = _SamplingRegistry()


def registered_sampling_policies() -> tuple[str, ...]:
    """Every resolvable sampling-policy name, sorted."""
    return _REGISTRY.names()


def register_sampling_policy(
    name: str, factory: SamplingFactory, *, replace: bool = False
) -> None:
    """Add a sampling policy under ``name`` (see ``docs/telemetry.md``)."""
    _REGISTRY.add(name, factory, replace=replace)


def make_sampling(name: str, spec: SamplingSpec | None = None) -> SamplingController:
    """Build a fresh controller by name, configured by ``spec``."""
    return _REGISTRY.make(name, spec)


def resolve_sampling(
    sampling: "SamplingController | SamplingSpec | str | None",
) -> SamplingController:
    """Coerce ``sampling`` to a fresh controller (the one coercion point).

    ``None`` means the legacy default: a ``full`` controller whose runs
    are byte-identical to builds that never passed ``sampling`` at all.
    Controller instances pass through untouched (they carry per-run
    state, so reusing one across runs is the caller's responsibility).
    """
    if sampling is None:
        return SamplingController()
    if isinstance(sampling, SamplingController):
        return sampling
    if isinstance(sampling, SamplingSpec):
        return make_sampling(sampling.policy, sampling)
    if isinstance(sampling, str):
        return make_sampling(sampling)
    raise TelemetryError(
        f"expected a SamplingController, SamplingSpec, or policy name, "
        f"got {type(sampling).__name__}"
    )
