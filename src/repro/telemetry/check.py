"""Self-contained telemetry validation scenario (``make telemetry-check``).

Runs one short, fixed-seed experiment twice with full instrumentation,
then checks the pipeline end to end:

1. the OpenMetrics document parses under the strict in-tree validator
   (:func:`repro.telemetry.openmetrics.parse_openmetrics`),
2. the JSONL snapshot round-trips through the schema-checked reader,
3. both artifacts are **byte-identical** across the two same-seed runs,
4. headline instruments are self-consistent (steps > 0, offered >=
   completed, histogram count == completed count).

Writes a machine-readable report (default ``BENCH_telemetry_snapshot.json``
— uploaded as a CI artifact next to ``BENCH_phase_profile.json``) whose
content hashes double as a cross-run determinism fingerprint.  Exits
non-zero on any failed check.

Run directly::

    PYTHONPATH=src python -m repro.telemetry.check --out BENCH_telemetry_snapshot.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

from repro.telemetry.openmetrics import parse_openmetrics, render_openmetrics
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.slo import SloTracker
from repro.telemetry.snapshot import parse_snapshot_line, snapshot_to_jsonl

#: Simulated duration of the probe scenario (seconds).
CHECK_DURATION = 120.0


def _run_once(seed: int) -> dict:
    """One instrumented probe run; returns its rendered artifacts."""
    # Imported here: the check scenario needs the full experiment stack,
    # but `repro.telemetry` itself must stay importable without it.
    from repro.cluster.microservice import MicroserviceSpec
    from repro.config import ClusterConfig, SimulationConfig
    from repro.experiments.runner import Simulation
    from repro.metrics.sla import Sla
    from repro.workloads import CPU_BOUND, MIXED, HighBurstLoad, ServiceLoad

    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=4), seed=seed)
    specs = [
        MicroserviceSpec(name="frontend", max_replicas=6),
        MicroserviceSpec(name="backend", max_replicas=6),
    ]
    loads = [
        ServiceLoad("frontend", MIXED, HighBurstLoad(base=6.0, peak=30.0)),
        ServiceLoad("backend", CPU_BOUND, HighBurstLoad(base=4.0, peak=18.0)),
    ]
    registry = MetricRegistry()
    slo = SloTracker(Sla(response_time_target=5.0, availability_target=0.95))
    simulation = Simulation.build(
        config=config,
        specs=specs,
        loads=loads,
        policy="hybrid",
        workload_label="telemetry-check",
        telemetry=registry,
        slo=slo,
    )
    summary = simulation.run(CHECK_DURATION)
    now = simulation.engine.clock.now
    return {
        "openmetrics": render_openmetrics(registry),
        "snapshot": snapshot_to_jsonl(registry, now=now, alerts=slo.alerts()),
        "registry": registry,
        "summary": summary,
        "alerts": len(slo.alerts()),
    }


def run_check(out: Path) -> int:
    """Run the probe twice, validate, write the report; returns exit code."""
    first = _run_once(seed=0)
    second = _run_once(seed=0)

    checks: dict[str, bool] = {}
    families = parse_openmetrics(first["openmetrics"])
    checks["openmetrics_parses"] = True
    lines = [line for line in first["snapshot"].splitlines() if line]
    for line in lines:
        parse_snapshot_line(line)
    checks["snapshot_parses"] = True
    checks["openmetrics_deterministic"] = first["openmetrics"] == second["openmetrics"]
    checks["snapshot_deterministic"] = first["snapshot"] == second["snapshot"]

    registry = first["registry"]
    steps = registry.get("sim_steps").labels().value
    checks["steps_counted"] = steps > 0
    offered = sum(c.value for _, c in registry.get("requests_offered").children())
    completed = sum(c.value for _, c in registry.get("requests_completed").children())
    failed = sum(c.value for _, c in registry.get("requests_failed").children())
    checks["offered_covers_outcomes"] = offered >= completed + failed > 0
    hist_count = sum(h.count for _, h in registry.get("request_response_seconds").children())
    checks["histogram_matches_completed"] = hist_count == completed
    summary = first["summary"]
    checks["summary_agrees"] = summary.total_requests == int(completed + failed)

    report = {
        "schema": "repro.telemetry-check/1",
        "duration": CHECK_DURATION,
        "families": len(families),
        "series": sum(len(f.samples) for f in families.values()),
        "snapshot_lines": len(lines),
        "alerts": first["alerts"],
        "openmetrics_sha256": hashlib.sha256(first["openmetrics"].encode()).hexdigest(),
        "snapshot_sha256": hashlib.sha256(first["snapshot"].encode()).hexdigest(),
        "checks": checks,
        "ok": all(checks.values()),
    }
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    for name, passed in sorted(checks.items()):
        print(f"  {'PASS' if passed else 'FAIL'}  {name}")
    print(f"telemetry-check: {report['series']} series in {report['families']} families -> {out}")
    return 0 if report["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``python -m repro.telemetry.check``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_telemetry_snapshot.json"),
        help="report path (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    return run_check(args.out)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
