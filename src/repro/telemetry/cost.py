"""The observation-cost model: what monitoring *itself* would cost.

cadvisor-style collectors pay per container they housekeep and per series
they scrape; at 24 nodes that cost is noise, at 1,000 nodes / 50k
containers the observer becomes the workload.  This module makes that
cost a first-class **simulated** quantity:

* :class:`ObservationCostModel` — fixed per-capture / per-node /
  per-container / per-series prices, in simulated seconds of collector
  CPU.  The defaults are cadvisor-shaped (tens of microseconds per
  container housekeeping pass), but the absolute scale matters less than
  the *ratios* the sampling policies change.
* :class:`MonitorBudget` — the running ledger a
  :class:`~repro.telemetry.sampling.SamplingController` charges on every
  sampling pass.  Plain attributes, no registry involvement, so the
  ledger exists (and is comparable across sampling policies) even when
  the cost families are not exported.

Everything here is arithmetic over values the caller supplies — no
clocks, no randomness — so charged budgets are byte-identical across
same-seed runs (the telemetry package contract, lint rule OBS001).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TelemetryError


@dataclass(frozen=True)
class ObservationCostModel:
    """Fixed prices, in simulated seconds, for one collection pass.

    ``per_capture_seconds`` is the fixed cost of waking the collector;
    ``per_node_seconds`` the cost of visiting one node's stats endpoint;
    ``per_container_seconds`` the cadvisor-style housekeeping cost per
    active container touched; ``per_series_seconds`` the cost of writing
    one series point into retention; ``per_skip_seconds`` the (tiny)
    bookkeeping cost of consulting the sampling controller for a node
    that is then *not* collected.
    """

    per_capture_seconds: float = 1e-3
    per_node_seconds: float = 5e-5
    per_container_seconds: float = 2e-5
    per_series_seconds: float = 2e-6
    per_skip_seconds: float = 1e-6

    def __post_init__(self) -> None:
        for field in (
            "per_capture_seconds",
            "per_node_seconds",
            "per_container_seconds",
            "per_series_seconds",
            "per_skip_seconds",
        ):
            if getattr(self, field) < 0:
                raise TelemetryError(f"observation cost {field} must be >= 0")

    def node_cost(self, containers: int) -> float:
        """Cost of freshly collecting one node with ``containers`` active."""
        return self.per_node_seconds + containers * self.per_container_seconds

    def capture_cost(self, series: int) -> float:
        """Fixed wake-up cost plus the retention write for ``series`` series."""
        return self.per_capture_seconds + series * self.per_series_seconds


#: Shared default price list (frozen, so sharing is safe).
DEFAULT_COST_MODEL = ObservationCostModel()


class MonitorBudget:
    """Running ledger of simulated observation cost for one run.

    Charged exclusively by the run's sampling controller (one ledger per
    controller, one controller per run), read by the scale bench and the
    ``top`` dashboard.  All quantities are cumulative.
    """

    __slots__ = (
        "collection_cost_seconds",
        "captures",
        "nodes_observed",
        "nodes_skipped",
        "containers_observed",
        "series_captured",
    )

    def __init__(self) -> None:
        self.collection_cost_seconds = 0.0
        self.captures = 0
        self.nodes_observed = 0
        self.nodes_skipped = 0
        self.containers_observed = 0
        self.series_captured = 0

    def charge_node(self, cost: ObservationCostModel, containers: int) -> None:
        """One freshly collected node with ``containers`` active containers."""
        self.nodes_observed += 1
        self.containers_observed += containers
        self.collection_cost_seconds += cost.node_cost(containers)

    def charge_skip(self, cost: ObservationCostModel) -> None:
        """One node the controller decided not to collect this pass."""
        self.nodes_skipped += 1
        self.collection_cost_seconds += cost.per_skip_seconds

    def charge_capture(self, cost: ObservationCostModel, series: int) -> None:
        """One registry capture writing ``series`` series points."""
        self.captures += 1
        self.series_captured += series
        self.collection_cost_seconds += cost.capture_cost(series)

    def to_dict(self) -> dict:
        """The ledger as plain JSON types (bench report rows)."""
        return {
            "collection_cost_seconds": round(self.collection_cost_seconds, 9),
            "captures": self.captures,
            "nodes_observed": self.nodes_observed,
            "nodes_skipped": self.nodes_skipped,
            "containers_observed": self.containers_observed,
            "series_captured": self.series_captured,
        }
