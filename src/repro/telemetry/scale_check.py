"""Self-contained monitoring-scale validation (``make telemetry-scale``).

Checks the scalable-monitoring contract end to end:

1. **Fidelity** — at every scale point each sampling policy (``full``,
   ``adaptive``, ``threshold-aware``) produces the **same simulation**:
   summary dicts and scaling-event streams are byte-compared against the
   ``full`` reference.  Sampling is observation-only; the acceptance gate
   requires zero diverging scaling actions at the paper's 24-node scale
   (and this harness asserts it at every scale).
2. **Cost** — the steady-state observation cost charged by the
   :class:`~repro.telemetry.cost.ObservationCostModel` over the measured
   window is compared per policy; the acceptance criterion — ``adaptive``
   at 1,000 nodes collects at >= 5x less simulated cost than ``full`` —
   is asserted.
3. **Export locality** — a sharded registry at bench scale is exported
   twice: the full merged snapshot versus a single shard.  A single
   shard must cost time proportional to the series it touches (within a
   2x slack factor), evidencing O(series touched) exports.

Writes a machine-readable report (default ``BENCH_telemetry_scale.json``
— uploaded as a CI artifact next to the other BENCH files).  Exits
non-zero on any failed check.

Run directly::

    PYTHONPATH=src python -m repro.telemetry.scale_check --out BENCH_telemetry_scale.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cluster import MicroserviceSpec
from repro.cluster.node import Node
from repro.cluster.placement import PlacementStrategy
from repro.cluster.resources import ResourceVector
from repro.config import ClusterConfig, SimulationConfig
from repro.experiments.runner import Simulation
# A *reference* to the profiler's timer (never a module-level wall-clock
# call): timing here measures exporter throughput, not simulated behaviour.
from repro.obs.profiler import DEFAULT_TIMER
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.sharding import ShardedMetricRegistry, merge_shard_snapshots
from repro.telemetry.snapshot import snapshot_to_jsonl
from repro.workloads import CPU_BOUND, HighBurstLoad, ServiceLoad

#: Sampling policies swept at every scale point (``full`` is the reference).
POLICIES = ("full", "adaptive", "threshold-aware")

#: Bench fleet shape: (worker nodes, fill services, replicas each).  The
#: fleet mirrors ``repro.engine_core.check`` — one hot bursty service on
#: a sea of quiet fill replicas — but sized at ~18 containers per node so
#: the quiet majority is *observably* quiet: idle usage is fixed per
#: container (``container_background_cpu`` cores, ``container_base_memory``
#: MiB), and 18 of them put a node at cpu ~0.09 / memory ~0.33 — outside
#: the default guard band on every axis.  A monitoring bench whose fill
#: nodes are parked inside the band would (correctly) never decay.
SCALES = (
    (24, 12, 36),
    (200, 20, 180),
    (1000, 100, 180),
)

#: Telemetry pull cadence for the bench (simulated seconds).
SAMPLE_EVERY = 2.0

#: Untimed sim-seconds before the measured window: long enough for boots
#: to finish, boot-churn hot windows to lapse, and quiet nodes to decay
#: to their steady-state cadence (max_backoff intervals).
WARMUP_DURATION = 30.0

#: Measured sim-seconds per scale point.
BENCH_DURATIONS = {24: 60.0, 200: 60.0, 1000: 40.0}

#: Acceptance criteria.
COST_REDUCTION_THRESHOLD = 5.0
DIVERGENCE_NODES = 24

#: Export-locality probe shape and slack.
EXPORT_SHARDS = 8
EXPORT_NODES = 2500
EXPORT_CAPTURES = 16
EXPORT_SLACK = 2.0


class _RoundRobinPlacement(PlacementStrategy):
    """O(1)-amortized deterministic spread (see ``repro.engine_core.check``)."""

    def __init__(self) -> None:
        self._cursor = 0

    def choose(
        self,
        nodes: list[Node],
        request: ResourceVector,
        *,
        exclude_service: str | None = None,
    ) -> Node | None:
        count = len(nodes)
        for probe in range(count):
            node = nodes[(self._cursor + probe) % count]
            if node.can_fit(request):
                self._cursor = (self._cursor + probe + 1) % count
                return node
        return None

    def rank(self, candidates: list[Node], request: ResourceVector) -> Node:
        return candidates[0]


# ----------------------------------------------------------------------
# Policy sweep (fidelity + observation cost)
# ----------------------------------------------------------------------
def _scale_simulation(policy: str, nodes: int, fill_services: int, replicas: int) -> Simulation:
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=nodes), seed=7)
    specs = [
        MicroserviceSpec(
            name="hot", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, max_replicas=16
        )
    ]
    loads = [
        ServiceLoad(
            service="hot",
            profile=CPU_BOUND,
            pattern=HighBurstLoad(base=4.0, peak=14.0, period=40.0, duty=0.4),
        )
    ]
    for i in range(fill_services):
        specs.append(
            MicroserviceSpec(
                name=f"fill-{i:03d}",
                cpu_request=0.05,
                mem_limit=128.0,
                net_rate=1.0,
                min_replicas=replicas,
                max_replicas=replicas,
            )
        )
    return Simulation.build(
        config=config,
        specs=specs,
        loads=loads,
        policy="hybrid",
        workload_label="telemetry-scale",
        placement=_RoundRobinPlacement(),
        telemetry=MetricRegistry(),
        backend="array",
        timeline_every=SAMPLE_EVERY,
        sampling=policy,
    )


def _run_policy(policy: str, nodes: int, fill_services: int, replicas: int) -> dict:
    """One warmed-up run; returns artefacts plus the window's cost delta."""
    duration = BENCH_DURATIONS[nodes]
    simulation = _scale_simulation(policy, nodes, fill_services, replicas)
    simulation.run(WARMUP_DURATION)
    controller = simulation.telemetry.sampling
    warm_cost = controller.budget.collection_cost_seconds
    warm_observed = controller.budget.nodes_observed
    warm_skipped = controller.budget.nodes_skipped
    started = DEFAULT_TIMER()
    summary = simulation.run(duration)
    wall = DEFAULT_TIMER() - started
    budget = controller.budget
    return {
        "policy": policy,
        "summary": summary.to_dict(),
        "events": list(simulation.collector.events.events()),
        "budget": budget.to_dict(),
        "window_cost_seconds": round(budget.collection_cost_seconds - warm_cost, 9),
        "window_nodes_observed": budget.nodes_observed - warm_observed,
        "window_nodes_skipped": budget.nodes_skipped - warm_skipped,
        "staleness_bound_seconds": controller.max_staleness(),
        "wall_seconds": round(wall, 6),
        "containers": sum(
            len(node.containers) for node in simulation.cluster.nodes.values()
        ),
    }


def _sweep_scale(nodes: int, fill_services: int, replicas: int, checks: dict[str, bool]) -> dict:
    point: dict = {
        "nodes": nodes,
        "warmup": WARMUP_DURATION,
        "window": BENCH_DURATIONS[nodes],
        "sample_every": SAMPLE_EVERY,
        "policies": {},
    }
    reference: dict | None = None
    for policy in POLICIES:
        result = _run_policy(policy, nodes, fill_services, replicas)
        if reference is None:
            reference = result
            point["containers"] = result["containers"]
        diverging = sum(
            1 for a, b in zip(result["events"], reference["events"]) if a != b
        ) + abs(len(result["events"]) - len(reference["events"]))
        summary_identical = result["summary"] == reference["summary"]
        reduction = (
            round(reference["window_cost_seconds"] / result["window_cost_seconds"], 4)
            if result["window_cost_seconds"] > 0
            else None
        )
        point["policies"][policy] = {
            "budget": result["budget"],
            "window_cost_seconds": result["window_cost_seconds"],
            "window_nodes_observed": result["window_nodes_observed"],
            "window_nodes_skipped": result["window_nodes_skipped"],
            "staleness_bound_seconds": result["staleness_bound_seconds"],
            "wall_seconds": result["wall_seconds"],
            "scaling_events": len(result["events"]),
            "diverging_events": diverging,
            "summary_identical": summary_identical,
            "cost_reduction_vs_full": reduction,
        }
        checks[f"fidelity_{nodes}_{policy}"] = summary_identical and diverging == 0
    return point


# ----------------------------------------------------------------------
# Export locality (sharded snapshots are O(series touched))
# ----------------------------------------------------------------------
def _export_probe() -> dict:
    """Time a full merged export against a single-shard export."""
    registry = ShardedMetricRegistry(shards=EXPORT_SHARDS)
    cpu = registry.gauge("node_cpu_utilization_ratio", "bench", labels=("node",))
    mem = registry.gauge("node_memory_utilization_ratio", "bench", labels=("node",))
    starts = registry.counter("container_starts", "bench", labels=("node",))
    for i in range(EXPORT_NODES):
        node = f"worker-{i:04d}"
        cpu.labels(node=node).set(i / EXPORT_NODES)
        mem.labels(node=node).set(1.0 - i / EXPORT_NODES)
        starts.labels(node=node).inc(i % 7)
    for tick in range(EXPORT_CAPTURES):
        registry.capture(float(tick))  # lint: disable=OBS002(bench primes a synthetic registry outside any run)
    now = float(EXPORT_CAPTURES - 1)

    started = DEFAULT_TIMER()
    merged = merge_shard_snapshots(
        [registry.shard_snapshot(i, now=now) for i in range(EXPORT_SHARDS)]
    )
    full_seconds = DEFAULT_TIMER() - started

    started = DEFAULT_TIMER()
    single = registry.shard_snapshot(0, now=now)
    single_seconds = DEFAULT_TIMER() - started

    total_series = sum(len(family) for family in registry.families())
    shard_series = sum(len(family) for family in registry.shards[0].families())
    touched_fraction = shard_series / total_series if total_series else 0.0
    time_fraction = single_seconds / full_seconds if full_seconds > 0 else None
    return {
        "shards": EXPORT_SHARDS,
        "series": total_series,
        "shard_series": shard_series,
        "captures": EXPORT_CAPTURES,
        "merged_lines": len(merged),
        "single_shard_lines": len(single),
        "full_export_seconds": round(full_seconds, 6),
        "single_shard_seconds": round(single_seconds, 6),
        "touched_fraction": round(touched_fraction, 6),
        "time_fraction": round(time_fraction, 6) if time_fraction is not None else None,
        "slack": EXPORT_SLACK,
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_check(out: Path) -> int:
    """Run the policy sweep and export probe, validate, write the report."""
    checks: dict[str, bool] = {}

    scale_points = []
    for nodes, fill_services, replicas in SCALES:
        scale_points.append(_sweep_scale(nodes, fill_services, replicas, checks))

    divergence_point = next(p for p in scale_points if p["nodes"] == DIVERGENCE_NODES)
    checks[f"divergence_zero_{DIVERGENCE_NODES}"] = all(
        entry["diverging_events"] == 0 for entry in divergence_point["policies"].values()
    )

    top = scale_points[-1]
    adaptive_reduction = top["policies"]["adaptive"]["cost_reduction_vs_full"]
    checks["adaptive_cost_reduction_1000_at_least_5x"] = (
        adaptive_reduction is not None and adaptive_reduction >= COST_REDUCTION_THRESHOLD
    )

    export = _export_probe()
    checks["sharded_export_o_series_touched"] = (
        export["time_fraction"] is not None
        and export["time_fraction"] <= export["touched_fraction"] * EXPORT_SLACK
    )

    report = {
        "schema": "repro.telemetry-scale/1",
        "policies": list(POLICIES),
        "sample_every": SAMPLE_EVERY,
        "cost_reduction_threshold": COST_REDUCTION_THRESHOLD,
        "scales": scale_points,
        "export": export,
        "checks": checks,
        "ok": all(checks.values()),
    }
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    for name, passed in sorted(checks.items()):
        print(f"  {'PASS' if passed else 'FAIL'}  {name}")
    print(
        f"telemetry-scale: {len(POLICIES)} policies, zero divergence at "
        f"{DIVERGENCE_NODES} nodes, x{adaptive_reduction} cheaper collection at "
        f"{top['nodes']} nodes ({top['containers']} containers) -> {out}"
    )
    return 0 if report["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``python -m repro.telemetry.scale_check``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_telemetry_scale.json"),
        help="report path (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    return run_check(args.out)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
