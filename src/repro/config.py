"""Configuration dataclasses shared across the library.

Three layers:

* :class:`OverheadModel` — the empirical constants measured in the paper's
  Section III (co-location contention, per-replica distribution cost, the
  "JVM" footprint, tx-queue contention).  These are the knobs that make a
  simulator reproduce a physical cluster's *shape*; each field documents the
  paper observation it encodes.
* :class:`ClusterConfig` — the hardware the paper ran on (24 nodes of
  4 cores / 8 GiB / SAS disks, 5 of which served as load balancers).
* :class:`SimulationConfig` — everything that defines one run: cluster,
  overheads, step width, seed, and monitor cadence.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigError


@dataclass(frozen=True)
class OverheadModel:
    """Empirical overhead constants calibrated from the paper's Section III.

    Every field maps to a measured observation; the defaults reproduce the
    published curves (see ``benchmarks/test_fig2_cpu_scaling.py`` and
    ``benchmarks/test_fig3_network_scaling.py``).
    """

    #: Section III-A: "a 17% increase in response times" when containers
    #: contend for CPU on one machine, "further exacerbated by the presence
    #: of more co-located containers".  Service time is multiplied by
    #: ``1 + colocation_contention * (busy_containers - 1)``, capped by
    #: :attr:`colocation_cap`.
    colocation_contention: float = 0.17

    #: Upper bound on the co-location service-time multiplier (cache/TLB
    #: interference saturates once the machine is fully thrashed).
    colocation_cap: float = 1.40

    #: Section III-A: replicating across nodes shows "a logarithmic increase
    #: with the number of replicas".  Each request's service time is scaled
    #: by ``1 + coeff * ln(replicas)``.
    distribution_log_coeff: float = 0.055

    #: Section III-A/B: the application inside the container (a JVM in the
    #: paper) has a measurable resident footprint per replica, which makes
    #: horizontally scaled deployments swap earlier.
    container_base_memory: float = 150.0  # MiB

    #: Background CPU the application consumes even while idle (GC threads,
    #: runtime bookkeeping).  Cores per container.
    container_background_cpu: float = 0.02

    #: Containers are "lightweight enough to be replicated very quickly"
    #: (Section II-D) but not instantaneous; boot delay in seconds.
    container_boot_delay: float = 2.0

    #: Section III-B: progress multiplier once a container's working set
    #: exceeds its memory limit and the kernel swaps to disk.
    swap_slowdown: float = 0.12

    #: A container whose working set exceeds ``oom_factor`` x its memory
    #: limit is OOM-killed by the daemon (requests become removal failures).
    oom_factor: float = 2.0

    #: Section III-C tx-queue contention: the saturating per-class penalty
    #: ``pmax * r / (r + r_half)`` applied to a class shaped to ``r`` Mbit/s.
    #: Vertical (one fat class) pays the full penalty; spreading replicas
    #: thins each class and the penalty vanishes — tapering around 8
    #: replicas, matching Figure 3.
    txq_penalty_max: float = 0.5
    txq_penalty_half_rate: float = 35.0  # Mbit/s

    #: Additional queueing penalty per unit of NIC over-subscription
    #: (applied on top when total offered load exceeds capacity).
    txq_oversub_penalty: float = 0.30

    #: Section VI-A: network-bound services make "moderate use of CPU caused
    #: by networking system calls".  Cores consumed per Mbit/s transmitted;
    #: a CPU-starved container is therefore also transmit-limited, which is
    #: why CPU-driven scalers stay competitive on network loads.
    net_cpu_per_mbit: float = 0.002

    #: Checkpoint/restore pause for a live container migration, seconds
    #: (the ElasticDocker-style extension; CRIU freezes are around a second
    #: for small containers).
    migration_freeze: float = 1.0

    #: Stateful-service consistency cost (Section IV-B's motivation for
    #: vertical scaling): every request's service time is multiplied by
    #: ``1 + state_sync_overhead * (replicas - 1)`` — each extra replica is
    #: one more copy to keep consistent.
    state_sync_overhead: float = 0.08

    #: Bandwidth at which a new stateful replica pulls its state copy
    #: before serving, MB/s (added to its boot delay).
    state_transfer_mb_per_s: float = 100.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on out-of-range constants."""
        if not 0 <= self.colocation_contention < 1:
            raise ConfigError("colocation_contention must be in [0, 1)")
        if self.colocation_cap < 1:
            raise ConfigError("colocation_cap must be >= 1")
        if self.distribution_log_coeff < 0:
            raise ConfigError("distribution_log_coeff must be >= 0")
        if self.container_base_memory < 0:
            raise ConfigError("container_base_memory must be >= 0")
        if self.container_background_cpu < 0:
            raise ConfigError("container_background_cpu must be >= 0")
        if self.container_boot_delay < 0:
            raise ConfigError("container_boot_delay must be >= 0")
        if not 0 < self.swap_slowdown <= 1:
            raise ConfigError("swap_slowdown must be in (0, 1]")
        if self.oom_factor < 1:
            raise ConfigError("oom_factor must be >= 1")
        if not 0 <= self.txq_penalty_max < 1:
            raise ConfigError("txq_penalty_max must be in [0, 1)")
        if self.txq_penalty_half_rate <= 0:
            raise ConfigError("txq_penalty_half_rate must be > 0")
        if self.txq_oversub_penalty < 0:
            raise ConfigError("txq_oversub_penalty must be >= 0")
        if self.net_cpu_per_mbit < 0:
            raise ConfigError("net_cpu_per_mbit must be >= 0")
        if self.migration_freeze < 0:
            raise ConfigError("migration_freeze must be >= 0")
        if self.state_sync_overhead < 0:
            raise ConfigError("state_sync_overhead must be >= 0")
        if self.state_transfer_mb_per_s <= 0:
            raise ConfigError("state_transfer_mb_per_s must be > 0")


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster.

    Defaults mirror the paper's testbed: 24 nodes with 2 dual-core Xeons
    (4 cores), 8 GiB of memory, of which 5 nodes were load balancers —
    leaving 19 worker nodes hosting containers.
    """

    worker_nodes: int = 19
    load_balancers: int = 5
    node_cpu: float = 4.0  # cores
    node_memory: float = 8192.0  # MiB
    node_network: float = 1000.0  # Mbit/s NIC
    node_disk: float = 150.0  # MB/s spindle throughput (SAS-era disks)

    def validate(self) -> None:
        """Raise :class:`ConfigError` on an impossible cluster shape."""
        if self.worker_nodes < 1:
            raise ConfigError("worker_nodes must be >= 1")
        if self.load_balancers < 1:
            raise ConfigError("load_balancers must be >= 1")
        if self.node_cpu <= 0 or self.node_memory <= 0 or self.node_network <= 0:
            raise ConfigError("node capacities must be positive")
        if self.node_disk <= 0:
            raise ConfigError("node_disk must be positive")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything that defines one simulation run."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    overheads: OverheadModel = field(default_factory=OverheadModel)

    #: Simulation step width in seconds.
    dt: float = 0.5

    #: Root seed for all RNG streams.
    seed: int = 0

    #: Monitor query period (paper: default 30 s, experiments use 5 s).
    monitor_period: float = 5.0

    #: Minimum interval between horizontal scale-*up* operations (paper: 3 s).
    scale_up_interval: float = 3.0

    #: Minimum interval between horizontal scale-*down* operations (paper: 50 s).
    scale_down_interval: float = 50.0

    #: Client-side request timeout in seconds; a request still unfinished
    #: after this long is a connection failure.
    request_timeout: float = 30.0

    def validate(self) -> None:
        """Validate this config and all nested configs."""
        self.cluster.validate()
        self.overheads.validate()
        if self.dt <= 0:
            raise ConfigError("dt must be positive")
        if self.monitor_period < self.dt:
            raise ConfigError("monitor_period must be at least one step")
        if self.scale_up_interval < 0 or self.scale_down_interval < 0:
            raise ConfigError("rescale intervals must be non-negative")
        if self.request_timeout <= 0:
            raise ConfigError("request_timeout must be positive")

    def with_overrides(self, **kwargs: Any) -> "SimulationConfig":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **kwargs)


#: Configuration matching the paper's experimental testbed and settings.
PAPER_CONFIG = SimulationConfig()
