"""Repo-specific static analysis (the determinism & invariant linter).

The simulator's headline guarantee — "a :class:`~repro.config.SimulationConfig`
fully determines a run" (see ``repro.sim.rng``) — is a *global* property: one
stray ``np.random.default_rng(...)`` or ``time.time()`` anywhere in the tree
silently breaks it.  This package makes the guarantee structural instead of
aspirational: an AST linter that walks ``src/``, ``tests/``, ``benchmarks/``
and ``examples/`` and enforces the project's determinism and unit-hygiene
invariants as hard rules.

Run it as ``python -m repro.devtools.lint`` or ``hyscale-repro lint``; see
``docs/dev-tooling.md`` for the rule catalogue and suppression syntax.

Submodules are loaded lazily so ``python -m repro.devtools.lint`` does not
re-import the module it is about to execute.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ALL_RULES",
    "Rule",
    "Violation",
    "lint_paths",
    "lint_source",
    "main",
    "parse_suppressions",
    "rule_catalog",
]

_EXPORTS = {
    "ALL_RULES": "repro.devtools.rules",
    "Rule": "repro.devtools.rules",
    "rule_catalog": "repro.devtools.rules",
    "Violation": "repro.devtools.violations",
    "parse_suppressions": "repro.devtools.violations",
    "lint_paths": "repro.devtools.lint",
    "lint_source": "repro.devtools.lint",
    "main": "repro.devtools.lint",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.devtools' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
