"""Violation records and ``# lint: disable=...`` suppression parsing.

A violation pins one rule breach to one source location.  Suppressions are
per-line comments of the form::

    rng = np.random.default_rng(0)  # lint: disable=DET002(fixture generator for docs)

The rule ID must be followed by a parenthesised, non-empty reason — an
auditable justification is part of the contract.  A suppression without a
reason does not suppress anything and is itself reported under ``LINT001``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import asdict, dataclass

#: Meta-rule ID for malformed suppression comments.
BAD_SUPPRESSION = "LINT001"

#: Meta-rule ID for files the linter cannot parse.
PARSE_ERROR = "LINT002"


@dataclass(frozen=True, order=True)
class Violation:
    """One rule breach at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """Human-readable one-liner, in the classic ``path:line:col`` shape."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (for ``--format json`` consumers)."""
        return dict(asdict(self))


#: Matches the suppression marker and captures everything after ``disable=``.
_MARKER_RE = re.compile(r"#\s*lint:\s*disable=(?P<spec>.*)$")

#: One well-formed entry: a rule ID plus a parenthesised reason.
_ENTRY_RE = re.compile(r"(?P<rule>[A-Z][A-Z0-9]{2,15})\s*\(\s*(?P<reason>[^()]*?)\s*\)")

#: A bare rule ID (used to detect reason-less entries like ``disable=DET002``).
_BARE_RE = re.compile(r"[A-Z][A-Z0-9]{2,15}")


def _iter_comments(source: str) -> list[tuple[int, int, str]]:
    """``(line, col, text)`` for every real comment token in ``source``.

    Tokenising (rather than regex-scanning raw lines) means a suppression
    marker inside a *string literal* is inert — only actual comments count.
    """
    comments: list[tuple[int, int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparsable files are reported separately (LINT002); no comments.
        return []
    return comments


def parse_suppressions(source: str, path: str) -> tuple[dict[int, frozenset[str]], list[Violation]]:
    """Extract per-line suppressions from ``source``.

    Returns ``(suppressed, problems)`` where ``suppressed`` maps a 1-based
    line number to the rule IDs disabled on that line, and ``problems`` holds
    :data:`BAD_SUPPRESSION` violations for entries missing a reason.
    """
    suppressed: dict[int, frozenset[str]] = {}
    problems: list[Violation] = []
    for lineno, col, text in _iter_comments(source):
        marker = _MARKER_RE.search(text)
        if marker is None:
            continue
        spec = marker.group("spec").strip()
        rules = {m.group("rule") for m in _ENTRY_RE.finditer(spec) if m.group("reason")}
        for m in _ENTRY_RE.finditer(spec):
            if not m.group("reason"):
                problems.append(
                    Violation(
                        path=path,
                        line=lineno,
                        col=col + marker.start() + 1,
                        rule=BAD_SUPPRESSION,
                        message=f"suppression of {m.group('rule')} has an empty reason; "
                        f"write `# lint: disable={m.group('rule')}(why it is safe)`",
                    )
                )
        # Entries with no parenthesised reason at all: strip the well-formed
        # ones, then look for leftover bare IDs.
        leftover = _ENTRY_RE.sub("", spec)
        for bare in _BARE_RE.finditer(leftover):
            problems.append(
                Violation(
                    path=path,
                    line=lineno,
                    col=col + marker.start() + 1,
                    rule=BAD_SUPPRESSION,
                    message=f"suppression of {bare.group(0)} is missing its reason; "
                    f"write `# lint: disable={bare.group(0)}(why it is safe)`",
                )
            )
        if rules:
            suppressed[lineno] = frozenset(rules)
    return suppressed, problems
