"""Registry-contract checking for pluggable implementations.

The three extension registries — :func:`repro.core.registry.register_policy`,
:func:`repro.telemetry.sampling.register_sampling_policy`, and
:func:`repro.engine_core.backend.register_backend` — are where
contributor code enters the engine.  A policy that forgets ``decide``, a
sampling controller holding module-level mutable state, or an autoscaler
drawing from the ambient RNG will pass import time and only fail (or
worse, silently diverge) mid-run.  This pass verifies the contracts
statically, over the same call graph FlowLint already built:

* **CON001** — the implementation does not conform to the protocol: it
  misses a required method, leaves an abstract method unimplemented, or
  overrides a protocol method with fewer positional parameters than the
  definition it replaces (callers pass the protocol arity);
* **CON002** — the module defining a registered implementation holds
  module-level mutable state, which is per-process under the sweep pool
  and per-import under test isolation;
* **CON003** — an implementation draws from the ambient RNG without a
  constructor-injectable generator (``rng`` / ``streams`` / ``seed``
  parameter), so same-seed runs cannot reproduce its decisions.

Implementations are discovered two ways: every concrete subclass of a
protocol base class (the built-in registries are populated from literal
tables of such classes), and every ``register_*`` call site whose
factory argument resolves to a class — including classes that do *not*
subclass the base, which is itself a CON001.

The application-graph registries — :func:`repro.workloads.registry.
register_workload` / ``register_app`` and :func:`repro.platform.routing.
register_routing` — register *factories and enum members*, not protocol
classes, so the class checks above do not apply.  Their contract is
checked at the registration call site instead:

* **CON004** — a registration call site is malformed: the name argument
  is a literal that is empty or not a string, the registered value is a
  bare literal where a callable / ``RoutingPolicy`` member is required,
  or the same literal name is registered twice in the tree without
  ``replace=True`` (an import-time crash, caught statically).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass

from repro.devtools.flow.callgraph import CallGraph, ClassInfo, FunctionInfo
from repro.devtools.flow.taint import KIND_AMBIENT_RNG, taint_facts_of
from repro.devtools.rules import _terminal_name

#: Constructor parameter names that count as an injected entropy source.
RNG_PARAM_NAMES = frozenset({"rng", "rng_streams", "streams", "generator", "seed", "rng_seed"})

#: Module-level names exempt from CON002 (interpreter/protocol plumbing,
#: not state): dunders like ``__all__`` are read-only conventions.
_CON002_EXEMPT_PREFIX = "__"


@dataclass(frozen=True)
class ProtocolSpec:
    """One registry's contract."""

    registry: str  # short label used in messages ("policy", ...)
    register_call: str  # bare name of the registration function
    base: str  # qualname of the protocol base class
    required: tuple[str, ...]  # methods that must resolve through the MRO


PROTOCOLS: tuple[ProtocolSpec, ...] = (
    ProtocolSpec(
        registry="policy",
        register_call="register_policy",
        base="repro.core.policy.AutoscalingPolicy",
        required=("decide",),
    ),
    ProtocolSpec(
        registry="sampling",
        register_call="register_sampling_policy",
        base="repro.telemetry.sampling.SamplingController",
        required=(
            "bind",
            "begin_sample",
            "node_due",
            "observe_node",
            "skip_node",
            "finish_sample",
        ),
    ),
    ProtocolSpec(
        registry="backend",
        register_call="register_backend",
        base="repro.cluster.cluster.Cluster",
        required=("on_step", "from_config"),
    ),
)


@dataclass(frozen=True)
class CallSiteSpec:
    """One call-site registry's contract (name -> value tables).

    Unlike :class:`ProtocolSpec` registries these hold factories or enum
    members, so conformance is judged where ``register_*`` is called, not
    on a class hierarchy.  ``module`` names the module that defines the
    registration function: when it is absent from the analyzed tree the
    registry does not exist there and the checks (and census) skip it,
    mirroring the ``spec.base not in graph.classes`` gate above.
    """

    registry: str  # short label used in messages ("workload", ...)
    register_call: str  # bare name of the registration function
    module: str  # module defining the registration function
    value_keyword: str  # keyword spelling of the registered value
    value_contract: str  # human phrasing of what the value must be


CALLSITE_REGISTRIES: tuple[CallSiteSpec, ...] = (
    CallSiteSpec(
        registry="workload",
        register_call="register_workload",
        module="repro.workloads.registry",
        value_keyword="factory",
        value_contract="an experiment factory (callable)",
    ),
    CallSiteSpec(
        registry="app",
        register_call="register_app",
        module="repro.workloads.registry",
        value_keyword="factory",
        value_contract="an application factory (callable)",
    ),
    CallSiteSpec(
        registry="routing",
        register_call="register_routing",
        module="repro.platform.routing",
        value_keyword="policy",
        value_contract="a RoutingPolicy member",
    ),
)


@dataclass(frozen=True, order=True)
class ContractFinding:
    """One contract violation, attributable to an implementation class."""

    path: str
    line: int
    col: int
    rule: str
    cls: str  # implementation class qualname (the baseline key)
    message: str


# ----------------------------------------------------------------------
# Class-hierarchy plumbing
# ----------------------------------------------------------------------
def _class_by_simple_name(graph: CallGraph) -> dict[str, tuple[str, ...]]:
    by_name: dict[str, list[str]] = {}
    for qualname, cls in graph.classes.items():
        by_name.setdefault(cls.name, []).append(qualname)
    return {name: tuple(sorted(quals)) for name, quals in by_name.items()}


def _resolve_base(
    graph: CallGraph, cls: ClassInfo, base_name: str, by_simple: dict[str, tuple[str, ...]]
) -> str | None:
    """Resolve one (possibly dotted) base-class name to a known qualname."""
    module = graph.modules.get(cls.module)
    aliases = module.aliases if module is not None else {}
    if "." in base_name:
        head, _, rest = base_name.partition(".")
        expanded = aliases.get(head, head)
        candidate = f"{expanded}.{rest}"
        if candidate in graph.classes:
            return candidate
    else:
        aliased = aliases.get(base_name)
        if aliased in graph.classes:
            return aliased
        same_module = f"{cls.module}.{base_name}"
        if same_module in graph.classes:
            return same_module
    candidates = by_simple.get(base_name.rsplit(".", 1)[-1], ())
    return candidates[0] if len(candidates) == 1 else None


def _ancestors(
    graph: CallGraph, qualname: str, by_simple: dict[str, tuple[str, ...]]
) -> tuple[str, ...]:
    """Known ancestor class qualnames, nearest first (BFS, self excluded)."""
    out: list[str] = []
    seen = {qualname}
    queue: deque[str] = deque([qualname])
    while queue:
        current = graph.classes.get(queue.popleft())
        if current is None:
            continue
        for base_name in current.bases:
            resolved = _resolve_base(graph, current, base_name, by_simple)
            if resolved is not None and resolved not in seen:
                seen.add(resolved)
                out.append(resolved)
                queue.append(resolved)
    return tuple(out)


def _is_abstractmethod(fn: FunctionInfo) -> bool:
    return any(
        _terminal_name(dec) == "abstractmethod" for dec in fn.node.decorator_list
    )


def _is_abstract_class(graph: CallGraph, cls: ClassInfo) -> bool:
    """Abstract bases and protocol shells are not implementations."""
    if any(_is_abstractmethod(fn) for fn in cls.methods.values()):
        return True
    return any(
        base.rsplit(".", 1)[-1] in ("ABC", "ABCMeta", "Protocol") for base in cls.bases
    )


def _resolve_method(
    graph: CallGraph,
    cls: ClassInfo,
    name: str,
    by_simple: dict[str, tuple[str, ...]],
) -> FunctionInfo | None:
    """MRO-ish lookup: own methods first, then ancestors nearest-first."""
    if name in cls.methods:
        return cls.methods[name]
    for ancestor in _ancestors(graph, cls.qualname, by_simple):
        info = graph.classes.get(ancestor)
        if info is not None and name in info.methods:
            return info.methods[name]
    return None


def _positional_arity(fn: FunctionInfo) -> int:
    """Positional parameters excluding the receiver."""
    params = fn.params
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    return len(params)


# ----------------------------------------------------------------------
# Discovery
# ----------------------------------------------------------------------
def _registered_class_from_arg(
    graph: CallGraph,
    module: str,
    arg: ast.expr,
    by_simple: dict[str, tuple[str, ...]],
) -> str | None:
    """The class a ``register_*`` factory argument resolves to, if any."""

    def name_to_class(name: str | None) -> str | None:
        if name is None:
            return None
        info = graph.modules.get(module)
        aliases = info.aliases if info is not None else {}
        aliased = aliases.get(name)
        if aliased in graph.classes:
            return aliased
        same_module = f"{module}.{name}"
        if same_module in graph.classes:
            return same_module
        candidates = by_simple.get(name.rsplit(".", 1)[-1], ())
        return candidates[0] if len(candidates) == 1 else None

    if isinstance(arg, (ast.Name, ast.Attribute)):
        return name_to_class(_terminal_name(arg))
    if isinstance(arg, ast.Lambda):
        for node in ast.walk(arg.body):
            if isinstance(node, ast.Call):
                resolved = name_to_class(_terminal_name(node.func))
                if resolved is not None:
                    return resolved
        return None
    if isinstance(arg, ast.Call):
        # A factory-of-factories: ``_interval_factory(KubernetesHpa)``.
        for inner in (*arg.args, *[kw.value for kw in arg.keywords]):
            if isinstance(inner, (ast.Name, ast.Attribute)):
                resolved = name_to_class(_terminal_name(inner))
                if resolved is not None:
                    return resolved
    return None


def _discover(
    graph: CallGraph, spec: ProtocolSpec, by_simple: dict[str, tuple[str, ...]]
) -> tuple[dict[str, int], list[str]]:
    """(implementations -> discovery line, registered-but-not-subclassing).

    Implementations are concrete classes whose ancestry includes the
    protocol base, plus anything a ``register_*`` call site resolves to;
    the second list holds registered classes outside the hierarchy.
    """
    implementations: dict[str, int] = {}
    strangers: list[str] = []
    for qualname in sorted(graph.classes):
        cls = graph.classes[qualname]
        if qualname == spec.base or _is_abstract_class(graph, cls):
            continue
        if spec.base in _ancestors(graph, qualname, by_simple):
            implementations[qualname] = cls.lineno

    for module_name in sorted(graph.modules):
        info = graph.modules[module_name]
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            if _terminal_name(node.func) != spec.register_call:
                continue
            factory_arg: ast.expr | None = None
            if len(node.args) >= 2:
                factory_arg = node.args[1]
            else:
                for kw in node.keywords:
                    if kw.arg in ("factory", "cluster_cls"):
                        factory_arg = kw.value
            if factory_arg is None:
                continue
            registered = _registered_class_from_arg(
                graph, module_name, factory_arg, by_simple
            )
            if registered is None or registered == spec.base:
                continue
            cls = graph.classes.get(registered)
            if cls is None:
                continue
            if registered not in implementations:
                if _is_abstract_class(graph, cls):
                    continue
                implementations[registered] = cls.lineno
                if spec.base not in _ancestors(graph, registered, by_simple):
                    strangers.append(registered)
    return implementations, strangers


def _callsite_args(
    node: ast.Call, spec: CallSiteSpec
) -> tuple[ast.expr | None, ast.expr | None, bool]:
    """(name argument, value argument, replace=True present) of one call."""
    name_arg: ast.expr | None = node.args[0] if node.args else None
    value_arg: ast.expr | None = node.args[1] if len(node.args) >= 2 else None
    replace = False
    for kw in node.keywords:
        if kw.arg == "name":
            name_arg = kw.value
        elif kw.arg == spec.value_keyword:
            value_arg = kw.value
        elif kw.arg == "replace":
            replace = isinstance(kw.value, ast.Constant) and kw.value.value is True
    return name_arg, value_arg, replace


def _check_callsites(
    graph: CallGraph, spec: CallSiteSpec
) -> tuple[dict[str, int], list[ContractFinding]]:
    """(literal name -> first registration line, CON004 findings).

    Only literal arguments are judged — a computed name or factory is a
    legitimate dynamic registration this pass cannot see through.
    """
    registered: dict[str, int] = {}
    out: list[ContractFinding] = []
    for module_name in sorted(graph.modules):
        info = graph.modules[module_name]
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call):
                continue
            if _terminal_name(node.func) != spec.register_call:
                continue
            name_arg, value_arg, replace = _callsite_args(node, spec)

            def finding(message: str) -> ContractFinding:
                label = "<dynamic>"
                if isinstance(name_arg, ast.Constant):
                    label = repr(name_arg.value)
                return ContractFinding(
                    path=info.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule="CON004",
                    cls=f"{module_name}:{spec.register_call}({label})",
                    message=message,
                )

            literal_name: str | None = None
            if isinstance(name_arg, ast.Constant):
                if not isinstance(name_arg.value, str) or not name_arg.value:
                    out.append(
                        finding(
                            f"{spec.registry} registration name must be a "
                            f"non-empty string, got {name_arg.value!r}"
                        )
                    )
                else:
                    literal_name = name_arg.value
            if isinstance(value_arg, ast.Constant):
                out.append(
                    finding(
                        f"{spec.registry} {spec.value_keyword} must be "
                        f"{spec.value_contract}, got the literal "
                        f"{value_arg.value!r}"
                    )
                )
            if literal_name is not None:
                if literal_name in registered and not replace:
                    out.append(
                        finding(
                            f"{spec.registry} {literal_name!r} is registered "
                            f"twice (first at line {registered[literal_name]}) "
                            "without replace=True; the second registration "
                            "raises at import time"
                        )
                    )
                else:
                    registered.setdefault(literal_name, node.lineno)
    return registered, out


# ----------------------------------------------------------------------
# The checks
# ----------------------------------------------------------------------
def _check_con001(
    graph: CallGraph,
    spec: ProtocolSpec,
    cls: ClassInfo,
    stranger: bool,
    by_simple: dict[str, tuple[str, ...]],
) -> list[ContractFinding]:
    out: list[ContractFinding] = []

    def finding(line: int, message: str) -> ContractFinding:
        return ContractFinding(
            path=cls.path, line=line, col=1, rule="CON001", cls=cls.qualname, message=message
        )

    if stranger:
        out.append(
            finding(
                cls.lineno,
                f"`{cls.name}` is registered as a {spec.registry} but does "
                f"not subclass `{spec.base}`",
            )
        )

    ancestors = _ancestors(graph, cls.qualname, by_simple)
    for name in spec.required:
        resolved = _resolve_method(graph, cls, name, by_simple)
        if resolved is None:
            out.append(
                finding(
                    cls.lineno,
                    f"{spec.registry} `{cls.name}` is missing required "
                    f"method `{name}` (protocol `{spec.base}`)",
                )
            )
        elif _is_abstractmethod(resolved):
            out.append(
                finding(
                    cls.lineno,
                    f"{spec.registry} `{cls.name}` never implements abstract "
                    f"method `{name}` declared by `{resolved.qualname}`",
                )
            )

    # Abstract methods anywhere in the chain must resolve to concrete defs.
    declared: set[str] = set()
    for ancestor in ancestors:
        info = graph.classes.get(ancestor)
        if info is None:
            continue
        for name, fn in info.methods.items():
            if _is_abstractmethod(fn) and name not in declared:
                declared.add(name)
                resolved = _resolve_method(graph, cls, name, by_simple)
                if (
                    resolved is not None
                    and _is_abstractmethod(resolved)
                    and name not in spec.required  # already reported above
                ):
                    out.append(
                        finding(
                            cls.lineno,
                            f"{spec.registry} `{cls.name}` never implements "
                            f"abstract method `{name}` declared by "
                            f"`{resolved.qualname}`",
                        )
                    )

    # Overrides must accept at least the protocol arity.
    for name in spec.required:
        own = cls.methods.get(name)
        if own is None:
            continue
        for ancestor in ancestors:
            info = graph.classes.get(ancestor)
            if info is None or name not in info.methods:
                continue
            base_def = info.methods[name]
            if _positional_arity(own) < _positional_arity(base_def):
                out.append(
                    ContractFinding(
                        path=cls.path,
                        line=own.lineno,
                        col=1,
                        rule="CON001",
                        cls=cls.qualname,
                        message=(
                            f"`{cls.name}.{name}` takes {_positional_arity(own)} "
                            f"positional parameter(s) but the protocol definition "
                            f"`{base_def.qualname}` takes {_positional_arity(base_def)}; "
                            "callers pass the protocol arity"
                        ),
                    )
                )
            break  # nearest definition wins
    return out


def _check_con002(graph: CallGraph, spec: ProtocolSpec, cls: ClassInfo) -> list[ContractFinding]:
    module = graph.modules.get(cls.module)
    if module is None:
        return []
    out: list[ContractFinding] = []
    for name, line in module.module_mutables:
        if name.startswith(_CON002_EXEMPT_PREFIX):
            continue
        out.append(
            ContractFinding(
                path=cls.path,
                line=line,
                col=1,
                rule="CON002",
                cls=cls.qualname,
                message=(
                    f"module-level mutable `{name}` in the module defining "
                    f"{spec.registry} `{cls.name}`; registered implementations "
                    "must keep state on the instance (module state is "
                    "per-process under the sweep pool)"
                ),
            )
        )
    return out


def _check_con003(
    graph: CallGraph,
    spec: ProtocolSpec,
    cls: ClassInfo,
    by_simple: dict[str, tuple[str, ...]],
) -> list[ContractFinding]:
    ctor = _resolve_method(graph, cls, "__init__", by_simple)
    injectable = ctor is not None and any(p in RNG_PARAM_NAMES for p in ctor.params)
    if injectable:
        return []
    out: list[ContractFinding] = []
    for name in sorted(cls.methods):
        facts = taint_facts_of(graph, cls.methods[name])
        for source in facts.sources:
            if source.kind != KIND_AMBIENT_RNG:
                continue
            out.append(
                ContractFinding(
                    path=cls.path,
                    line=source.line,
                    col=source.col,
                    rule="CON003",
                    cls=cls.qualname,
                    message=(
                        f"{spec.registry} `{cls.name}.{name}` draws from the "
                        f"ambient RNG ({source.detail}) with no "
                        "constructor-injectable generator "
                        f"({'/'.join(sorted(RNG_PARAM_NAMES))}); same-seed "
                        "runs cannot reproduce its decisions"
                    ),
                )
            )
    return out


def check_contracts(graph: CallGraph) -> tuple[ContractFinding, ...]:
    """Run CON001–004 over every discovered registry implementation."""
    by_simple = _class_by_simple_name(graph)
    findings: set[ContractFinding] = set()
    for spec in PROTOCOLS:
        if spec.base not in graph.classes:
            continue  # protocol not in the analyzed tree (partial fixture)
        implementations, strangers = _discover(graph, spec, by_simple)
        stranger_set = set(strangers)
        for qualname in sorted(implementations):
            cls = graph.classes[qualname]
            findings.update(
                _check_con001(graph, spec, cls, qualname in stranger_set, by_simple)
            )
            findings.update(_check_con002(graph, spec, cls))
            findings.update(_check_con003(graph, spec, cls, by_simple))
    for callsite_spec in CALLSITE_REGISTRIES:
        if callsite_spec.module not in graph.modules:
            continue  # registry not in the analyzed tree (partial fixture)
        _, callsite_findings = _check_callsites(graph, callsite_spec)
        findings.update(callsite_findings)
    return tuple(sorted(findings))


def contract_summary(graph: CallGraph) -> dict[str, int]:
    """Registry label -> number of discovered implementations.

    Call-site registries (workload/app/routing) count distinct literal
    names registered anywhere in the tree; like the protocol registries
    they appear only when their defining module is part of the analysis.
    """
    by_simple = _class_by_simple_name(graph)
    out: dict[str, int] = {}
    for spec in PROTOCOLS:
        if spec.base not in graph.classes:
            continue
        implementations, _ = _discover(graph, spec, by_simple)
        out[spec.registry] = len(implementations)
    for callsite_spec in CALLSITE_REGISTRIES:
        if callsite_spec.module not in graph.modules:
            continue
        registered, _ = _check_callsites(graph, callsite_spec)
        out[callsite_spec.registry] = len(registered)
    return dict(sorted(out.items()))
