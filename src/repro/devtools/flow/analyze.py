"""FlowLint driver: build graph → reach → effects → rules → baseline → report.

Usage::

    python -m repro.devtools.flow                       # analyze src/repro
    python -m repro.devtools.flow --format json         # repro.flow/1 on stdout
    python -m repro.devtools.flow --report BENCH_static_analysis.json
    python -m repro.devtools.flow --write-baseline      # accept current findings
    hyscale-repro analyze                               # same engine, main CLI
    hyscale-repro lint --flow                           # per-file + flow rules

Exit status: 0 clean, 1 unbaselined findings (or baseline-audit failures),
2 usage error (bad paths, malformed baseline).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.devtools.flow.baseline import (
    BASELINE_FILENAME,
    EMPTY_BASELINE,
    Baseline,
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from repro.devtools.flow.callgraph import CallGraph, build_call_graph, read_sources
from repro.devtools.flow.effects import EffectSummary, effects_of
from repro.devtools.flow.reachability import Roots, discover_roots, reachable_from
from repro.devtools.flow.report import FlowReport, build_inventory, render_flow_json
from repro.devtools.flow.rules import (
    FlowContext,
    FlowViolation,
    flow_rule_catalog,
    run_flow_rules,
)
from repro.devtools.lint import render_report
from repro.devtools.violations import Violation

#: Paths analyzed when the CLI is invoked without arguments.
DEFAULT_ANALYZE_PATHS = ("src/repro",)


@dataclass(frozen=True)
class FlowAnalysis:
    """One full analyzer run over a source tree."""

    graph: CallGraph
    roots: Roots
    effects: dict[str, EffectSummary]
    report: FlowReport

    @property
    def unbaselined(self) -> tuple[FlowViolation, ...]:
        """Findings not covered by the baseline."""
        return self.report.unbaselined

    @property
    def violations(self) -> list[Violation]:
        """Unbaselined findings plus baseline-audit failures, renderable."""
        out = [fv.to_violation() for fv in self.report.unbaselined]
        out.extend(self.report.baseline_audit)
        return sorted(out)

    @property
    def clean(self) -> bool:
        """True when nothing unbaselined remains and the baseline is sound."""
        return not self.report.unbaselined and not self.report.baseline_audit


def analyze_sources(
    sources: Sequence[tuple[str, str]], baseline: Baseline = EMPTY_BASELINE
) -> FlowAnalysis:
    """Analyze in-memory ``(logical_path, source)`` pairs (test seam)."""
    graph = build_call_graph(sources)
    roots = discover_roots(graph)
    effects = {
        qualname: effects_of(fn) for qualname, fn in sorted(graph.functions.items())
    }
    ctx = FlowContext(
        graph=graph,
        roots=roots,
        step_reachable=reachable_from(graph, roots.step),
        worker_reachable=reachable_from(graph, roots.worker),
        merge_reachable=reachable_from(graph, roots.merge),
        effects=effects,
    )
    findings = run_flow_rules(ctx)
    unbaselined, suppressed, audit = apply_baseline(findings, baseline)
    report = FlowReport(
        graph=graph,
        roots=roots,
        step_reachable=ctx.step_reachable,
        worker_reachable=ctx.worker_reachable,
        merge_reachable=ctx.merge_reachable,
        inventory=build_inventory(ctx.step_reachable, effects),
        unbaselined=tuple(unbaselined),
        suppressed=tuple(suppressed),
        baseline_audit=tuple(audit),
    )
    return FlowAnalysis(graph=graph, roots=roots, effects=effects, report=report)


def analyze_paths(
    paths: Sequence[str | Path],
    root: str | Path | None = None,
    baseline: Baseline = EMPTY_BASELINE,
) -> FlowAnalysis:
    """Analyze files/directories rooted at ``root`` (default: CWD)."""
    root_path = Path(root) if root is not None else Path.cwd()
    resolved = [
        Path(root_path, p) if not Path(p).is_absolute() else Path(p) for p in paths
    ]
    return analyze_sources(read_sources(resolved, root_path), baseline)


def default_baseline(root_path: Path) -> Baseline:
    """Load ``.flowlint-baseline.json`` at the root when present."""
    candidate = root_path / BASELINE_FILENAME
    if candidate.is_file():
        return load_baseline(candidate)
    return EMPTY_BASELINE


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="FlowLint: interprocedural hot-path & parallel-safety analysis.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_ANALYZE_PATHS),
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_ANALYZE_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root used to derive logical paths (default: CWD)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="also write the canonical repro.flow/1 JSON report to FILE",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file (default: <root>/{BASELINE_FILENAME} when present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to accept every current finding, then exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the flow rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, summary in sorted(flow_rule_catalog().items()):
            print(f"{rule_id}  {summary}")
        return 0

    root_path = Path(args.root) if args.root is not None else Path.cwd()
    requested = [
        Path(root_path, p) if not Path(p).is_absolute() else Path(p) for p in args.paths
    ]
    missing = [str(p) for p in requested if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    try:
        if args.baseline is not None:
            baseline = load_baseline(Path(args.baseline))
        else:
            baseline = default_baseline(root_path)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    analysis = analyze_paths(args.paths, root=args.root, baseline=baseline)

    if args.write_baseline:
        target = Path(args.baseline) if args.baseline is not None else root_path / BASELINE_FILENAME
        entries = {
            BaselineEntry(rule=e.rule, function=e.function, reason=e.reason)
            for e in baseline.entries
            if any(
                (fv.rule, fv.function) == (e.rule, e.function)
                for fv in (*analysis.report.unbaselined, *analysis.report.suppressed)
            )
        }
        entries.update(
            BaselineEntry(rule=fv.rule, function=fv.function, reason="TODO: justify")
            for fv in analysis.report.unbaselined
        )
        target.write_text(render_baseline(sorted(entries)), encoding="utf-8")
        print(f"wrote {len(entries)} baseline entr(ies) to {target}")
        return 0

    if args.report is not None:
        Path(args.report).write_text(render_flow_json(analysis.report), encoding="utf-8")

    if args.format == "json":
        print(render_flow_json(analysis.report), end="")
    else:
        report = analysis.report
        print(
            f"flow: {len(analysis.graph.functions)} functions, "
            f"{analysis.graph.edge_count} edges; "
            f"step-reachable={len(report.step_reachable)} "
            f"worker-reachable={len(report.worker_reachable)} "
            f"merge-reachable={len(report.merge_reachable)}"
        )
        print(
            f"hot-path inventory: {len(report.inventory)} allocation site(s); "
            f"suppressed={len(report.suppressed)}"
        )
        violations = analysis.violations
        if violations:
            print(render_report(violations, len(analysis.graph.modules)))
        else:
            print(
                f"clean: {len(analysis.graph.modules)} module(s) analyzed, "
                "0 unbaselined violations"
            )
    return 0 if analysis.clean else 1


if __name__ == "__main__":
    sys.exit(main())
