"""FlowLint driver: graph → reach → effects → taint → contracts → rules → report.

Usage::

    python -m repro.devtools.flow                       # analyze src/repro
    python -m repro.devtools.flow --format json         # repro.flow/2 on stdout
    python -m repro.devtools.flow --report BENCH_static_analysis.json
    python -m repro.devtools.flow --write-baseline      # accept current findings
    python -m repro.devtools.flow --max-wall 3.4        # perf gate (make analyze)
    hyscale-repro analyze                               # same engine, main CLI
    hyscale-repro lint --flow                           # per-file + flow rules

Exit status: 0 clean, 1 unbaselined findings (or baseline-audit failures,
or a blown ``--max-wall`` budget), 2 usage error (bad paths, malformed
baseline, unknown flags).

Timing is *injected*: callers that want per-phase timings pass a
monotonic ``timer`` callable (the CLI passes ``time.perf_counter``).
The library default is no timer — analysis stays free of wall-clock
reads, and the canonical report bytes never depend on timing.  The CLI
merges timings into the written ``--report`` artifact next to the
canonical payload, never into :func:`render_flow_json` itself.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.devtools.flow.baseline import (
    BASELINE_FILENAME,
    EMPTY_BASELINE,
    Baseline,
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from repro.devtools.flow.callgraph import CallGraph, build_call_graph, read_sources
from repro.devtools.flow.contracts import check_contracts
from repro.devtools.flow.effects import EffectSummary, effects_of
from repro.devtools.flow.reachability import Roots, discover_roots, reachable_from
from repro.devtools.flow.report import FlowReport, build_inventory, render_flow_json
from repro.devtools.flow.rules import (
    FlowContext,
    FlowViolation,
    flow_rule_catalog,
    run_flow_rules,
)
from repro.devtools.flow.taint import analyze_taint
from repro.devtools.lint import render_report
from repro.devtools.rules import rule_catalog
from repro.devtools.violations import Violation

#: Paths analyzed when the CLI is invoked without arguments.
DEFAULT_ANALYZE_PATHS = ("src/repro",)

#: Every rule id a baseline entry may legitimately name: the flow
#: families plus the per-file catalogue (entries never key on BASE00x).
def known_rule_ids() -> frozenset[str]:
    """The current catalogue's complete rule-id set."""
    return frozenset(flow_rule_catalog()) | frozenset(rule_catalog())


@dataclass(frozen=True)
class FlowAnalysis:
    """One full analyzer run over a source tree."""

    graph: CallGraph
    roots: Roots
    effects: dict[str, EffectSummary]
    report: FlowReport
    #: Phase label -> seconds; empty unless a ``timer`` was injected.
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def unbaselined(self) -> tuple[FlowViolation, ...]:
        """Findings not covered by the baseline."""
        return self.report.unbaselined

    @property
    def violations(self) -> list[Violation]:
        """Unbaselined findings plus baseline-audit failures, renderable."""
        out = [fv.to_violation() for fv in self.report.unbaselined]
        out.extend(self.report.baseline_audit)
        return sorted(out)

    @property
    def clean(self) -> bool:
        """True when nothing unbaselined remains and the baseline is sound."""
        return not self.report.unbaselined and not self.report.baseline_audit


def analyze_sources(
    sources: Sequence[tuple[str, str]],
    baseline: Baseline = EMPTY_BASELINE,
    timer: Callable[[], float] | None = None,
) -> FlowAnalysis:
    """Analyze in-memory ``(logical_path, source[, tree])`` tuples.

    This is both the test seam and the shared-parse seam: ``lint --flow``
    passes the ASTs it already parsed as third tuple elements, so the
    ~130 modules of ``src/repro`` are never parsed twice in one process.
    """
    timings: dict[str, float] = {}
    last = timer() if timer is not None else 0.0

    def lap(label: str) -> None:
        nonlocal last
        if timer is not None:
            now = timer()
            timings[label] = round(now - last, 6)
            last = now

    graph = build_call_graph(sources)
    lap("parse_graph")
    roots = discover_roots(graph)
    step_reachable = reachable_from(graph, roots.step)
    worker_reachable = reachable_from(graph, roots.worker)
    merge_reachable = reachable_from(graph, roots.merge)
    lap("reachability")
    effects = {
        qualname: effects_of(fn) for qualname, fn in sorted(graph.functions.items())
    }
    lap("effects")
    taint = analyze_taint(graph)
    lap("taint")
    contracts = check_contracts(graph)
    lap("contracts")
    ctx = FlowContext(
        graph=graph,
        roots=roots,
        step_reachable=step_reachable,
        worker_reachable=worker_reachable,
        merge_reachable=merge_reachable,
        effects=effects,
        taint=taint,
        contracts=contracts,
    )
    findings = run_flow_rules(ctx)
    unbaselined, suppressed, audit = apply_baseline(
        findings, baseline, known_rules=known_rule_ids()
    )
    lap("rules")
    report = FlowReport(
        graph=graph,
        roots=roots,
        step_reachable=ctx.step_reachable,
        worker_reachable=ctx.worker_reachable,
        merge_reachable=ctx.merge_reachable,
        inventory=build_inventory(ctx.step_reachable, effects),
        unbaselined=tuple(unbaselined),
        suppressed=tuple(suppressed),
        baseline_audit=tuple(audit),
        taint=taint,
        contracts=contracts,
    )
    lap("report")
    if timer is not None:
        timings["total"] = round(sum(timings.values()), 6)
    return FlowAnalysis(
        graph=graph, roots=roots, effects=effects, report=report, timings=timings
    )


def analyze_paths(
    paths: Sequence[str | Path],
    root: str | Path | None = None,
    baseline: Baseline = EMPTY_BASELINE,
    timer: Callable[[], float] | None = None,
) -> FlowAnalysis:
    """Analyze files/directories rooted at ``root`` (default: CWD)."""
    root_path = Path(root) if root is not None else Path.cwd()
    resolved = [
        Path(root_path, p) if not Path(p).is_absolute() else Path(p) for p in paths
    ]
    return analyze_sources(read_sources(resolved, root_path), baseline, timer=timer)


def default_baseline(root_path: Path) -> Baseline:
    """Load ``.flowlint-baseline.json`` at the root when present."""
    candidate = root_path / BASELINE_FILENAME
    if candidate.is_file():
        return load_baseline(candidate)
    return EMPTY_BASELINE


def report_artifact_text(analysis: FlowAnalysis) -> str:
    """The ``--report`` file body: canonical payload plus CLI extras.

    The canonical codec stays byte-identical across runs; timings (which
    never are) ride alongside it under a ``"timings"`` key the codec
    itself never emits.
    """
    payload = analysis.report.to_dict()
    if analysis.timings:
        payload["timings"] = analysis.timings
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "FlowLint + DetFlow: interprocedural hot-path, parallel-safety, "
            "determinism-taint, and registry-contract analysis."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_ANALYZE_PATHS),
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_ANALYZE_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root used to derive logical paths (default: CWD)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="stdout format (default: text)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="also write the repro.flow/2 JSON report (plus phase timings) to FILE",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file (default: <root>/{BASELINE_FILENAME} when present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to accept every current finding, then exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the flow rule catalogue and exit",
    )
    parser.add_argument(
        "--max-wall",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail (exit 1) when total analyzer wall time exceeds SECONDS "
        "(the make-analyze perf gate: 2x the PR 6 baseline)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, summary in sorted(flow_rule_catalog().items()):
            print(f"{rule_id}  {summary}")
        return 0

    root_path = Path(args.root) if args.root is not None else Path.cwd()
    requested = [
        Path(root_path, p) if not Path(p).is_absolute() else Path(p) for p in args.paths
    ]
    missing = [str(p) for p in requested if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    try:
        if args.baseline is not None:
            baseline = load_baseline(Path(args.baseline))
        else:
            baseline = default_baseline(root_path)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    analysis = analyze_paths(
        args.paths, root=args.root, baseline=baseline, timer=time.perf_counter
    )

    if args.write_baseline:
        target = Path(args.baseline) if args.baseline is not None else root_path / BASELINE_FILENAME
        entries = {
            BaselineEntry(rule=e.rule, function=e.function, reason=e.reason)
            for e in baseline.entries
            if any(
                (fv.rule, fv.function) == (e.rule, e.function)
                for fv in (*analysis.report.unbaselined, *analysis.report.suppressed)
            )
        }
        entries.update(
            BaselineEntry(rule=fv.rule, function=fv.function, reason="TODO: justify")
            for fv in analysis.report.unbaselined
        )
        target.write_text(render_baseline(sorted(entries)), encoding="utf-8")
        print(f"wrote {len(entries)} baseline entr(ies) to {target}")
        return 0

    if args.report is not None:
        Path(args.report).write_text(report_artifact_text(analysis), encoding="utf-8")

    over_budget = (
        args.max_wall is not None
        and analysis.timings.get("total", 0.0) > args.max_wall
    )

    if args.format == "json":
        print(render_flow_json(analysis.report), end="")
    else:
        report = analysis.report
        taint = report.taint
        print(
            f"flow: {len(analysis.graph.functions)} functions, "
            f"{analysis.graph.edge_count} edges; "
            f"step-reachable={len(report.step_reachable)} "
            f"worker-reachable={len(report.worker_reachable)} "
            f"merge-reachable={len(report.merge_reachable)}"
        )
        print(
            f"hot-path inventory: {len(report.inventory)} allocation site(s); "
            f"suppressed={len(report.suppressed)}"
        )
        if taint is not None:
            print(
                f"taint: {taint.source_count} source(s), "
                f"{taint.killed_count} killed at birth, "
                f"{len(taint.sinks_present)} sink(s), "
                f"{len(taint.paths)} tainted path(s)"
            )
        violations = analysis.violations
        if violations:
            print(render_report(violations, len(analysis.graph.modules)))
        else:
            print(
                f"clean: {len(analysis.graph.modules)} module(s) analyzed, "
                "0 unbaselined violations"
            )
        if over_budget:
            print(
                f"perf gate: analyzer took {analysis.timings['total']:.3f}s, "
                f"budget {args.max_wall:.3f}s — exceeded",
                file=sys.stderr,
            )
        elif args.max_wall is not None:
            print(
                f"perf gate: {analysis.timings['total']:.3f}s "
                f"<= {args.max_wall:.3f}s budget"
            )
    if over_budget:
        return 1
    return 0 if analysis.clean else 1


if __name__ == "__main__":
    sys.exit(main())
