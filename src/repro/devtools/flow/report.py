"""Canonical ``repro.flow/2`` report codec.

The report is the analyzer's durable artifact (written to
``BENCH_static_analysis.json`` by ``make analyze`` and uploaded from CI).
Its headline sections are the **hot-path allocation inventory** (every
allocation site reachable from ``Engine.step``, ranked by loop depth and
position — the explicit work-list for the ROADMAP item-1 vectorization)
and, since schema ``/2``, the **tainted-path inventory**: every
source→sink determinism-taint witness chain DetFlow found, ranked by hop
count, plus the source/sanitizer/sink census behind it.

Everything in the report is deterministically ordered and carries no
timestamps or absolute paths, so repeated runs over the same tree are
byte-identical (an acceptance criterion, and what makes the artifact
diffable in CI).  Phase timings deliberately live *outside* this codec:
the CLI merges them into the BENCH artifact next to — never inside — the
canonical payload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.devtools.flow.callgraph import CallGraph
from repro.devtools.flow.contracts import ContractFinding, contract_summary
from repro.devtools.flow.effects import EffectSummary
from repro.devtools.flow.reachability import Roots
from repro.devtools.flow.rules import FlowViolation, flow_rule_catalog
from repro.devtools.flow.taint import TaintAnalysis, TaintedPath
from repro.devtools.rules import CATALOGUE_VERSION
from repro.devtools.violations import Violation

#: Schema tag of the flow report ("/2" added the tainted-path inventory,
#: the taint summary, and the registry-contract census).
FLOW_SCHEMA = "repro.flow/2"


@dataclass(frozen=True, order=True)
class InventoryEntry:
    """One ranked allocation site on the step-reachable hot path."""

    rank: int
    function: str
    path: str
    line: int
    col: int
    kind: str
    loop_depth: int
    constant: bool

    def to_dict(self) -> dict[str, object]:
        """JSON shape of one inventory row."""
        return {
            "rank": self.rank,
            "function": self.function,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "kind": self.kind,
            "loop_depth": self.loop_depth,
            "constant": self.constant,
        }


def build_inventory(
    step_reachable: frozenset[str], effects: dict[str, EffectSummary]
) -> tuple[InventoryEntry, ...]:
    """Rank every non-error-path allocation in step-reachable code.

    Deeper loop nesting ranks first (it multiplies per-step cost by the
    iteration count); ties break on path/line so the ranking is stable.
    """
    rows: list[tuple[int, str, int, int, str, str, bool]] = []
    for qualname in sorted(step_reachable):
        summary = effects.get(qualname)
        if summary is None:
            continue
        for site in summary.allocations:
            if site.error_path:
                continue
            rows.append(
                (
                    -site.loop_depth,
                    summary.path,
                    site.line,
                    site.col,
                    site.kind,
                    qualname,
                    site.constant,
                )
            )
    rows.sort()
    return tuple(
        InventoryEntry(
            rank=index + 1,
            function=qualname,
            path=path,
            line=line,
            col=col,
            kind=kind,
            loop_depth=-neg_depth,
            constant=constant,
        )
        for index, (neg_depth, path, line, col, kind, qualname, constant) in enumerate(rows)
    )


def _flow_violation_dict(fv: FlowViolation) -> dict[str, object]:
    return {
        "path": fv.path,
        "line": fv.line,
        "col": fv.col,
        "rule": fv.rule,
        "function": fv.function,
        "message": fv.message,
    }


@dataclass(frozen=True)
class FlowReport:
    """Everything the analyzer learned, ready for serialization."""

    graph: CallGraph
    roots: Roots
    step_reachable: frozenset[str]
    worker_reachable: frozenset[str]
    merge_reachable: frozenset[str]
    inventory: tuple[InventoryEntry, ...]
    unbaselined: tuple[FlowViolation, ...]
    suppressed: tuple[FlowViolation, ...]
    baseline_audit: tuple[Violation, ...]
    taint: TaintAnalysis | None = None
    contracts: tuple[ContractFinding, ...] = ()

    def _taint_dict(self) -> dict[str, object]:
        if self.taint is None:
            return {"sources": 0, "tainted_paths": 0}
        by_kind: dict[str, int] = {}
        for facts in self.taint.facts.values():
            for source in facts.sources:
                by_kind[source.kind] = by_kind.get(source.kind, 0) + 1
        return {
            "sources": self.taint.source_count,
            "sources_by_kind": dict(sorted(by_kind.items())),
            "sources_killed_at_birth": self.taint.killed_count,
            "sanitizer_applications": dict(self.taint.sanitizer_applications),
            "sinks_present": list(self.taint.sinks_present),
            "tainted_paths": len(self.taint.paths),
        }

    def to_dict(self) -> dict[str, object]:
        """The canonical ``repro.flow/2`` payload."""
        by_rule: dict[str, int] = {}
        for fv in self.unbaselined:
            by_rule[fv.rule] = by_rule.get(fv.rule, 0) + 1
        tainted_paths: list[TaintedPath] = list(self.taint.paths) if self.taint else []
        return {
            "schema": FLOW_SCHEMA,
            "catalogue_version": CATALOGUE_VERSION,
            "rules": flow_rule_catalog(),
            "graph": {
                "modules": len(self.graph.modules),
                "functions": len(self.graph.functions),
                "edges": self.graph.edge_count,
            },
            "roots": {
                "step": list(self.roots.step),
                "worker": list(self.roots.worker),
                "merge": list(self.roots.merge),
            },
            "reachable": {
                "step": len(self.step_reachable),
                "worker": len(self.worker_reachable),
                "merge": len(self.merge_reachable),
            },
            "hot_path_inventory": [entry.to_dict() for entry in self.inventory],
            "tainted_path_inventory": [p.to_dict() for p in tainted_paths],
            "taint_summary": self._taint_dict(),
            "contracts": {
                "implementations": contract_summary(self.graph),
                "findings": len(self.contracts),
            },
            "violations": {
                "unbaselined": [_flow_violation_dict(fv) for fv in self.unbaselined],
                "suppressed": [_flow_violation_dict(fv) for fv in self.suppressed],
                "baseline_audit": [v.to_dict() for v in self.baseline_audit],
            },
            "summary": {
                "unbaselined": len(self.unbaselined),
                "suppressed": len(self.suppressed),
                "baseline_audit": len(self.baseline_audit),
                "by_rule": dict(sorted(by_rule.items())),
            },
        }


def render_flow_json(report: FlowReport) -> str:
    """Serialize a report to its canonical byte-identical JSON text."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=False) + "\n"
