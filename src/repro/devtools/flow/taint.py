"""DetFlow: interprocedural determinism-taint analysis.

The repo's headline guarantee is that same-seed runs are byte-identical
across backends, shard counts, and ``--jobs``.  The per-file rules
(DET001–003) catch nondeterminism *sources* statement-by-statement, and
the end-to-end byte pins catch whatever actually fired — but neither can
say *which source can reach which artifact*.  This pass can: it
propagates taint from a catalogued set of nondeterminism **sources**
along the FlowLint call graph down to the catalogued **sinks** (the
canonical codecs and key-derivation functions whose output must be
byte-stable), killing taint at catalogued **sanitizers**.

The model is function-granularity and kind-aware:

* a function *generates* taint of a kind when its body contains an
  unsanitized source pattern of that kind;
* taint propagates from callee to caller (returned values) unless the
  callee's every ``return`` is wrapped in an order-killing sanitizer, or
  the caller wraps every call to that callee in one — order barriers
  only kill the *order* kinds (``sorted(time.time())`` is still
  nondeterministic);
* a **tainted path** exists when a tainted function can call into a sink
  (argument flow) or the sink itself is tainted through its callees
  (return flow) — both reduce to: some function on a caller-chain into
  the sink is tainted.

Every tainted path carries a full source→sink witness chain, ranked in
the ``repro.flow/2`` report.  The rule mapping:

* **DET101** — a wall-clock / ambient-RNG / uuid / object-identity /
  environment read reaches a canonical sink;
* **DET102** — ambient RNG in step- or worker-reachable code (no sink
  needed: anything the engine or a pool worker runs must draw from the
  injected :class:`~repro.sim.rng.RngStreams`);
* **DET103** — unordered ``set`` iteration feeding a sink without a sort
  barrier (the interprocedural upgrade of PAR003 on sink paths);
* **DET104** — float accumulation whose order depends on an unordered
  collection, on a sink path (float addition does not commute in
  rounding).
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.devtools.flow.callgraph import CallGraph, FunctionInfo
from repro.devtools.rules import (
    WALL_CLOCK_CALLS,
    _canonical_call_name,
    _is_set_expr,
    _local_set_names,
    _terminal_name,
)

# ----------------------------------------------------------------------
# The catalogue
# ----------------------------------------------------------------------
#: Source kinds.
KIND_WALL_CLOCK = "wall-clock"
KIND_AMBIENT_RNG = "ambient-rng"
KIND_UUID = "uuid"
KIND_IDENTITY = "object-identity"
KIND_ENV_READ = "env-read"
KIND_FS_ENUM = "fs-enumeration"
KIND_UNORDERED_ITER = "unordered-iter"
KIND_FLOAT_ACCUM = "float-accum-unordered"

#: Kinds whose nondeterminism is purely *ordering* — a sort barrier or
#: canonical (key-sorted) JSON encoding restores byte-stability.  Value
#: kinds (wall-clock, rng, uuid, identity, env reads) survive sorting.
ORDER_KINDS = frozenset({KIND_FS_ENUM, KIND_UNORDERED_ITER, KIND_FLOAT_ACCUM})

#: Sanitizer classes (the report counts applications of each).
SAN_SORT = "sort-barrier"
SAN_CANONICAL_JSON = "canonical-json"
SAN_RNG_STREAM = "rng-stream"

#: ``numpy.random`` members that *construct* generators: calling them
#: with an explicit seed/entropy argument is the injected-generator
#: discipline (``default_rng(SeedSequence(...))``), not an ambient draw.
_RNG_CONSTRUCTORS = frozenset(
    {"default_rng", "Generator", "PCG64", "MT19937", "Philox", "SFC64", "BitGenerator"}
)

#: ``numpy.random`` members that are never entropy sources.
_RNG_SAFE = frozenset({"SeedSequence"})

#: Environment-read calls (value depends on the host environment).
_ENV_READ_CALLS = frozenset({"os.getenv"})

#: ``os.environ.<member>`` reads (writes are PAR002's business).
_ENV_READ_MEMBERS = frozenset({"get", "items", "keys", "values", "copy", "setdefault"})

#: Filesystem-enumeration calls whose result *order* is OS-dependent.
_FS_ENUM_CALLS = frozenset({"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"})

#: Method names that enumerate a directory regardless of receiver type
#: (``Path.iterdir`` / ``Path.rglob``); ``Path.glob`` is only matched
#: through the ``glob`` module spellings above to avoid name collisions.
_FS_ENUM_METHODS = frozenset({"iterdir", "rglob", "scandir"})

#: The canonical sinks: every function whose output must be byte-stable.
#: qualname -> the artifact family it renders or keys.
SINKS: dict[str, str] = {
    # repro.obs/1 decision-trace codec
    "repro.obs.export.span_to_json_line": "repro.obs/1",
    "repro.obs.export.spans_to_jsonl": "repro.obs/1",
    "repro.obs.export.write_trace_jsonl": "repro.obs/1",
    # repro.telemetry/1 snapshot codec + OpenMetrics rendering
    "repro.telemetry.snapshot.snapshot_lines": "repro.telemetry/1",
    "repro.telemetry.snapshot.snapshot_to_jsonl": "repro.telemetry/1",
    "repro.telemetry.snapshot.write_snapshot_jsonl": "repro.telemetry/1",
    "repro.telemetry.openmetrics.render_openmetrics": "openmetrics",
    "repro.telemetry.openmetrics.write_openmetrics": "openmetrics",
    # repro.san/1 sanitizer codec
    "repro.sanitizer.export.violation_to_json_line": "repro.san/1",
    "repro.sanitizer.export.violations_to_jsonl": "repro.san/1",
    "repro.sanitizer.export.write_san_jsonl": "repro.san/1",
    "repro.sanitizer.export.render_san_report": "repro.san/1",
    # repro.sweep/1 spec codec, shard seeds, and shard-cache keys
    "repro.experiments.spec.RunSpec.canonical_json": "repro.sweep/1",
    "repro.experiments.spec.SweepSpec.canonical_json": "repro.sweep/1",
    # repro.app/1 application-graph codec (embedded in run specs)
    "repro.workloads.graph.ApplicationSpec.canonical_json": "repro.app/1",
    "repro.experiments.spec.derive_shard_seed": "shard-seed",
    "repro.parallel.cache.ShardCache.key_for": "shard-cache-key",
    # summary / timeline builders
    "repro.metrics.summary.RunSummary.from_collector": "summary",
    "repro.metrics.summary.RunSummary.to_dict": "summary",
    "repro.metrics.summary.RunSummary.to_json": "summary",
    "repro.analysis.timeline.render_timeline": "timeline",
    # the flow report itself eats its own dog food
    "repro.devtools.flow.report.render_flow_json": "repro.flow/2",
}

#: Rule id per source kind for tainted-path findings.
_RULE_FOR_KIND = {
    KIND_WALL_CLOCK: "DET101",
    KIND_AMBIENT_RNG: "DET101",
    KIND_UUID: "DET101",
    KIND_IDENTITY: "DET101",
    KIND_ENV_READ: "DET101",
    KIND_FS_ENUM: "DET101",
    KIND_UNORDERED_ITER: "DET103",
    KIND_FLOAT_ACCUM: "DET104",
}


# ----------------------------------------------------------------------
# Per-function facts
# ----------------------------------------------------------------------
@dataclass(frozen=True, order=True)
class TaintSource:
    """One unsanitized nondeterminism source inside one function."""

    line: int
    col: int
    kind: str
    detail: str


@dataclass(frozen=True)
class TaintFacts:
    """Everything the taint pass learned about one function's body."""

    qualname: str
    sources: tuple[TaintSource, ...] = ()
    #: Sources killed at birth by an enclosing sanitizer (counted only).
    killed: tuple[TaintSource, ...] = ()
    #: Sanitizer class -> number of applications in this body.
    sanitizers: Mapping[str, int] = field(default_factory=dict)
    #: Bare callee names whose *every* call site sits inside an
    #: order-killing barrier (``sorted(helper(...))``).
    barrier_wrapped: frozenset[str] = frozenset()
    #: Every ``return`` wraps its value in an order-killing sanitizer, so
    #: ORDER-kind taint generated below this function never escapes up.
    returns_sanitized: bool = False


def _module_aliases(graph: CallGraph, fn: FunctionInfo) -> dict[str, str]:
    info = graph.modules.get(fn.module)
    return dict(info.aliases) if info is not None else {}


def _is_sorted_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


def _is_canonical_json_call(node: ast.expr, aliases: Mapping[str, str]) -> bool:
    """``json.dumps(..., sort_keys=True)`` or a ``canonical_json`` call."""
    if not isinstance(node, ast.Call):
        return False
    name = _canonical_call_name(node, dict(aliases))
    if name == "json.dumps":
        for kw in node.keywords:
            if (
                kw.arg == "sort_keys"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
        return False
    return _terminal_name(node.func) == "canonical_json"


def _is_order_barrier(node: ast.expr, aliases: Mapping[str, str]) -> bool:
    return _is_sorted_call(node) or _is_canonical_json_call(node, aliases)


def _barrier_arg_nodes(fn: ast.AST, aliases: Mapping[str, str]) -> set[int]:
    """ids of AST nodes that sit inside an order-killing barrier's args."""
    inside: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and _is_order_barrier(node, aliases):
            for arg in (*node.args, *[kw.value for kw in node.keywords]):
                for child in ast.walk(arg):
                    inside.add(id(child))
    return inside


def _membership_only_nodes(fn: ast.AST) -> set[int]:
    """ids of call nodes whose value never escapes a membership check.

    ``seen.add(id(node))`` and ``id(node) in seen`` use object identity as
    an ephemeral within-process key; the value cannot reach an artifact,
    so ``id()``/``hash()`` in these positions are not sources.
    """
    inside: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Compare) and all(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            inside.add(id(node.left))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("add", "discard", "remove")
            and len(node.args) == 1
        ):
            inside.add(id(node.args[0]))
    return inside


class _TaintScanner(ast.NodeVisitor):
    """One walk collecting the :class:`TaintFacts` of one function."""

    def __init__(self, fn: FunctionInfo, aliases: dict[str, str]):
        self.fn = fn
        self.aliases = aliases
        self.barrier = _barrier_arg_nodes(fn.node, aliases)
        self.membership_only = _membership_only_nodes(fn.node)
        self.set_names = _local_set_names(fn.node)
        self.sources: list[TaintSource] = []
        self.killed: list[TaintSource] = []
        self.sanitizers: dict[str, int] = {}
        self._call_totals: dict[str, int] = {}
        self._call_wrapped: dict[str, int] = {}
        self._returns: list[ast.expr] = []
        self._top = True

    # -- plumbing ------------------------------------------------------
    def _source(self, node: ast.AST, kind: str, detail: str) -> None:
        record = TaintSource(
            line=getattr(node, "lineno", self.fn.lineno),
            col=getattr(node, "col_offset", 0) + 1,
            kind=kind,
            detail=detail,
        )
        if kind in ORDER_KINDS and id(node) in self.barrier:
            self.killed.append(record)
        else:
            self.sources.append(record)

    def _sanitizer(self, cls: str) -> None:
        self.sanitizers[cls] = self.sanitizers.get(cls, 0) + 1

    # -- structure -----------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._top:
            self._top = False
            self.generic_visit(node)
        # Nested defs are separate functions; their bodies are scanned
        # when (if) they appear in the call graph.

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._returns.append(node.value)
        self.generic_visit(node)

    # -- calls: sources, sanitizers, wrapped-callee accounting ---------
    def visit_Call(self, node: ast.Call) -> None:
        name = _canonical_call_name(node, self.aliases)
        terminal = _terminal_name(node.func)

        if _is_sorted_call(node):
            self._sanitizer(SAN_SORT)
        elif _is_canonical_json_call(node, self.aliases):
            self._sanitizer(SAN_CANONICAL_JSON)
        elif terminal in ("stream", "derive_shard_seed") and (node.args or node.keywords):
            # RngStreams.stream("name") / derive_shard_seed(seed, name):
            # deterministic derivation — the sanctioned alternative to
            # ambient draws.
            self._sanitizer(SAN_RNG_STREAM)

        if terminal is not None:
            self._call_totals[terminal] = self._call_totals.get(terminal, 0) + 1
            if id(node) in self.barrier:
                self._call_wrapped[terminal] = self._call_wrapped.get(terminal, 0) + 1

        if name is not None:
            self._classify_call(node, name)
        self.generic_visit(node)

    def _classify_call(self, node: ast.Call, name: str) -> None:
        if name in WALL_CLOCK_CALLS:
            self._source(node, KIND_WALL_CLOCK, name)
        elif name == "random" or name.startswith("random."):
            self._source(node, KIND_AMBIENT_RNG, name)
        elif name.startswith("numpy.random."):
            member = name.split(".")[2]
            if member in _RNG_SAFE:
                return
            if member in _RNG_CONSTRUCTORS and (node.args or node.keywords):
                return  # seeded/injected construction, not an ambient draw
            self._source(node, KIND_AMBIENT_RNG, name)
        elif name.startswith("uuid."):
            self._source(node, KIND_UUID, name)
        elif name in ("id", "hash"):
            if id(node) not in self.membership_only:
                self._source(node, KIND_IDENTITY, f"{name}()")
        elif name in _ENV_READ_CALLS:
            self._source(node, KIND_ENV_READ, name)
        elif name.startswith("os.environ.") and name.rsplit(".", 1)[-1] in _ENV_READ_MEMBERS:
            self._source(node, KIND_ENV_READ, name)
        elif name in _FS_ENUM_CALLS:
            self._source(node, KIND_FS_ENUM, name)
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_ENUM_METHODS
            and not name.startswith("os.")
        ):
            self._source(node, KIND_FS_ENUM, f".{node.func.attr}()")
        elif name in ("sum", "math.fsum"):
            args = node.args
            if args and self._iterates_a_set(args[0]):
                self._source(node, KIND_FLOAT_ACCUM, f"{name}(<set>)")

    def _iterates_a_set(self, node: ast.expr) -> bool:
        if _is_set_expr(node, self.set_names):
            return True
        if isinstance(node, ast.GeneratorExp):
            return any(
                _is_set_expr(gen.iter, self.set_names) for gen in node.generators
            )
        return False

    # -- environment subscript reads -----------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Load):
            target = _canonical_call_name_of_expr(node.value, self.aliases)
            if target == "os.environ":
                self._source(node, KIND_ENV_READ, "os.environ[...]")
        self.generic_visit(node)

    # -- unordered iteration & float accumulation ----------------------
    def visit_For(self, node: ast.For) -> None:
        self._flag_set_iter(node.iter)
        if _is_set_expr(node.iter, self.set_names) and isinstance(node.target, ast.Name):
            loop_var = node.target.id
            for child in node.body:
                for sub in ast.walk(child):
                    if (
                        isinstance(sub, ast.AugAssign)
                        and isinstance(sub.op, ast.Add)
                        and any(
                            isinstance(n, ast.Name) and n.id == loop_var
                            for n in ast.walk(sub.value)
                        )
                    ):
                        self._source(
                            sub, KIND_FLOAT_ACCUM, "+= accumulation over a set"
                        )
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._flag_set_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", []):
            self._flag_set_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    def _flag_set_iter(self, iterable: ast.expr) -> None:
        if _is_set_expr(iterable, self.set_names):
            self._source(iterable, KIND_UNORDERED_ITER, "set iteration")

    # -- result --------------------------------------------------------
    def facts(self) -> TaintFacts:
        wrapped = frozenset(
            name
            for name, total in self._call_totals.items()
            if self._call_wrapped.get(name, 0) == total
        )
        returns_sanitized = bool(self._returns) and all(
            _is_order_barrier(value, self.aliases) for value in self._returns
        )
        return TaintFacts(
            qualname=self.fn.qualname,
            sources=tuple(sorted(self.sources)),
            killed=tuple(sorted(self.killed)),
            sanitizers=dict(sorted(self.sanitizers.items())),
            barrier_wrapped=wrapped,
            returns_sanitized=returns_sanitized,
        )


def _canonical_call_name_of_expr(node: ast.expr, aliases: Mapping[str, str]) -> str | None:
    """Canonical dotted name of a plain expression (alias-expanded)."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    head = aliases.get(current.id, current.id)
    return ".".join([head, *reversed(parts)]) if parts else head


def taint_facts_of(graph: CallGraph, fn: FunctionInfo) -> TaintFacts:
    """Scan one function for sources, sanitizers, and barriers."""
    scanner = _TaintScanner(fn, _module_aliases(graph, fn))
    scanner.visit(fn.node)
    return scanner.facts()


# ----------------------------------------------------------------------
# Propagation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaintState:
    """How taint of one kind reached one function."""

    #: The function whose body holds the source (chain terminus).
    source_function: str
    source: TaintSource
    #: The callee this function was tainted through (None at the source).
    via: str | None


@dataclass(frozen=True, order=True)
class TaintedPath:
    """One ranked source→sink witness chain."""

    rank: int
    rule: str
    kind: str
    source_function: str
    source_path: str
    source_line: int
    source_col: int
    source_detail: str
    sink: str
    sink_family: str
    #: Call chain from the source-bearing function to the sink, inclusive.
    chain: tuple[str, ...]

    @property
    def hops(self) -> int:
        """Call edges on the witness chain."""
        return len(self.chain) - 1

    def to_dict(self) -> dict[str, object]:
        """JSON shape of one tainted-path row."""
        return {
            "rank": self.rank,
            "rule": self.rule,
            "kind": self.kind,
            "source_function": self.source_function,
            "source_path": self.source_path,
            "source_line": self.source_line,
            "source_col": self.source_col,
            "source_detail": self.source_detail,
            "sink": self.sink,
            "sink_family": self.sink_family,
            "hops": self.hops,
            "chain": list(self.chain),
        }


@dataclass(frozen=True)
class TaintAnalysis:
    """The full result of the taint pass over one tree."""

    facts: Mapping[str, TaintFacts]
    #: kind -> (function qualname -> how taint reached it).
    tainted: Mapping[str, Mapping[str, TaintState]]
    paths: tuple[TaintedPath, ...]
    #: Sink qualnames present in the analyzed graph, sorted.
    sinks_present: tuple[str, ...]
    #: Sanitizer class -> total applications across the tree.
    sanitizer_applications: Mapping[str, int]

    @property
    def source_count(self) -> int:
        """Unsanitized source sites across the tree."""
        return sum(len(f.sources) for f in self.facts.values())

    @property
    def killed_count(self) -> int:
        """Sources killed at birth by an enclosing sanitizer."""
        return sum(len(f.killed) for f in self.facts.values())


def _build_callers(graph: CallGraph) -> dict[str, list[str]]:
    callers: dict[str, list[str]] = {}
    for caller in sorted(graph.edges):
        for callee in graph.edges[caller]:
            callers.setdefault(callee, []).append(caller)
    return callers


def _propagate_kind(
    graph: CallGraph,
    facts: Mapping[str, TaintFacts],
    callers: Mapping[str, list[str]],
    kind: str,
) -> dict[str, TaintState]:
    """BFS taint of one kind from source functions up through callers."""
    state: dict[str, TaintState] = {}
    queue: deque[str] = deque()
    for qualname in sorted(facts):
        for source in facts[qualname].sources:
            if source.kind == kind:
                state[qualname] = TaintState(
                    source_function=qualname, source=source, via=None
                )
                queue.append(qualname)
                break
    while queue:
        current = queue.popleft()
        current_facts = facts.get(current)
        if (
            kind in ORDER_KINDS
            and current_facts is not None
            and current_facts.returns_sanitized
        ):
            continue  # every return is sorted/canonical: taint dies here
        bare = current.rsplit(".", 1)[-1]
        witness = state[current]
        for caller in sorted(callers.get(current, ())):
            if caller in state:
                continue
            caller_facts = facts.get(caller)
            if (
                kind in ORDER_KINDS
                and caller_facts is not None
                and bare in caller_facts.barrier_wrapped
            ):
                continue  # caller sorts everything this callee returns
            state[caller] = TaintState(
                source_function=witness.source_function,
                source=witness.source,
                via=current,
            )
            queue.append(caller)
    return state


def _taint_chain(state: Mapping[str, TaintState], start: str) -> tuple[str, ...]:
    """Chain from ``start`` down taint pointers to the source function."""
    chain = [start]
    current = start
    while True:
        via = state[current].via
        if via is None:
            return tuple(chain)
        chain.append(via)
        current = via


def analyze_taint(graph: CallGraph) -> TaintAnalysis:
    """Run the full taint pass: scan, propagate, build witness chains.

    A tainted path into a sink exists exactly when a **direct caller** of
    the sink is tainted (it hands tainted data in as arguments), or the
    sink itself is tainted (its own body, or a callee's return, carries
    the taint).  Taintedness already encodes barrier-free propagation
    from the source, so no separate path search is needed — and a source
    whose only route to a sink runs through a ``sorted(...)``-wrapping
    caller is correctly *not* flagged.
    """
    facts = {
        qualname: taint_facts_of(graph, fn)
        for qualname, fn in sorted(graph.functions.items())
    }
    callers = _build_callers(graph)
    kinds = sorted(_RULE_FOR_KIND)
    tainted = {
        kind: _propagate_kind(graph, facts, callers, kind) for kind in kinds
    }

    sinks_present = tuple(sorted(q for q in SINKS if q in graph.functions))
    raw_paths: list[tuple[int, str, str, int, int, str, TaintSource, str, tuple[str, ...]]] = []
    seen: set[tuple[str, str, str]] = set()
    for sink in sinks_present:
        hands_in = (*sorted(callers.get(sink, ())), sink)
        for kind in kinds:
            state = tainted[kind]
            for reaches in hands_in:
                witness = state.get(reaches)
                if witness is None:
                    continue
                key = (kind, witness.source_function, sink)
                if key in seen:
                    continue
                seen.add(key)
                down = _taint_chain(state, reaches)  # reaches -> source fn
                chain = tuple(reversed(down))
                # Chain reads source -> ... -> sink.
                if chain[-1] != sink:
                    chain = (*chain, sink)
                raw_paths.append(
                    (
                        len(chain) - 1,
                        _RULE_FOR_KIND[kind],
                        kind,
                        witness.source.line,
                        witness.source.col,
                        witness.source_function,
                        witness.source,
                        sink,
                        chain,
                    )
                )

    raw_paths.sort(
        key=lambda row: (row[0], row[1], row[5], row[3], row[4], row[7])
    )
    paths = tuple(
        TaintedPath(
            rank=index + 1,
            rule=rule,
            kind=kind,
            source_function=source_function,
            source_path=graph.functions[source_function].path,
            source_line=source.line,
            source_col=source.col,
            source_detail=source.detail,
            sink=sink,
            sink_family=SINKS.get(sink, "sink"),
            chain=chain,
        )
        for index, (
            _hops,
            rule,
            kind,
            _line,
            _col,
            source_function,
            source,
            sink,
            chain,
        ) in enumerate(raw_paths)
    )

    applications: dict[str, int] = {SAN_SORT: 0, SAN_CANONICAL_JSON: 0, SAN_RNG_STREAM: 0}
    for f in facts.values():
        for cls, count in f.sanitizers.items():
            applications[cls] = applications.get(cls, 0) + count

    return TaintAnalysis(
        facts=facts,
        tainted=tainted,
        paths=paths,
        sinks_present=sinks_present,
        sanitizer_applications=dict(sorted(applications.items())),
    )


def ambient_rng_sites(
    analysis: TaintAnalysis, reachable: Iterable[str]
) -> list[tuple[str, TaintSource]]:
    """(function, source) for every ambient-RNG source in ``reachable``."""
    out: list[tuple[str, TaintSource]] = []
    for qualname in sorted(set(reachable)):
        f = analysis.facts.get(qualname)
        if f is None:
            continue
        for source in f.sources:
            if source.kind == KIND_AMBIENT_RNG:
                out.append((qualname, source))
    return out
