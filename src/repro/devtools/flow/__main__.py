"""``python -m repro.devtools.flow`` — run the FlowLint analyzer."""

from __future__ import annotations

import sys

from repro.devtools.flow.analyze import main

if __name__ == "__main__":
    sys.exit(main())
