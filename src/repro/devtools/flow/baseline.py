"""Reasoned-suppression baseline for FlowLint findings.

Some findings are *inherent*: the metrics actor genuinely accumulates a
dict per step, the policy registry genuinely is a module-level dict.
Those are acknowledged in ``.flowlint-baseline.json`` — keyed by
``(rule, function qualname)`` so line churn never invalidates an entry —
and every entry must carry a human-written reason.

The baseline is deliberately hostile to rot:

* an entry whose ``(rule, function)`` matches **zero** current findings
  is *stale* and becomes a ``BASE001`` violation (delete the entry);
* an entry naming a rule the current catalogue no longer defines — the
  rule was removed or renamed in a catalogue bump — is also ``BASE001``,
  with a message naming the catalogue version to check against;
* an entry without a non-empty reason is malformed and becomes a
  ``BASE002`` violation;
* a file that fails to parse or has the wrong ``schema`` is a usage
  error (exit 2), not a silent no-op.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.devtools.flow.rules import FlowViolation
from repro.devtools.violations import Violation

#: Schema tag of the baseline file.
BASELINE_SCHEMA = "repro.flowlint-baseline/1"

#: Conventional baseline filename at the repo root.
BASELINE_FILENAME = ".flowlint-baseline.json"

#: Emitted when a baseline entry matches zero current findings.
STALE_ENTRY = "BASE001"

#: Emitted when a baseline entry has no reason.
MISSING_REASON = "BASE002"


class BaselineError(ValueError):
    """The baseline file is unreadable or structurally invalid."""


@dataclass(frozen=True, order=True)
class BaselineEntry:
    """One suppressed ``(rule, function)`` pair with its justification."""

    rule: str
    function: str
    reason: str


@dataclass(frozen=True)
class Baseline:
    """The parsed baseline file."""

    path: str
    entries: tuple[BaselineEntry, ...]

    def keys(self) -> frozenset[tuple[str, str]]:
        """The suppressed ``(rule, function)`` pairs."""
        return frozenset((e.rule, e.function) for e in self.entries)


EMPTY_BASELINE = Baseline(path="", entries=())


def load_baseline(path: Path) -> Baseline:
    """Parse a baseline file; raise :class:`BaselineError` when invalid."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"{path}: unreadable baseline: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"{path}: expected schema {BASELINE_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
            if isinstance(payload, dict)
            else f"{path}: baseline must be a JSON object"
        )
    raw_entries = payload.get("entries", [])
    if not isinstance(raw_entries, list):
        raise BaselineError(f"{path}: `entries` must be a list")
    entries: list[BaselineEntry] = []
    for raw in raw_entries:
        if not isinstance(raw, dict):
            raise BaselineError(f"{path}: every entry must be an object")
        rule = raw.get("rule")
        function = raw.get("function")
        if not isinstance(rule, str) or not isinstance(function, str):
            raise BaselineError(f"{path}: entries need string `rule` and `function`")
        reason = raw.get("reason", "")
        entries.append(
            BaselineEntry(
                rule=rule,
                function=function,
                reason=reason if isinstance(reason, str) else "",
            )
        )
    return Baseline(path=str(path), entries=tuple(sorted(entries)))


def apply_baseline(
    findings: list[FlowViolation],
    baseline: Baseline,
    known_rules: frozenset[str] | None = None,
) -> tuple[list[FlowViolation], list[FlowViolation], list[Violation]]:
    """Split findings into (unbaselined, suppressed) and audit the baseline.

    The third element holds the baseline's own violations: stale entries
    (``BASE001``) and entries without a reason (``BASE002``).  When
    ``known_rules`` is given (the current catalogue's rule ids plus the
    per-file families), an entry naming any other rule fails ``BASE001``
    immediately — a catalogue bump removed or renamed the rule, and a
    suppression that can never match again only hides baseline rot.
    """
    keys = baseline.keys()
    unbaselined: list[FlowViolation] = []
    suppressed: list[FlowViolation] = []
    matched: set[tuple[str, str]] = set()
    for finding in findings:
        key = (finding.rule, finding.function)
        if key in keys:
            suppressed.append(finding)
            matched.add(key)
        else:
            unbaselined.append(finding)

    audit: list[Violation] = []
    for entry in baseline.entries:
        if known_rules is not None and entry.rule not in known_rules:
            audit.append(
                Violation(
                    path=baseline.path or BASELINE_FILENAME,
                    line=1,
                    col=1,
                    rule=STALE_ENTRY,
                    message=(
                        f"baseline entry ({entry.rule}, {entry.function}) names "
                        f"a rule the current catalogue does not define; "
                        f"{entry.rule!r} was removed or renamed in a catalogue "
                        "bump — delete the entry or re-key it to the successor "
                        "rule"
                    ),
                )
            )
        elif (entry.rule, entry.function) not in matched:
            audit.append(
                Violation(
                    path=baseline.path or BASELINE_FILENAME,
                    line=1,
                    col=1,
                    rule=STALE_ENTRY,
                    message=(
                        f"stale baseline entry ({entry.rule}, {entry.function}) "
                        "matches no current finding; delete it"
                    ),
                )
            )
        if not entry.reason.strip():
            audit.append(
                Violation(
                    path=baseline.path or BASELINE_FILENAME,
                    line=1,
                    col=1,
                    rule=MISSING_REASON,
                    message=(
                        f"baseline entry ({entry.rule}, {entry.function}) has "
                        "no reason; every suppression must be justified"
                    ),
                )
            )
    return unbaselined, suppressed, sorted(audit)


def render_baseline(entries: list[BaselineEntry]) -> str:
    """Serialize entries to the canonical baseline file text."""
    payload = {
        "schema": BASELINE_SCHEMA,
        "entries": [
            {"rule": e.rule, "function": e.function, "reason": e.reason}
            for e in sorted(entries)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"
