"""Reachability over the call graph.

Three root sets matter to the rule families:

* **step roots** — ``Engine.step`` plus every actor ``on_step`` method:
  everything reachable from them executes once per simulated step and is
  the hot path the HOT rules police (and the vectorization work-list the
  report ranks).
* **worker roots** — ``run_shard_payload``: everything reachable runs
  inside a ``ProcessPoolExecutor`` worker, where module-global mutation
  is silently per-process (PAR001/PAR002).
* **merge roots** — the sweep merge (``SweepExecutor._merge`` and the
  result-combination helpers): unordered iteration here reorders the
  merged output across runs (PAR003).

Reachability is a plain BFS over the resolved edges; the duck-typed
fallback in the call graph is what lets ``actor.on_step(...)`` fan out to
every registered actor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.devtools.flow.callgraph import CallGraph

#: Qualified names whose presence makes a function a step root.
#: ``GraphRouter.ingress`` is wired as the generator's sink callable, an
#: indirection the call graph cannot resolve, so it is rooted explicitly
#: (its dispatch/join helpers then fall under the hot-path rules).
STEP_ROOT_QUALNAMES = (
    "repro.sim.engine.Engine.step",
    "repro.platform.graph.GraphRouter.ingress",
)

#: Method names that mark actor step entry points (duck-typed protocol).
STEP_ROOT_METHOD_NAMES = ("on_step",)

#: Worker-side entry point of the process-pool executor.
WORKER_ROOT_QUALNAMES = ("repro.parallel.worker.run_shard_payload",)

#: Functions that combine per-shard results into the merged sweep output.
MERGE_ROOT_QUALNAMES = ("repro.parallel.executor.SweepExecutor._merge",)

#: Every top-level function in these modules also merges shard results.
MERGE_ROOT_MODULES = ("repro.parallel.result",)


@dataclass(frozen=True)
class Roots:
    """The three root sets, as sorted tuples of function qualnames."""

    step: tuple[str, ...]
    worker: tuple[str, ...]
    merge: tuple[str, ...]


def discover_roots(graph: CallGraph) -> Roots:
    """Find the root sets that actually exist in this graph."""
    step: set[str] = set()
    for qualname in STEP_ROOT_QUALNAMES:
        if qualname in graph.functions:
            step.add(qualname)
    for method in STEP_ROOT_METHOD_NAMES:
        step.update(graph.functions_named(method))

    worker = {q for q in WORKER_ROOT_QUALNAMES if q in graph.functions}

    merge: set[str] = set()
    for qualname in MERGE_ROOT_QUALNAMES:
        if qualname in graph.functions:
            merge.add(qualname)
    for module in MERGE_ROOT_MODULES:
        info = graph.modules.get(module)
        if info is None:
            continue
        for fn in info.functions.values():
            if fn.cls is None:
                merge.add(fn.qualname)

    return Roots(
        step=tuple(sorted(step)),
        worker=tuple(sorted(worker)),
        merge=tuple(sorted(merge)),
    )


def reachable_from(graph: CallGraph, roots: tuple[str, ...]) -> frozenset[str]:
    """Qualnames of every function reachable from ``roots`` (inclusive)."""
    seen: set[str] = set()
    queue: deque[str] = deque(q for q in roots if q in graph.functions)
    seen.update(queue)
    while queue:
        current = queue.popleft()
        for callee in graph.callees(current):
            if callee not in seen:
                seen.add(callee)
                queue.append(callee)
    return frozenset(seen)
