"""FlowLint: interprocedural call-graph & effect analysis over ``src/repro``.

Where :mod:`repro.devtools.rules` checks one statement at a time, this
subpackage reasons about the *whole program*:

* :mod:`~repro.devtools.flow.callgraph` parses every module under
  ``src/repro`` into a module-resolved call graph — ``self`` dispatch,
  attribute-type inference from ``__init__``/dataclass fields, import
  aliasing, and a class-hierarchy fallback that resolves duck-typed
  protocol calls (``actor.on_step(...)`` reaches every actor).
* :mod:`~repro.devtools.flow.reachability` computes which functions can
  execute inside :meth:`Engine.step` (the hot path), inside
  :func:`run_shard_payload` (the process-pool worker), and inside the
  sweep merge.
* :mod:`~repro.devtools.flow.effects` summarises each function's effects:
  allocations (literals, comprehensions, closures, string formatting),
  O(n) list membership, repeated deep attribute chains, global /
  ``os.environ`` writes, and unordered set iteration.
* :mod:`~repro.devtools.flow.rules` turns those summaries into the
  HOT / PAR / interprocedural-UNIT rule families, and
  :mod:`~repro.devtools.flow.baseline` applies the reasoned-suppression
  baseline (``.flowlint-baseline.json``).
* :mod:`~repro.devtools.flow.report` encodes the canonical
  ``repro.flow/1`` JSON report, including the ranked hot-path allocation
  inventory that is the work-list for the vectorization effort
  (ROADMAP item 1).

Entry points: ``hyscale-repro analyze``, ``hyscale-repro lint --flow``,
``python -m repro.devtools.flow``, and ``make analyze``.
"""

from __future__ import annotations

from repro.devtools.flow.analyze import FlowAnalysis, analyze_paths, default_baseline, main
from repro.devtools.flow.baseline import Baseline, BaselineEntry, load_baseline
from repro.devtools.flow.callgraph import CallGraph, FunctionInfo, build_call_graph
from repro.devtools.flow.effects import AllocationSite, EffectSummary, effects_of
from repro.devtools.flow.reachability import Roots, discover_roots, reachable_from
from repro.devtools.flow.report import FLOW_SCHEMA, FlowReport, render_flow_json

__all__ = [
    "FLOW_SCHEMA",
    "AllocationSite",
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "EffectSummary",
    "FlowAnalysis",
    "FlowReport",
    "FunctionInfo",
    "Roots",
    "analyze_paths",
    "build_call_graph",
    "default_baseline",
    "discover_roots",
    "effects_of",
    "load_baseline",
    "main",
    "reachable_from",
    "render_flow_json",
]
