"""FlowLint: interprocedural call-graph & effect analysis over ``src/repro``.

Where :mod:`repro.devtools.rules` checks one statement at a time, this
subpackage reasons about the *whole program*:

* :mod:`~repro.devtools.flow.callgraph` parses every module under
  ``src/repro`` into a module-resolved call graph — ``self`` dispatch,
  attribute-type inference from ``__init__``/dataclass fields, import
  aliasing, and a class-hierarchy fallback that resolves duck-typed
  protocol calls (``actor.on_step(...)`` reaches every actor).
* :mod:`~repro.devtools.flow.reachability` computes which functions can
  execute inside :meth:`Engine.step` (the hot path), inside
  :func:`run_shard_payload` (the process-pool worker), and inside the
  sweep merge.
* :mod:`~repro.devtools.flow.effects` summarises each function's effects:
  allocations (literals, comprehensions, closures, string formatting),
  O(n) list membership, repeated deep attribute chains, global /
  ``os.environ`` writes, and unordered set iteration.
* :mod:`~repro.devtools.flow.taint` (DetFlow) propagates determinism
  taint from catalogued nondeterminism sources (wall clock, ambient RNG,
  uuid, object identity, environment reads, filesystem enumeration,
  unordered iteration, order-dependent float accumulation) along the
  call graph into the canonical byte-stable sinks, killing it at
  catalogued sanitizers (``sorted``, canonical JSON, ``RngStreams``
  derivation), and emits ranked source→sink witness chains.
* :mod:`~repro.devtools.flow.contracts` statically checks every
  implementation registered through ``register_policy`` /
  ``register_sampling_policy`` / ``register_backend`` against its
  protocol (CON001–003), and every ``register_workload`` /
  ``register_app`` / ``register_routing`` call site against the
  call-site contract (CON004).
* :mod:`~repro.devtools.flow.rules` turns those analyses into the
  HOT / PAR / DET1xx / CON rule families plus interprocedural UNIT002,
  and :mod:`~repro.devtools.flow.baseline` applies the
  reasoned-suppression baseline (``.flowlint-baseline.json``).
* :mod:`~repro.devtools.flow.report` encodes the canonical
  ``repro.flow/2`` JSON report: the ranked hot-path allocation inventory
  (the work-list for the vectorization effort, ROADMAP item 1) and the
  ranked tainted-path inventory with full witness chains.

Entry points: ``hyscale-repro analyze``, ``hyscale-repro lint --flow``,
``python -m repro.devtools.flow``, and ``make analyze``.
"""

from __future__ import annotations

from repro.devtools.flow.analyze import (
    FlowAnalysis,
    analyze_paths,
    analyze_sources,
    default_baseline,
    known_rule_ids,
    main,
)
from repro.devtools.flow.baseline import Baseline, BaselineEntry, load_baseline
from repro.devtools.flow.callgraph import CallGraph, FunctionInfo, build_call_graph
from repro.devtools.flow.contracts import (
    CALLSITE_REGISTRIES,
    PROTOCOLS,
    CallSiteSpec,
    ContractFinding,
    ProtocolSpec,
    check_contracts,
)
from repro.devtools.flow.effects import AllocationSite, EffectSummary, effects_of
from repro.devtools.flow.reachability import Roots, discover_roots, reachable_from
from repro.devtools.flow.report import FLOW_SCHEMA, FlowReport, render_flow_json
from repro.devtools.flow.taint import (
    SINKS,
    TaintAnalysis,
    TaintedPath,
    analyze_taint,
    taint_facts_of,
)

__all__ = [
    "CALLSITE_REGISTRIES",
    "FLOW_SCHEMA",
    "PROTOCOLS",
    "SINKS",
    "AllocationSite",
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "CallSiteSpec",
    "ContractFinding",
    "EffectSummary",
    "FlowAnalysis",
    "FlowReport",
    "FunctionInfo",
    "ProtocolSpec",
    "Roots",
    "TaintAnalysis",
    "TaintedPath",
    "analyze_paths",
    "analyze_sources",
    "analyze_taint",
    "build_call_graph",
    "check_contracts",
    "default_baseline",
    "discover_roots",
    "effects_of",
    "known_rule_ids",
    "load_baseline",
    "main",
    "reachable_from",
    "render_flow_json",
    "taint_facts_of",
]
