"""The FlowLint rule families: HOT, PAR, and interprocedural UNIT002.

Each rule consumes the call graph, the reachability sets, and the
per-function effect summaries, and emits :class:`FlowViolation` records
(a :class:`~repro.devtools.violations.Violation` plus the qualname of the
offending function — the key the baseline suppresses on).

The HOT rules deliberately flag only the *mechanically fixable* subset of
per-step costs — hoistable constant literals, per-step callable
construction, O(n) list membership, repeated deep attribute resolution,
and hot-path string formatting.  The complete allocation census (every
comprehension and literal, fixable or inherent) goes into the ranked
``repro.flow/1`` inventory instead, so "zero unbaselined violations" is
an achievable bar while the vectorization work-list stays exhaustive.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable

from repro.devtools.flow.callgraph import CallGraph, FunctionInfo
from repro.devtools.flow.contracts import ContractFinding
from repro.devtools.flow.effects import (
    CLOSURE_KINDS,
    CONSTANT_HOISTABLE,
    FORMAT_KINDS,
    EffectSummary,
)
from repro.devtools.flow.reachability import Roots
from repro.devtools.flow.taint import TaintAnalysis, ambient_rng_sites
from repro.devtools.rules import _terminal_name, _unit_class_of_name
from repro.devtools.violations import Violation

#: Attribute chains must be at least this deep to count for HOT003.
HOT003_MIN_HOPS = 2
#: ...and repeat at least this often inside one function.
HOT003_MIN_COUNT = 4


@dataclass(frozen=True, order=True)
class FlowViolation:
    """One flow finding, attributable to a specific function."""

    path: str
    line: int
    col: int
    rule: str
    function: str
    message: str

    def to_violation(self) -> Violation:
        """The plain per-file violation record (for rendering)."""
        return Violation(
            path=self.path,
            line=self.line,
            col=self.col,
            rule=self.rule,
            message=f"{self.message} [{self.function}]",
        )


@dataclass
class FlowContext:
    """Everything a flow rule needs to run."""

    graph: CallGraph
    roots: Roots
    step_reachable: frozenset[str]
    worker_reachable: frozenset[str]
    merge_reachable: frozenset[str]
    effects: dict[str, EffectSummary] = field(default_factory=dict)
    #: DetFlow inputs (None/empty when only the HOT/PAR families run).
    taint: TaintAnalysis | None = None
    contracts: tuple[ContractFinding, ...] = ()

    def function(self, qualname: str) -> FunctionInfo:
        """The definition record for a qualname (must exist)."""
        return self.graph.functions[qualname]


@dataclass(frozen=True)
class FlowRule:
    """One interprocedural rule."""

    id: str
    summary: str
    check: Callable[[FlowContext], list[FlowViolation]]


def _fv(
    fn: FunctionInfo, rule: str, line: int, col: int, message: str
) -> FlowViolation:
    return FlowViolation(
        path=fn.path, line=line, col=col, rule=rule, function=fn.qualname, message=message
    )


# ----------------------------------------------------------------------
# HOT001 — fixable per-step allocation (hoistable literal / closure)
# ----------------------------------------------------------------------
def _hot001_check(ctx: FlowContext) -> list[FlowViolation]:
    """HOT001: a constant-only container literal or a capture-free
    lambda/nested-``def`` inside step-reachable code allocates a fresh
    object every simulated step for a value that never changes; hoist it
    to module or ``__init__`` scope.  (Closures that capture locals are
    not flagged — they cannot be hoisted without restructuring — but they
    still appear in the hot-path inventory.)"""
    out: list[FlowViolation] = []
    for qualname in sorted(ctx.step_reachable):
        summary = ctx.effects.get(qualname)
        if summary is None:
            continue
        fn = ctx.function(qualname)
        for site in summary.allocations:
            if site.error_path:
                continue
            if site.kind in CONSTANT_HOISTABLE and site.constant:
                out.append(
                    _fv(
                        fn,
                        "HOT001",
                        site.line,
                        site.col,
                        f"constant {site.kind} rebuilt in step-reachable code; "
                        "hoist to module scope (allocates every Engine.step)",
                    )
                )
            elif site.kind in CLOSURE_KINDS and not site.captures:
                out.append(
                    _fv(
                        fn,
                        "HOT001",
                        site.line,
                        site.col,
                        f"{site.kind} constructed in step-reachable code; a fresh "
                        "function object is allocated every Engine.step — hoist "
                        "or bind once in __init__",
                    )
                )
    return out


# ----------------------------------------------------------------------
# HOT002 — O(n) list membership on the step path
# ----------------------------------------------------------------------
def _hot002_check(ctx: FlowContext) -> list[FlowViolation]:
    """HOT002: ``x in [a, b, ...]`` / ``x in list(...)`` scans linearly on
    every evaluation; in step-reachable code use a tuple of constants
    (cheap, no alloc) or a precomputed ``frozenset`` for O(1) tests."""
    out: list[FlowViolation] = []
    for qualname in sorted(ctx.step_reachable):
        summary = ctx.effects.get(qualname)
        if summary is None:
            continue
        fn = ctx.function(qualname)
        for site in summary.memberships:
            out.append(
                _fv(
                    fn,
                    "HOT002",
                    site.line,
                    site.col,
                    f"O(n) membership test against {site.detail} in "
                    "step-reachable code; use a frozenset or tuple constant",
                )
            )
    return out


# ----------------------------------------------------------------------
# HOT003 — repeated deep attribute chains on the step path
# ----------------------------------------------------------------------
def _hot003_check(ctx: FlowContext) -> list[FlowViolation]:
    """HOT003: resolving the same ``a.b.c`` chain many times in one
    step-reachable function pays repeated dict lookups; read it into a
    local once."""
    out: list[FlowViolation] = []
    for qualname in sorted(ctx.step_reachable):
        summary = ctx.effects.get(qualname)
        if summary is None:
            continue
        fn = ctx.function(qualname)
        for chain in sorted(summary.attr_chains):
            count, line, hops = summary.attr_chains[chain]
            if hops >= HOT003_MIN_HOPS and count >= HOT003_MIN_COUNT:
                out.append(
                    _fv(
                        fn,
                        "HOT003",
                        line,
                        1,
                        f"attribute chain `{chain}` resolved {count}x in a "
                        "step-reachable function; bind it to a local",
                    )
                )
    return out


# ----------------------------------------------------------------------
# HOT004 — string formatting on the step path
# ----------------------------------------------------------------------
def _returns_str(fn: FunctionInfo) -> bool:
    """The function's annotated job is building a string."""
    returns = fn.node.returns
    return isinstance(returns, ast.Name) and returns.id == "str"


def _is_exception_method(ctx: FlowContext, qualname: str) -> bool:
    """The function is a method of an Error/Exception class."""
    cls = ctx.graph.class_of(qualname)
    if cls is None:
        return False
    return any(b.rsplit(".", 1)[-1].endswith(("Error", "Exception")) for b in cls.bases)


def _hot004_check(ctx: FlowContext) -> list[FlowViolation]:
    """HOT004: f-strings / ``str.format`` / ``%``-formatting in
    step-reachable code build a fresh string every step — the usual
    offenders are lookup keys and labels; precompute or cache them.

    Exempt by design: error paths, exception constructors, functions whose
    annotated return type is ``str`` (their output *is* the string), and
    keyword-argument payloads (``detail=f"..."`` on an event record only
    formats when the event fires, and the text is the data)."""
    out: list[FlowViolation] = []
    for qualname in sorted(ctx.step_reachable):
        summary = ctx.effects.get(qualname)
        if summary is None:
            continue
        fn = ctx.function(qualname)
        if _returns_str(fn) or _is_exception_method(ctx, qualname):
            continue
        for site in summary.allocations:
            if site.kind in FORMAT_KINDS and not site.error_path and not site.payload:
                out.append(
                    _fv(
                        fn,
                        "HOT004",
                        site.line,
                        site.col,
                        f"string formatting ({site.kind}) in step-reachable "
                        "code; precompute or cache the formatted value",
                    )
                )
    return out


# ----------------------------------------------------------------------
# PAR001 — module-level mutable state reachable from workers
# ----------------------------------------------------------------------
def _par001_check(ctx: FlowContext) -> list[FlowViolation]:
    """PAR001: a module-level mutable container referenced by
    worker-reachable code is silently per-process under
    ``ProcessPoolExecutor`` — writes made in a worker never reach the
    parent, and fork/spawn start methods disagree about its contents."""
    out: list[FlowViolation] = []
    seen: set[tuple[str, str]] = set()
    for qualname in sorted(ctx.worker_reachable):
        fn = ctx.graph.functions.get(qualname)
        if fn is None:
            continue
        module = ctx.graph.modules.get(fn.module)
        if module is None or not module.module_mutables:
            continue
        mutable_lines = dict(module.module_mutables)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Name) and node.id in mutable_lines:
                key = (node.id, fn.qualname)
                if key in seen:
                    continue
                seen.add(key)
                out.append(
                    _fv(
                        fn,
                        "PAR001",
                        mutable_lines[node.id],
                        1,
                        f"module-level mutable `{node.id}` referenced by "
                        f"worker-reachable `{fn.name}`; per-process state "
                        "diverges across pool workers — pass it through the "
                        "shard payload instead",
                    )
                )
    return out


# ----------------------------------------------------------------------
# PAR002 — global / os.environ writes in worker-reachable code
# ----------------------------------------------------------------------
def _par002_check(ctx: FlowContext) -> list[FlowViolation]:
    """PAR002: ``global`` rebinding or ``os.environ`` mutation inside
    worker-reachable code mutates only that worker's process; the parent
    and sibling shards never observe it, so results depend on pool
    scheduling."""
    out: list[FlowViolation] = []
    for qualname in sorted(ctx.worker_reachable):
        summary = ctx.effects.get(qualname)
        if summary is None:
            continue
        fn = ctx.function(qualname)
        for write in summary.global_writes:
            out.append(
                _fv(
                    fn,
                    "PAR002",
                    write.line,
                    write.col,
                    f"write to process-global `{write.target}` in "
                    "worker-reachable code; workers cannot share it — return "
                    "the value through the shard result instead",
                )
            )
    return out


# ----------------------------------------------------------------------
# PAR003 — unordered set iteration feeding merged sweep output
# ----------------------------------------------------------------------
def _par003_check(ctx: FlowContext) -> list[FlowViolation]:
    """PAR003: iterating a ``set`` while combining shard results makes the
    merged sweep output order depend on hash seeding and insertion
    history; iterate ``sorted(...)`` so merged artifacts are
    byte-identical across runs."""
    out: list[FlowViolation] = []
    for qualname in sorted(ctx.merge_reachable):
        summary = ctx.effects.get(qualname)
        if summary is None:
            continue
        fn = ctx.function(qualname)
        for site in summary.set_iterations:
            out.append(
                _fv(
                    fn,
                    "PAR003",
                    site.line,
                    site.col,
                    f"unordered set iteration ({site.context}) feeds merged "
                    "sweep output; iterate sorted(...) for stable merges",
                )
            )
    return out


# ----------------------------------------------------------------------
# UNIT002 (interprocedural) — unit suffixes across call boundaries
# ----------------------------------------------------------------------
def _callee_for_call(
    ctx: FlowContext, caller: FunctionInfo, call: ast.Call
) -> FunctionInfo | None:
    """The unique resolved callee whose bare name matches this call site."""
    name = _terminal_name(call.func)
    if name is None:
        return None
    matches = [
        q for q in ctx.graph.callees(caller.qualname) if q.rsplit(".", 1)[-1] == name
    ]
    if len(matches) != 1:
        return None
    return ctx.graph.functions.get(matches[0])


def _positional_params(callee: FunctionInfo) -> tuple[str, ...]:
    params = callee.params
    if params and params[0] in ("self", "cls"):
        return params[1:]
    return params


def _unit002_check(ctx: FlowContext) -> list[FlowViolation]:
    """UNIT002 (interprocedural): a value whose name carries one unit
    suffix crossing into a parameter (or out of a return) that carries a
    different suffix is a unit bug the single-statement rule cannot see;
    convert explicitly via ``repro.units``."""
    out: list[FlowViolation] = []
    for qualname in sorted(ctx.graph.functions):
        fn = ctx.graph.functions[qualname]
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                callee = _callee_for_call(ctx, fn, node)
                if callee is None:
                    continue
                callee_summary = ctx.effects.get(callee.qualname)
                if callee_summary is None or not callee_summary.param_units:
                    continue
                params = _positional_params(callee)
                for index, arg in enumerate(node.args):
                    if isinstance(arg, ast.Starred) or index >= len(params):
                        break
                    expected = callee_summary.param_units.get(params[index])
                    if expected is None:
                        continue
                    arg_name = _terminal_name(arg)
                    actual = None if arg_name is None else _unit_class_of_name(arg_name)
                    if actual is not None and actual != expected:
                        out.append(
                            _fv(
                                fn,
                                "UNIT002",
                                node.lineno,
                                node.col_offset + 1,
                                f"`{arg_name}` ({actual}) passed to parameter "
                                f"`{params[index]}` ({expected}) of "
                                f"`{callee.name}`; convert via repro.units",
                            )
                        )
                for keyword in node.keywords:
                    if keyword.arg is None:
                        continue
                    expected = callee_summary.param_units.get(keyword.arg)
                    if expected is None:
                        continue
                    arg_name = _terminal_name(keyword.value)
                    actual = None if arg_name is None else _unit_class_of_name(arg_name)
                    if actual is not None and actual != expected:
                        out.append(
                            _fv(
                                fn,
                                "UNIT002",
                                node.lineno,
                                node.col_offset + 1,
                                f"`{arg_name}` ({actual}) passed to parameter "
                                f"`{keyword.arg}` ({expected}) of "
                                f"`{callee.name}`; convert via repro.units",
                            )
                        )
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
                    continue
                target_unit = _unit_class_of_name(node.targets[0].id)
                if target_unit is None:
                    continue
                callee = _callee_for_call(ctx, fn, node.value)
                if callee is None:
                    continue
                callee_summary = ctx.effects.get(callee.qualname)
                return_unit = None if callee_summary is None else callee_summary.return_unit
                if return_unit is not None and return_unit != target_unit:
                    out.append(
                        _fv(
                            fn,
                            "UNIT002",
                            node.lineno,
                            node.col_offset + 1,
                            f"`{callee.name}` returns {return_unit} but is "
                            f"assigned to `{node.targets[0].id}` "
                            f"({target_unit}); convert via repro.units",
                        )
                    )
    return out


# ----------------------------------------------------------------------
# DET101/103/104 — tainted paths into canonical sinks (DetFlow)
# ----------------------------------------------------------------------
def _chain_text(chain: tuple[str, ...]) -> str:
    return " -> ".join(part.rsplit(".", 2)[-1] for part in chain)


def _tainted_path_check(ctx: FlowContext, rule: str) -> list[FlowViolation]:
    if ctx.taint is None:
        return []
    out: list[FlowViolation] = []
    seen: set[tuple[str, str]] = set()
    for path in ctx.taint.paths:
        if path.rule != rule:
            continue
        key = (rule, path.source_function)
        if key in seen:
            continue  # one violation per source function; extra sinks ride
        seen.add(key)
        out.append(
            FlowViolation(
                path=path.source_path,
                line=path.source_line,
                col=path.source_col,
                rule=rule,
                function=path.source_function,
                message=(
                    f"{path.kind} source ({path.source_detail}) reaches "
                    f"canonical sink `{path.sink}` [{path.sink_family}] via "
                    f"{_chain_text(path.chain)}"
                ),
            )
        )
    return out


def _det101_check(ctx: FlowContext) -> list[FlowViolation]:
    """DET101: a nondeterministic *value* (wall clock, ambient RNG, uuid,
    object identity, environment read, filesystem enumeration) flows into
    a canonical codec or key derivation; the artifact's bytes then depend
    on host state rather than the seed."""
    return _tainted_path_check(ctx, "DET101")


def _det102_check(ctx: FlowContext) -> list[FlowViolation]:
    """DET102: ambient RNG inside step- or worker-reachable code — even
    when no catalogued sink is reachable — because anything the engine or
    a pool worker executes must draw from the injected
    :class:`~repro.sim.rng.RngStreams` to keep same-seed runs identical."""
    if ctx.taint is None:
        return []
    out: list[FlowViolation] = []
    reachable = ctx.step_reachable | ctx.worker_reachable
    for qualname, source in ambient_rng_sites(ctx.taint, reachable):
        fn = ctx.graph.functions.get(qualname)
        if fn is None:
            continue
        where = "step" if qualname in ctx.step_reachable else "worker"
        out.append(
            _fv(
                fn,
                "DET102",
                source.line,
                source.col,
                f"ambient RNG ({source.detail}) in {where}-reachable code; "
                "draw from the injected RngStreams instead",
            )
        )
    return out


def _det103_check(ctx: FlowContext) -> list[FlowViolation]:
    """DET103: unordered ``set`` iteration feeds a canonical sink with no
    sort barrier anywhere on the path — the interprocedural upgrade of
    PAR003, applied to every artifact codec rather than just merges."""
    return _tainted_path_check(ctx, "DET103")


def _det104_check(ctx: FlowContext) -> list[FlowViolation]:
    """DET104: float accumulation whose order depends on an unordered
    collection, on a sink path; float addition does not commute in
    rounding, so the artifact bytes depend on hash seeding."""
    return _tainted_path_check(ctx, "DET104")


# ----------------------------------------------------------------------
# CON001–003 — registry contracts (DetFlow)
# ----------------------------------------------------------------------
def _contract_check(ctx: FlowContext, rule: str) -> list[FlowViolation]:
    return [
        FlowViolation(
            path=f.path,
            line=f.line,
            col=f.col,
            rule=f.rule,
            function=f.cls,
            message=f.message,
        )
        for f in ctx.contracts
        if f.rule == rule
    ]


def _con001_check(ctx: FlowContext) -> list[FlowViolation]:
    """CON001: a registered implementation does not conform to its
    registry's protocol (missing/abstract required method, not a subclass,
    or an override narrower than the protocol signature)."""
    return _contract_check(ctx, "CON001")


def _con002_check(ctx: FlowContext) -> list[FlowViolation]:
    """CON002: module-level mutable state in a module defining a
    registered implementation; such state is per-process under the sweep
    pool and leaks between runs in one process."""
    return _contract_check(ctx, "CON002")


def _con003_check(ctx: FlowContext) -> list[FlowViolation]:
    """CON003: a registered implementation draws from the ambient RNG and
    its constructor accepts no injectable generator, so its decisions
    cannot be reproduced from the run seed."""
    return _contract_check(ctx, "CON003")


def _con004_check(ctx: FlowContext) -> list[FlowViolation]:
    """CON004: a workload/app/routing registration call site is malformed
    (empty or non-string literal name, literal where a factory or
    ``RoutingPolicy`` member is required, or a duplicate literal name
    without ``replace=True`` — an import-time crash caught statically)."""
    return _contract_check(ctx, "CON004")


FLOW_RULES: tuple[FlowRule, ...] = (
    FlowRule("HOT001", "fixable per-step allocation (hoistable literal / closure)", _hot001_check),
    FlowRule("HOT002", "O(n) list membership on the step path", _hot002_check),
    FlowRule("HOT003", "repeated deep attribute chains on the step path", _hot003_check),
    FlowRule("HOT004", "string formatting on the step path", _hot004_check),
    FlowRule("PAR001", "module-level mutable state reachable from workers", _par001_check),
    FlowRule("PAR002", "global / os.environ writes in worker-reachable code", _par002_check),
    FlowRule("PAR003", "unordered set iteration feeding merged sweep output", _par003_check),
    FlowRule("UNIT002", "unit suffixes tracked across call boundaries", _unit002_check),
    FlowRule("DET101", "tainted value reaches a canonical sink", _det101_check),
    FlowRule("DET102", "ambient RNG reachable from Engine.step/worker roots", _det102_check),
    FlowRule("DET103", "unordered iteration feeds a sink without a sort barrier", _det103_check),
    FlowRule("DET104", "float accumulation order depends on an unordered collection on a sink path", _det104_check),
    FlowRule("CON001", "registered implementation violates its registry protocol", _con001_check),
    FlowRule("CON002", "module-level mutable state in a registered implementation's module", _con002_check),
    FlowRule("CON003", "registered implementation draws ambient RNG without injectable generator", _con003_check),
    FlowRule("CON004", "malformed workload/app/routing registration call site", _con004_check),
)


def flow_rule_catalog() -> dict[str, str]:
    """Rule id -> summary for the flow catalogue."""
    return {rule.id: rule.summary for rule in FLOW_RULES}


def run_flow_rules(
    ctx: FlowContext, rules: tuple[FlowRule, ...] = FLOW_RULES
) -> list[FlowViolation]:
    """Run the rule families and return sorted, deduplicated findings."""
    out: set[FlowViolation] = set()
    for rule in rules:
        out.update(rule.check(ctx))
    return sorted(out)
