"""Per-function effect & dataflow summaries.

For every function in the call graph this pass records, purely from the
AST:

* **allocations** — container literals and comprehensions, generator
  expressions, lambda / nested-``def`` construction (a fresh function
  object per call), and string formatting (f-strings, ``str.format``,
  ``%``-formatting on a string literal), each tagged with its loop depth
  and whether it sits on an error path (``raise`` arguments, ``except``
  bodies, ``warnings.warn`` calls — cold by construction);
* **list memberships** — ``x in [a, b]`` / ``x in list(...)``, the O(n)
  scan a tuple or frozenset would do in O(1);
* **attribute chains** — pure ``a.b.c`` read chains and how often each
  repeats, the "resolve the same deep attribute every iteration" pattern;
* **global writes** — ``global`` rebinding and ``os.environ`` mutation;
* **set iterations** — iteration over statically-certain ``set`` values
  (the unordered-order hazard, interprocedurally scoped by PAR003);
* **unit signature** — the unit class (via :mod:`repro.devtools.rules`
  suffix tables) of each positional parameter and of the return value,
  which powers the interprocedural UNIT002 upgrade.

These summaries are pure data: the rule families in
:mod:`repro.devtools.flow.rules` combine them with reachability to decide
what is actually a violation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.devtools.flow.callgraph import FunctionInfo
from repro.devtools.rules import (
    _dotted_name,
    _is_set_expr,
    _local_set_names,
    _terminal_name,
    _unit_class_of_name,
)

#: Allocation kinds considered *hoistable* when every element is constant.
CONSTANT_HOISTABLE = frozenset({"list-literal", "dict-literal", "set-literal"})

#: Allocation kinds that always construct a fresh callable.
CLOSURE_KINDS = frozenset({"lambda", "closure"})

#: Allocation kinds that build strings.
FORMAT_KINDS = frozenset({"fstring", "str-format", "percent-format"})


@dataclass(frozen=True, order=True)
class AllocationSite:
    """One allocation expression inside one function."""

    line: int
    col: int
    kind: str
    #: How many loops/comprehensions enclose the site *within* the function.
    loop_depth: int
    #: Every element/key/value is a constant (the site is hoistable).
    constant: bool
    #: The site only executes while raising/handling an error.
    error_path: bool
    #: The site is the value of a keyword argument in a call — the
    #: event-payload convention (``detail=f"..."``); data, not a key.
    payload: bool = False
    #: A lambda/closure that captures enclosing locals — it cannot be
    #: hoisted to module scope without restructuring.
    captures: bool = False


@dataclass(frozen=True, order=True)
class MembershipSite:
    """One ``x in <list>`` membership test."""

    line: int
    col: int
    loop_depth: int
    detail: str


@dataclass(frozen=True, order=True)
class GlobalWrite:
    """One write to process-global state."""

    line: int
    col: int
    target: str  # e.g. ``global counter`` name or ``os.environ``


@dataclass(frozen=True, order=True)
class SetIteration:
    """One iteration over a statically-certain set value."""

    line: int
    col: int
    context: str


@dataclass(frozen=True)
class EffectSummary:
    """Everything the effect pass learned about one function."""

    qualname: str
    path: str
    allocations: tuple[AllocationSite, ...] = ()
    memberships: tuple[MembershipSite, ...] = ()
    #: Pure attribute read chain (``a.b.c``) -> (count, first line, depth).
    attr_chains: dict[str, tuple[int, int, int]] = field(default_factory=dict)
    global_writes: tuple[GlobalWrite, ...] = ()
    set_iterations: tuple[SetIteration, ...] = ()
    #: Positional parameter name -> unit class (``None`` entries omitted).
    param_units: dict[str, str] = field(default_factory=dict)
    #: Unit class of the return value when every return agrees, else None.
    return_unit: str | None = None


def _bound_names(fn: ast.AST) -> set[str]:
    """Every name bound inside a function: params plus Store-context names."""
    bound: set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            bound.add(arg.arg)
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None:
                bound.add(vararg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
    return bound


def _captures_locals(node: ast.Lambda | ast.FunctionDef | ast.AsyncFunctionDef, enclosing: set[str]) -> bool:
    """True when a nested callable reads a name bound in its enclosing scope."""
    own = _bound_names(node)
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Name)
            and isinstance(child.ctx, ast.Load)
            and child.id not in own
            and child.id in enclosing
        ):
            return True
    return False


def _keyword_arg_nodes(fn: ast.AST) -> set[int]:
    """ids of AST nodes that sit inside a call's keyword-argument value."""
    inside: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                for child in ast.walk(keyword.value):
                    inside.add(id(child))
    return inside


def _replication_operands(fn: ast.AST) -> set[int]:
    """ids of literals used as ``[x] * n`` operands — not hoistable: the
    product is a fresh list regardless, and the result is often mutated."""
    operands: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
            for side in (node.left, node.right):
                if isinstance(side, (ast.List, ast.Tuple)):
                    operands.add(id(side))
    return operands


def _error_path_nodes(fn: ast.AST) -> set[int]:
    """ids of AST nodes that only execute on error paths."""
    cold: set[int] = set()
    for node in ast.walk(fn):
        roots: list[ast.AST] = []
        if isinstance(node, ast.Raise):
            roots.append(node)
        elif isinstance(node, ast.ExceptHandler):
            roots.append(node)
        elif isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted in ("warnings.warn", "warn"):
                roots.append(node)
        elif isinstance(node, ast.Assert):
            # The message (and test) of an assert only costs on failure in
            # optimized runs; treat the message expression as cold.
            if node.msg is not None:
                roots.append(node.msg)
        for root in roots:
            for child in ast.walk(root):
                cold.add(id(child))
    return cold


_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)
_COMP_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _all_constant(node: ast.expr) -> bool:
    """True when a *non-empty* container literal holds only constants.

    Empty literals are accumulator initialisations, not hoistable values —
    hoisting them would share one mutable object (the SAN001 bug).
    """
    if isinstance(node, ast.List) or isinstance(node, ast.Set):
        return bool(node.elts) and all(isinstance(e, ast.Constant) for e in node.elts)
    if isinstance(node, ast.Dict):
        return bool(node.keys) and all(
            k is not None and isinstance(k, ast.Constant) and isinstance(v, ast.Constant)
            for k, v in zip(node.keys, node.values)
        )
    return False


def _chain_of(node: ast.expr) -> tuple[str, int] | None:
    """(dotted chain, hop count) for a pure Name/Attribute read chain."""
    hops = 0
    current = node
    while isinstance(current, ast.Attribute):
        hops += 1
        current = current.value
    if hops == 0 or not isinstance(current, ast.Name):
        return None
    dotted = _dotted_name(node)
    if dotted is None:
        return None
    return dotted, hops


class _EffectVisitor(ast.NodeVisitor):
    """Single walk that fills an :class:`EffectSummary` worth of facts."""

    def __init__(self, fn: FunctionInfo):
        self.fn = fn
        self.loop_depth = 0
        self.cold = _error_path_nodes(fn.node)
        self.kwarg = _keyword_arg_nodes(fn.node)
        self.enclosing = _bound_names(fn.node)
        self.replication = _replication_operands(fn.node)
        self.set_names = _local_set_names(fn.node)
        self.allocations: list[AllocationSite] = []
        self.memberships: list[MembershipSite] = []
        self.attr_chains: dict[str, tuple[int, int, int]] = {}
        self.global_writes: list[GlobalWrite] = []
        self.set_iterations: list[SetIteration] = []
        self._top = True

    # -- plumbing ------------------------------------------------------
    def _site(
        self, node: ast.AST, kind: str, constant: bool = False, captures: bool = False
    ) -> None:
        self.allocations.append(
            AllocationSite(
                line=getattr(node, "lineno", self.fn.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                kind=kind,
                loop_depth=self.loop_depth,
                constant=constant,
                error_path=id(node) in self.cold,
                payload=id(node) in self.kwarg,
                captures=captures,
            )
        )

    def _in_loop(self, node: ast.AST) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    # -- structure -----------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._flag_set_iter(node.iter, "for-loop")
        self._in_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._flag_set_iter(node.iter, "for-loop")
        self._in_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._in_loop(node)

    def _visit_comp(self, node: ast.AST, kind: str) -> None:
        self._site(node, kind)
        for gen in getattr(node, "generators", []):
            if kind != "setcomp":
                self._flag_set_iter(gen.iter, "comprehension")
        self._in_loop(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, "listcomp")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comp(node, "setcomp")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node, "dictcomp")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comp(node, "genexp")

    # -- allocations ---------------------------------------------------
    def visit_List(self, node: ast.List) -> None:
        if isinstance(node.ctx, ast.Load):
            constant = _all_constant(node) and id(node) not in self.replication
            self._site(node, "list-literal", constant=constant)
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self._site(node, "set-literal", constant=_all_constant(node))
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._site(node, "dict-literal", constant=_all_constant(node))
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._site(node, "lambda", captures=_captures_locals(node, self.enclosing))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._top:
            self._top = False
            self.generic_visit(node)
        else:
            self._site(node, "closure", captures=_captures_locals(node, self.enclosing))
            self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        self._site(node, "fstring")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "format"
            and isinstance(node.func.value, (ast.Constant, ast.Name))
        ):
            self._site(node, "str-format")
        dotted = _dotted_name(node.func)
        if dotted in ("os.putenv", "os.unsetenv"):
            self.global_writes.append(
                GlobalWrite(node.lineno, node.col_offset + 1, dotted)
            )
        if dotted is not None and dotted.startswith("os.environ."):
            member = dotted.rsplit(".", 1)[-1]
            if member in ("update", "setdefault", "pop", "clear", "popitem"):
                self.global_writes.append(
                    GlobalWrite(node.lineno, node.col_offset + 1, "os.environ")
                )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Mod) and isinstance(node.left, ast.Constant) and isinstance(
            node.left.value, str
        ):
            self._site(node, "percent-format")
        self.generic_visit(node)

    # -- memberships ---------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.In, ast.NotIn)):
                continue
            haystack = operands[index + 1]
            detail: str | None = None
            if isinstance(haystack, (ast.List, ast.ListComp)):
                detail = "list literal"
            elif (
                isinstance(haystack, ast.Call)
                and isinstance(haystack.func, ast.Name)
                and haystack.func.id in ("list", "sorted")
            ):
                detail = f"{haystack.func.id}(...)"
            if detail is not None:
                self.memberships.append(
                    MembershipSite(
                        line=node.lineno,
                        col=node.col_offset + 1,
                        loop_depth=self.loop_depth,
                        detail=detail,
                    )
                )
        self.generic_visit(node)

    # -- attribute chains ----------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = _chain_of(node)
        if chain is not None and isinstance(node.ctx, ast.Load):
            dotted, hops = chain
            count, first_line, depth = self.attr_chains.get(dotted, (0, node.lineno, 0))
            self.attr_chains[dotted] = (
                count + 1,
                min(first_line, node.lineno),
                max(depth, hops),
            )
            return  # do not descend: inner chains are part of this one
        self.generic_visit(node)

    # -- global writes -------------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self.global_writes.append(GlobalWrite(node.lineno, node.col_offset + 1, name))
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            dotted = _dotted_name(node.value)
            if dotted in ("os.environ", "environ"):
                self.global_writes.append(
                    GlobalWrite(node.lineno, node.col_offset + 1, "os.environ")
                )
        self.generic_visit(node)

    # -- sets ----------------------------------------------------------
    def _flag_set_iter(self, iterable: ast.expr, context: str) -> None:
        if _is_set_expr(iterable, self.set_names):
            self.set_iterations.append(
                SetIteration(
                    line=getattr(iterable, "lineno", self.fn.lineno),
                    col=getattr(iterable, "col_offset", 0) + 1,
                    context=context,
                )
            )


def _unit_signature(fn: FunctionInfo) -> tuple[dict[str, str], str | None]:
    """(parameter units, return unit) from suffix conventions."""
    param_units: dict[str, str] = {}
    for name in fn.params:
        unit = _unit_class_of_name(name)
        if unit is not None:
            param_units[name] = unit
    return_units: set[str | None] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Return) and node.value is not None:
            name = _terminal_name(node.value)
            return_units.add(None if name is None else _unit_class_of_name(name))
    if len(return_units) == 1:
        (only,) = return_units
        return param_units, only
    return param_units, None


def effects_of(fn: FunctionInfo) -> EffectSummary:
    """Compute the effect summary of one function."""
    visitor = _EffectVisitor(fn)
    visitor.visit(fn.node)
    param_units, return_unit = _unit_signature(fn)
    return EffectSummary(
        qualname=fn.qualname,
        path=fn.path,
        allocations=tuple(sorted(visitor.allocations)),
        memberships=tuple(sorted(visitor.memberships)),
        attr_chains=visitor.attr_chains,
        global_writes=tuple(sorted(visitor.global_writes)),
        set_iterations=tuple(sorted(visitor.set_iterations)),
        param_units=param_units,
        return_unit=return_unit,
    )
