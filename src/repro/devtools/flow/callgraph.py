"""Module-resolved call graph over the ``repro`` package.

The graph is built in two passes:

1. **Collection** — every module is parsed; classes, methods, top-level
   functions, import aliases, dataclass field types, and ``self.attr``
   types (inferred from constructor assignments) are indexed.
2. **Resolution** — every call site is resolved to zero or more known
   functions, preferring precise evidence (imports, local constructor
   assignments, parameter/field annotations, ``self`` dispatch with base
   classes) and falling back to class-hierarchy name matching for
   duck-typed protocol calls: ``actor.on_step(...)`` with an unknown
   receiver reaches *every* class defining ``on_step``, which is exactly
   how the engine's actor protocol and the policy registry dispatch.

The fallback makes the graph a sound over-approximation for the
reachability questions FlowLint asks ("could this run inside a step?");
precise receiver typing keeps it from collapsing into "everything calls
everything".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.devtools.rules import _dotted_name, _import_aliases

#: Method names never resolved through the name-match fallback: they are
#: overwhelmingly stdlib container/IO calls, and fallback edges through
#: them would wire unrelated subsystems together.
_FALLBACK_STOPLIST = frozenset(
    {
        "append",
        "extend",
        "add",
        "pop",
        "popleft",
        "remove",
        "discard",
        "clear",
        "items",
        "keys",
        "values",
        "setdefault",
        "update",
        "sort",
        "join",
        "split",
        "strip",
        "startswith",
        "endswith",
        "format",
        "write",
        "read",
        "close",
        "copy",
        "count",
        "index",
        "insert",
    }
)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the analyzed tree."""

    qualname: str  # e.g. ``repro.sim.engine.Engine.step``
    module: str  # e.g. ``repro.sim.engine``
    cls: str | None  # simple class name, or None for top-level defs
    name: str  # the bare def name
    path: str  # repo-relative posix path of the defining file
    lineno: int
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(repr=False, compare=False)
    params: tuple[str, ...] = ()


@dataclass
class ClassInfo:
    """One class definition: methods, bases, and inferred attribute types."""

    qualname: str
    name: str
    module: str
    path: str = ""  # repo-relative posix path of the defining file
    lineno: int = 0
    bases: tuple[str, ...] = ()  # simple or dotted base names, unresolved
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` name -> class qualname (from ``self.x = Ctor(...)``
    #: in any method, or a class-level ``x: SomeClass`` field annotation).
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module and its local namespace."""

    name: str  # dotted module name
    path: str  # repo-relative posix path
    tree: ast.Module = field(repr=False)
    aliases: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Module-level mutable container assignments: (name, lineno).
    module_mutables: tuple[tuple[str, int], ...] = ()


class CallGraph:
    """Functions, classes, and resolved call edges over one source tree."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: method simple name -> sorted tuple of defining-method qualnames.
        self.methods_by_name: dict[str, tuple[str, ...]] = {}
        #: caller qualname -> sorted tuple of callee qualnames.
        self.edges: dict[str, tuple[str, ...]] = {}

    # -- queries -------------------------------------------------------
    def callees(self, qualname: str) -> tuple[str, ...]:
        """Resolved callees of one function (empty if unknown)."""
        return self.edges.get(qualname, ())

    def functions_named(self, name: str) -> tuple[str, ...]:
        """Every method qualname whose bare name is ``name``."""
        return self.methods_by_name.get(name, ())

    def class_of(self, method_qualname: str) -> ClassInfo | None:
        """The class owning a method qualname, if any."""
        info = self.functions.get(method_qualname)
        if info is None or info.cls is None:
            return None
        return self.classes.get(f"{info.module}.{info.cls}")

    @property
    def edge_count(self) -> int:
        """Total number of resolved call edges."""
        return sum(len(v) for v in self.edges.values())


def module_name_for(path: str) -> str | None:
    """Dotted module name for a repo-relative path inside ``src/repro``."""
    p = path.replace("\\", "/")
    for prefix in ("src/repro/", "repro/"):
        idx = p.find(prefix)
        if idx == 0 or (idx > 0 and p[idx - 1] == "/"):
            rest = p[idx + len(prefix) - len("repro/") :]
            break
    else:
        return None
    if not rest.endswith(".py"):
        return None
    rest = rest[: -len(".py")]
    if rest.endswith("/__init__"):
        rest = rest[: -len("/__init__")]
    return rest.replace("/", ".")


def _is_mutable_container(node: ast.expr, aliases: Mapping[str, str]) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = _dotted_name(node.func)
        if dotted is None:
            return False
        head, _, rest = dotted.partition(".")
        expanded = aliases.get(head, head)
        full = f"{expanded}.{rest}" if rest else expanded
        return full in (
            "list",
            "dict",
            "set",
            "bytearray",
            "collections.defaultdict",
            "collections.deque",
            "collections.OrderedDict",
            "collections.Counter",
        )
    return False


def _annotation_class(annotation: ast.expr | None) -> str | None:
    """The (possibly dotted) class name of a simple annotation, if any.

    ``Cluster`` -> ``Cluster``; ``spec.RunSpec`` -> ``spec.RunSpec``;
    string annotations parse recursively; unions/subscripts return the
    first resolvable member (``Tracer | None`` -> ``Tracer``).
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            parsed = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
        return _annotation_class(parsed)
    if isinstance(annotation, (ast.Name, ast.Attribute)):
        return _dotted_name(annotation)
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        return _annotation_class(annotation.left) or _annotation_class(annotation.right)
    if isinstance(annotation, ast.Subscript):
        base = _annotation_class(annotation.value)
        if base in ("Optional",):
            return _annotation_class(annotation.slice)
        return None
    return None


def _collect_module(name: str, path: str, tree: ast.Module) -> ModuleInfo:
    """Pass 1 for one module: defs, classes, aliases, module mutables."""
    info = ModuleInfo(name=name, path=path, tree=tree, aliases=_import_aliases(tree))
    mutables: list[tuple[str, int]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = _function_info(name, None, path, node)
        elif isinstance(node, ast.ClassDef):
            info.classes[node.name] = _collect_class(name, path, node, info.aliases)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if value is not None and _is_mutable_container(value, info.aliases):
                for target in targets:
                    if isinstance(target, ast.Name):
                        mutables.append((target.id, node.lineno))
    info.module_mutables = tuple(mutables)
    return info


def _function_info(
    module: str, cls: str | None, path: str, node: ast.FunctionDef | ast.AsyncFunctionDef
) -> FunctionInfo:
    owner = f"{module}.{cls}" if cls else module
    params = tuple(a.arg for a in (*node.args.posonlyargs, *node.args.args))
    return FunctionInfo(
        qualname=f"{owner}.{node.name}",
        module=module,
        cls=cls,
        name=node.name,
        path=path,
        lineno=node.lineno,
        node=node,
        params=params,
    )


def _collect_class(
    module: str, path: str, node: ast.ClassDef, aliases: Mapping[str, str]
) -> ClassInfo:
    info = ClassInfo(
        qualname=f"{module}.{node.name}",
        name=node.name,
        module=module,
        path=path,
        lineno=node.lineno,
        bases=tuple(b for b in (_dotted_name(base) for base in node.bases) if b),
    )
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[child.name] = _function_info(module, node.name, path, child)
        elif isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
            # Dataclass-style field annotation: ``engine: Engine``.
            annotated = _annotation_class(child.annotation)
            if annotated is not None:
                info.attr_types[child.target.id] = annotated
    return info


def build_call_graph(sources: Iterable[tuple[str, str]]) -> CallGraph:
    """Build the graph from ``(logical_path, source_text[, tree])`` tuples.

    Paths outside ``src/repro`` (no derivable module name) are skipped, as
    are files that do not parse — the per-file linter already reports
    those as ``LINT002``.  A caller that already parsed a file (the
    ``lint --flow`` shared pass) supplies its :class:`ast.Module` as an
    optional third element and the source is not parsed again.
    """
    graph = CallGraph()
    for item in sorted(sources, key=lambda t: t[0]):
        path, source = item[0], item[1]
        tree = item[2] if len(item) > 2 else None
        module = module_name_for(path)
        if module is None:
            continue
        if tree is None:
            try:
                tree = ast.parse(source)
            except SyntaxError:
                continue
        graph.modules[module] = _collect_module(module, path, tree)

    by_name: dict[str, list[str]] = {}
    class_by_simple_name: dict[str, list[str]] = {}
    for module_info in graph.modules.values():
        for fn in module_info.functions.values():
            graph.functions[fn.qualname] = fn
        for cls in module_info.classes.values():
            graph.classes[cls.qualname] = cls
            class_by_simple_name.setdefault(cls.name, []).append(cls.qualname)
            for fn in cls.methods.values():
                graph.functions[fn.qualname] = fn
                by_name.setdefault(fn.name, []).append(fn.qualname)
    graph.methods_by_name = {
        name: tuple(sorted(quals)) for name, quals in sorted(by_name.items())
    }

    _infer_attribute_types(graph, class_by_simple_name)
    for module_info in graph.modules.values():
        resolver = _Resolver(graph, module_info, class_by_simple_name)
        for fn in module_info.functions.values():
            graph.edges[fn.qualname] = resolver.resolve_function(fn, cls=None)
        for cls in module_info.classes.values():
            for fn in cls.methods.values():
                graph.edges[fn.qualname] = resolver.resolve_function(fn, cls=cls)
    return graph


def _infer_attribute_types(graph: CallGraph, class_by_simple_name: Mapping[str, list[str]]) -> None:
    """Record ``self.attr`` types from constructor-call assignments.

    ``self.nic = NetworkInterface(...)`` in any method of a class types
    ``self.nic`` for every other method of that class.  Annotation-derived
    field types collected in pass 1 are canonicalised to qualnames here.
    """
    for cls in graph.classes.values():
        module_info = graph.modules[cls.module]
        resolved: dict[str, str] = {}
        for attr, annotated in cls.attr_types.items():
            qual = _resolve_class_name(annotated, module_info, graph, class_by_simple_name)
            if qual is not None:
                resolved[attr] = qual
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                value = node.value
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        qual = None
                        if isinstance(value, ast.Call):
                            dotted = _dotted_name(value.func)
                            if dotted is not None:
                                qual = _resolve_class_name(
                                    dotted, module_info, graph, class_by_simple_name
                                )
                        if qual is None and isinstance(node, ast.AnnAssign):
                            annotated = _annotation_class(node.annotation)
                            if annotated is not None:
                                qual = _resolve_class_name(
                                    annotated, module_info, graph, class_by_simple_name
                                )
                        if qual is not None:
                            resolved.setdefault(target.attr, qual)
        cls.attr_types = resolved


def _resolve_class_name(
    dotted: str,
    module_info: ModuleInfo,
    graph: CallGraph,
    class_by_simple_name: Mapping[str, list[str]],
) -> str | None:
    """Resolve a (possibly dotted/aliased) class reference to a qualname."""
    head, _, rest = dotted.partition(".")
    expanded = module_info.aliases.get(head, head)
    candidate = f"{expanded}.{rest}" if rest else expanded
    if candidate in graph.classes:
        return candidate
    local = f"{module_info.name}.{dotted}"
    if not rest and local in graph.classes:
        return local
    # An unambiguous simple name anywhere in the tree still types precisely.
    simple = dotted.rsplit(".", 1)[-1]
    matches = class_by_simple_name.get(simple, [])
    if len(matches) == 1:
        return matches[0]
    return None


class _Resolver:
    """Pass 2: resolve every call site of one module's functions."""

    def __init__(
        self,
        graph: CallGraph,
        module_info: ModuleInfo,
        class_by_simple_name: Mapping[str, list[str]],
    ) -> None:
        self.graph = graph
        self.module = module_info
        self.class_by_simple_name = class_by_simple_name

    # -- helpers -------------------------------------------------------
    def _class_method(self, class_qual: str, method: str) -> str | None:
        """Look up ``method`` on a class, walking base classes in order."""
        seen: set[str] = set()
        queue = [class_qual]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.graph.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method].qualname
            owner_module = self.graph.modules.get(cls.module)
            for base in cls.bases:
                if owner_module is not None:
                    base_qual = _resolve_class_name(
                        base, owner_module, self.graph, self.class_by_simple_name
                    )
                    if base_qual is not None:
                        queue.append(base_qual)
        return None

    def _constructor_targets(self, class_qual: str) -> list[str]:
        """Edges created by instantiating a class: __init__ / __post_init__."""
        out = []
        for dunder in ("__init__", "__post_init__"):
            target = self._class_method(class_qual, dunder)
            if target is not None:
                out.append(target)
        return out

    def _local_types(
        self, fn: FunctionInfo, cls: ClassInfo | None
    ) -> dict[str, str]:
        """Variable name -> class qualname, from annotations, ctor calls,
        and the return annotations of resolved helper calls
        (``daemon = self._daemon(...)`` types ``daemon``)."""
        types: dict[str, str] = {}
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            qual = self._resolve_annotation(arg.annotation)
            if qual is not None:
                types[arg.arg] = qual
        for node in ast.walk(fn.node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = node.value
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            qual = None
            if isinstance(value, ast.Call):
                dotted = _dotted_name(value.func)
                if dotted is not None:
                    qual = _resolve_class_name(
                        dotted, self.module, self.graph, self.class_by_simple_name
                    )
                if qual is None:
                    qual = self._return_type_of(value, cls)
            if qual is None and isinstance(node, ast.AnnAssign):
                qual = self._resolve_annotation(node.annotation)
            if qual is not None:
                for target in targets:
                    if isinstance(target, ast.Name):
                        types[target.id] = qual
        return types

    def _return_type_of(self, call: ast.Call, cls: ClassInfo | None) -> str | None:
        """Class qualname of a call's annotated return type, if resolvable."""
        callee: FunctionInfo | None = None
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.module.functions:
                callee = self.module.functions[func.id]
            else:
                expanded = self.module.aliases.get(func.id)
                if expanded is not None:
                    callee = self.graph.functions.get(expanded)
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and cls is not None
        ):
            target = self._class_method(cls.qualname, func.attr)
            if target is not None:
                callee = self.graph.functions.get(target)
        if callee is None:
            return None
        annotated = _annotation_class(callee.node.returns)
        if annotated is None:
            return None
        owner = self.graph.modules.get(callee.module)
        if owner is None:
            return None
        return _resolve_class_name(annotated, owner, self.graph, self.class_by_simple_name)

    def _resolve_annotation(self, annotation: ast.expr | None) -> str | None:
        annotated = _annotation_class(annotation)
        if annotated is None:
            return None
        return _resolve_class_name(annotated, self.module, self.graph, self.class_by_simple_name)

    # -- the main resolution walk --------------------------------------
    def resolve_function(self, fn: FunctionInfo, cls: ClassInfo | None) -> tuple[str, ...]:
        """All resolved callee qualnames of one function body."""
        callees: set[str] = set()
        local_types = self._local_types(fn, cls)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                callees.update(self._resolve_call(node, fn, cls, local_types))
        callees.discard(fn.qualname)
        return tuple(sorted(callees))

    def _resolve_call(
        self,
        call: ast.Call,
        fn: FunctionInfo,
        cls: ClassInfo | None,
        local_types: Mapping[str, str],
    ) -> list[str]:
        func = call.func
        # Bare name: local def, imported def, or a constructor.
        if isinstance(func, ast.Name):
            return self._resolve_bare_name(func.id)
        if not isinstance(func, ast.Attribute):
            return []
        method = func.attr
        receiver = func.value

        # Fully dotted target through imports: repro.units.mb_to_mbit(...).
        dotted = _dotted_name(func)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            expanded = self.module.aliases.get(head, head)
            candidate = f"{expanded}.{rest}" if rest else expanded
            if candidate in self.graph.functions:
                return [candidate]

        # self.method(...) / super().method(...)
        if isinstance(receiver, ast.Name) and receiver.id == "self" and cls is not None:
            target = self._class_method(cls.qualname, method)
            if target is not None:
                return [target]
            return self._fallback(method)
        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
            and cls is not None
        ):
            owner = self.graph.classes.get(cls.qualname)
            if owner is not None:
                for base in owner.bases:
                    base_qual = _resolve_class_name(
                        base, self.module, self.graph, self.class_by_simple_name
                    )
                    if base_qual is not None:
                        target = self._class_method(base_qual, method)
                        if target is not None:
                            return [target]
            return []

        # self.attr.method(...) with an inferred attribute type.
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and cls is not None
        ):
            attr_type = cls.attr_types.get(receiver.attr)
            if attr_type is not None:
                target = self._class_method(attr_type, method)
                if target is not None:
                    return [target]
                return []  # typed receiver, method not in tree: stdlib etc.
            return self._fallback(method)

        # var.method(...) with a locally typed variable.
        if isinstance(receiver, ast.Name):
            var_type = local_types.get(receiver.id)
            if var_type is not None:
                target = self._class_method(var_type, method)
                if target is not None:
                    return [target]
                return []
            # ClassName.method(...) — classmethod / unbound call.
            if receiver.id[:1].isupper():
                class_qual = _resolve_class_name(
                    receiver.id, self.module, self.graph, self.class_by_simple_name
                )
                if class_qual is not None:
                    target = self._class_method(class_qual, method)
                    if target is not None:
                        return [target]
        return self._fallback(method)

    def _resolve_bare_name(self, name: str) -> list[str]:
        if name in self.module.functions:
            return [self.module.functions[name].qualname]
        expanded = self.module.aliases.get(name)
        if expanded is not None:
            if expanded in self.graph.functions:
                return [expanded]
            if expanded in self.graph.classes:
                return self._constructor_targets(expanded)
        local_class = f"{self.module.name}.{name}"
        if local_class in self.graph.classes:
            return self._constructor_targets(local_class)
        return []

    def _fallback(self, method: str) -> list[str]:
        """Class-hierarchy name matching for unknown receivers."""
        if method.startswith("__") or method in _FALLBACK_STOPLIST:
            return []
        return list(self.graph.functions_named(method))


def read_sources(paths: Iterable[Path], root: Path) -> list[tuple[str, str]]:
    """Load ``(logical_path, source)`` pairs for ``build_call_graph``."""
    from repro.devtools.lint import iter_python_files, logical_path

    out: list[tuple[str, str]] = []
    for file in iter_python_files(paths):
        out.append((logical_path(file, root), file.read_text(encoding="utf-8")))
    return out
