"""The rule catalogue of the determinism & invariant linter.

Each rule is an :class:`ast`-level check with a stable ID, a path scope
(which parts of the repo it polices), and a one-line fix hint.  Rules are
deliberately repo-specific: they encode invariants of *this* simulator that
generic linters cannot know about.

==========  ==============================================================
ID          Invariant
==========  ==============================================================
DET001      No wall-clock reads in simulator code — time comes from
            ``sim.clock.SimClock`` so runs are replayable.
DET002      No private randomness outside ``sim/rng.py`` — every draw
            comes from an injected ``np.random.Generator`` or a named
            ``RngStreams`` stream, preserving the single-root-seed
            guarantee.
DET003      No iteration over bare ``set`` values — set order varies
            across processes (hash randomisation), so iterate ``sorted()``
            or use ordered containers where order can feed simulator state.
UNIT001     No raw unit-conversion magic numbers (1024, 1024², 10⁶ …) in
            ``cluster``/``netsim`` — conversions go through ``repro.units``
            so MiB-vs-MB and bit-vs-byte drift cannot creep in.
API001      Public functions and methods in ``src/repro`` carry complete
            type annotations — the typed surface is what ``mypy`` strict
            verifies, and unannotated escapes undermine it.
API002      No ``run_experiment`` imports inside ``src/repro`` — the
            deprecated entry point survives only as a shim; internal code
            describes runs with ``repro.experiments.spec.RunSpec`` so the
            sweep executor and shard cache see every run.
OBS001      ``src/repro/telemetry`` must not import ``time`` or
            ``datetime`` at all — exporters promise byte-identical output
            for same-seed runs, so telemetry timestamps are exclusively
            the simulated clock values handed to ``capture()``.
OBS002      No direct ``registry.capture(...)`` calls outside the
            telemetry sampling actor (``telemetry/hub.py``) and the
            ``SamplingController`` layer — ad-hoc captures bypass the
            sampling policy and the observation-cost budget, desynchronise
            ring stamps, and break retention accounting.
SAN001      No mutable class-level or default-argument containers in
            ``cluster``/``platform``/``sim`` — shared mutable state leaks
            between instances and runs, exactly the aliasing the runtime
            sanitizer (SimSan) exists to catch.
SAN002      No direct float ``==``/``!=`` on resource quantities outside
            ``units.py`` — resource values come from arithmetic chains, so
            exact comparison is brittle; use ``repro.units.same_quantity``.
SAN003      No ``object.__setattr__`` on anything but ``self`` — mutating
            another module's frozen dataclass breaks the immutability its
            consumers (digests, ledgers, the sanitizer) rely on.
UNIT002     Unit-suffix dataflow: a ``_mbps``/``_mb``/``_cores``-suffixed
            name may not be assigned to, passed as, or combined with a
            differently-suffixed name — convert through ``repro.units``.
==========  ==============================================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.devtools.violations import Violation

# ----------------------------------------------------------------------
# Path scoping
# ----------------------------------------------------------------------
#: Area labels a rule can opt into, derived from the repo-relative path.
AREA_SRC = "src"
AREA_TESTS = "tests"
AREA_BENCHMARKS = "benchmarks"
AREA_EXAMPLES = "examples"


def classify_path(logical_path: str) -> str | None:
    """Map a repo-relative posix path to its area label (``None`` = unknown)."""
    p = logical_path.replace("\\", "/").lstrip("./")
    if p.startswith("src/repro/") or p.startswith("repro/"):
        return AREA_SRC
    for area in (AREA_TESTS, AREA_BENCHMARKS, AREA_EXAMPLES):
        if p.startswith(area + "/"):
            return area
    return None


def repro_module_path(logical_path: str) -> str | None:
    """The path inside ``src/repro`` (e.g. ``sim/rng.py``), or ``None``."""
    p = logical_path.replace("\\", "/").lstrip("./")
    for prefix in ("src/repro/", "repro/"):
        if p.startswith(prefix):
            return p[len(prefix):]
    return None


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _dotted_name(node: ast.expr) -> str | None:
    """Render a ``Name``/``Attribute`` chain as ``a.b.c`` (else ``None``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _import_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the canonical dotted thing they were imported as.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import perf_counter as pc`` -> ``{"pc": "time.perf_counter"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                canonical = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def _canonical_call_name(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of a call target, expanded through imports."""
    dotted = _dotted_name(call.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    expanded = aliases.get(head, head)
    return f"{expanded}.{rest}" if rest else expanded


# ----------------------------------------------------------------------
# Rule plumbing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Rule:
    """One named invariant check."""

    id: str
    summary: str
    applies: Callable[[str], bool]
    check: Callable[[ast.Module, dict[str, str], str], list[Violation]]

    def run(self, tree: ast.Module, logical_path: str) -> list[Violation]:
        """Run this rule over one parsed module (no-op outside its scope)."""
        if not self.applies(logical_path):
            return []
        return self.check(tree, _import_aliases(tree), logical_path)


def _violation(path: str, node: ast.AST, rule: str, message: str) -> Violation:
    return Violation(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        message=message,
    )


# ----------------------------------------------------------------------
# DET001 — wall-clock reads
# ----------------------------------------------------------------------
#: Canonical names whose *call* reads the host's clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _det001_applies(path: str) -> bool:
    return classify_path(path) in (AREA_SRC, AREA_EXAMPLES)


def _det001_check(tree: ast.Module, aliases: dict[str, str], path: str) -> list[Violation]:
    """DET001: simulated components must read ``SimClock.now``, never the host
    clock — wall-clock reads make runs unrepeatable and timing-dependent."""
    out: list[Violation] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _canonical_call_name(node, aliases)
            if name in WALL_CLOCK_CALLS:
                out.append(
                    _violation(
                        path,
                        node,
                        "DET001",
                        f"wall-clock call `{name}` in simulator code; "
                        "take time from the injected SimClock (`clock.now`)",
                    )
                )
    return out


# ----------------------------------------------------------------------
# DET002 — private randomness
# ----------------------------------------------------------------------
#: ``numpy.random`` members that are *not* entropy sources (safe to call).
_NUMPY_RANDOM_SAFE = frozenset({"SeedSequence"})


def _det002_applies(path: str) -> bool:
    module = repro_module_path(path)
    if module is not None:
        return module != "sim/rng.py"
    return classify_path(path) == AREA_EXAMPLES


def _det002_check(tree: ast.Module, aliases: dict[str, str], path: str) -> list[Violation]:
    """DET002: all randomness flows from one root seed via ``RngStreams``;
    constructing or seeding generators anywhere else forks the entropy
    universe and silently breaks run-for-run reproducibility."""
    out: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _canonical_call_name(node, aliases)
        if name is None:
            continue
        if name.startswith("random.") or name == "random":
            out.append(
                _violation(
                    path,
                    node,
                    "DET002",
                    f"stdlib `{name}` call bypasses the seeded RngStreams discipline; "
                    "accept an injected np.random.Generator instead",
                )
            )
        elif name.startswith("numpy.random."):
            member = name.split(".")[2]
            if member not in _NUMPY_RANDOM_SAFE:
                out.append(
                    _violation(
                        path,
                        node,
                        "DET002",
                        f"`{name}` creates randomness outside sim/rng.py; "
                        "accept an injected np.random.Generator or draw from a named "
                        "RngStreams stream",
                    )
                )
    return out


# ----------------------------------------------------------------------
# DET003 — iteration over bare sets
# ----------------------------------------------------------------------
#: Builtins that consume an iterable order-insensitively (safe wrappers).
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset"}
)

#: Builtins that materialise iteration order from their argument.
_ORDER_MATERIALISING = frozenset({"list", "tuple", "iter", "enumerate"})


def _is_set_expr(node: ast.expr, set_names: frozenset[str]) -> bool:
    """Statically certain that ``node`` evaluates to a ``set``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        # s.union(...) etc. on a known set expression stays a set.
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
            "copy",
        ):
            return _is_set_expr(node.func.value, set_names)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left, set_names) or _is_set_expr(node.right, set_names)
    return False


def _local_set_names(scope: ast.AST) -> frozenset[str]:
    """Names in ``scope`` whose every simple assignment is a set expression."""
    assigned: dict[str, bool] = {}
    for node in ast.walk(scope):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                is_set = _is_set_expr(value, frozenset(assigned))
                assigned[target.id] = assigned.get(target.id, True) and is_set
    return frozenset(name for name, ok in assigned.items() if ok)


def _det003_applies(path: str) -> bool:
    return classify_path(path) == AREA_SRC


def _det003_check(tree: ast.Module, aliases: dict[str, str], path: str) -> list[Violation]:
    """DET003: Python ``set`` iteration order depends on insertion history and
    hash seeding, so any set-ordered loop that feeds simulator state makes
    runs environment-dependent; iterate ``sorted(...)`` instead."""
    out: list[Violation] = []
    _ = aliases

    def scan(scope: ast.AST) -> None:
        set_names = _local_set_names(scope)

        def flag(iterable: ast.expr, context: str) -> None:
            if _is_set_expr(iterable, set_names):
                out.append(
                    _violation(
                        path,
                        iterable,
                        "DET003",
                        f"iteration over a bare set ({context}) has nondeterministic "
                        "order; wrap it in sorted(...) or use an ordered container",
                    )
                )

        for node in ast.walk(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                flag(node.iter, "for-loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp, ast.SetComp)):
                for gen in node.generators:
                    # A set comprehension's own output is a set (unordered),
                    # so draining a set into it is fine; list/dict/generator
                    # outputs materialise the order.
                    if not isinstance(node, ast.SetComp):
                        flag(gen.iter, "comprehension")
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _ORDER_MATERIALISING and node.args:
                    flag(node.args[0], f"{node.func.id}(...)")

    scan(tree)
    return out


# ----------------------------------------------------------------------
# UNIT001 — raw unit-conversion magic numbers
# ----------------------------------------------------------------------
#: Literals that are really unit-conversion factors in disguise.
_UNIT_MAGIC: dict[float, str] = {
    1024: "repro.units.SHARES_PER_CORE (or a MiB/KiB helper)",
    1024.0: "repro.units.SHARES_PER_CORE (or a MiB/KiB helper)",
    1024 * 1024: "repro.units.MIB",
    float(1024 * 1024): "repro.units.MIB",
    1000 * 1000: "repro.units.MBIT",
    float(1000 * 1000): "repro.units.MBIT",
    1024 * 1024 * 1024: "a GiB constant derived from repro.units.MIB",
    float(1024 * 1024 * 1024): "a GiB constant derived from repro.units.MIB",
}


def _unit001_applies(path: str) -> bool:
    module = repro_module_path(path)
    return module is not None and (module.startswith("cluster/") or module.startswith("netsim/"))


def _unit001_check(tree: ast.Module, aliases: dict[str, str], path: str) -> list[Violation]:
    """UNIT001: bandwidth/memory conversion factors written as raw literals
    (1024, 1024², 10⁶ …) reintroduce the MiB-vs-MB and bit-vs-byte drift that
    ``repro.units`` exists to prevent; import the named constant instead."""
    out: list[Violation] = []
    _ = aliases
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and type(node.value) in (int, float):
            hint = _UNIT_MAGIC.get(node.value)
            if hint is not None:
                out.append(
                    _violation(
                        path,
                        node,
                        "UNIT001",
                        f"raw unit-conversion literal {node.value!r}; use {hint}",
                    )
                )
    return out


# ----------------------------------------------------------------------
# API001 — complete annotations on the public surface
# ----------------------------------------------------------------------
def _api001_applies(path: str) -> bool:
    return classify_path(path) == AREA_SRC


def _iter_public_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
    """Yield ``(function, is_method)`` for public defs at module/class level.

    Functions nested inside other functions are implementation detail, not
    API surface, and are skipped.
    """
    stack: list[tuple[ast.AST, bool]] = [(tree, False)]
    while stack:
        node, in_class = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                stack.append((child, True))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not child.name.startswith("_"):
                    yield child, in_class
                # Do not descend: nested defs are not public surface.
            elif isinstance(child, (ast.If, ast.Try)):
                # Definitions guarded by TYPE_CHECKING / version checks still
                # count as surface.
                stack.append((child, in_class))


def _missing_annotations(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, is_method: bool
) -> list[str]:
    missing: list[str] = []
    args = fn.args
    positional: Sequence[ast.arg] = list(args.posonlyargs) + list(args.args)
    skip_first = is_method and not any(
        isinstance(dec, ast.Name) and dec.id == "staticmethod" for dec in fn.decorator_list
    )
    for index, arg in enumerate(positional):
        if index == 0 and skip_first:
            continue  # self / cls
        if arg.annotation is None:
            missing.append(f"parameter `{arg.arg}`")
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(f"parameter `{arg.arg}`")
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append(f"parameter `*{args.vararg.arg}`")
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append(f"parameter `**{args.kwarg.arg}`")
    if fn.returns is None:
        missing.append("return type")
    return missing


def _api001_check(tree: ast.Module, aliases: dict[str, str], path: str) -> list[Violation]:
    """API001: the public surface of ``src/repro`` is the contract that
    ``mypy`` strict-mode verifies; an unannotated public def punches an
    unchecked hole through every caller."""
    out: list[Violation] = []
    _ = aliases
    for fn, is_method in _iter_public_functions(tree):
        missing = _missing_annotations(fn, is_method)
        if missing:
            out.append(
                _violation(
                    path,
                    fn,
                    "API001",
                    f"public {'method' if is_method else 'function'} `{fn.name}` "
                    f"is missing annotations: {', '.join(missing)}",
                )
            )
    return out


# ----------------------------------------------------------------------
# API002 — no run_experiment imports inside src/repro
# ----------------------------------------------------------------------
#: Absolute modules the deprecated entry point is importable from.
_API002_MODULES = frozenset({"repro", "repro.experiments", "repro.experiments.runner"})

#: Relative spellings of the same modules as seen from inside the package.
_API002_RELATIVE = frozenset({"", "runner", "experiments", "experiments.runner"})


def _api002_applies(path: str) -> bool:
    module = repro_module_path(path)
    return module is not None and module != "experiments/runner.py"


def _api002_check(tree: ast.Module, aliases: dict[str, str], path: str) -> list[Violation]:
    """API002: ``run_experiment`` is a deprecation shim, kept only for
    external callers.  Internal code that imports it bypasses the RunSpec
    surface — and with it the canonical ``repro.sweep/1`` codec, the shard
    cache, and the parallel executor's determinism contract."""
    out: list[Violation] = []
    _ = aliases
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom):
            continue
        if not any(item.name == "run_experiment" for item in node.names):
            continue
        module = node.module or ""
        absolute_hit = node.level == 0 and module in _API002_MODULES
        relative_hit = node.level > 0 and module in _API002_RELATIVE
        if absolute_hit or relative_hit:
            out.append(
                _violation(
                    path,
                    node,
                    "API002",
                    "`run_experiment` imported inside src/repro; it is a deprecated "
                    "shim — describe the run with a repro.experiments.spec.RunSpec "
                    "and call .run() (or SweepSpec.run for grids)",
                )
            )
    return out


# ----------------------------------------------------------------------
# OBS001 — no wall-clock modules inside the telemetry package
# ----------------------------------------------------------------------
#: Modules whose very import signals wall-clock intent in telemetry code.
_OBS_FORBIDDEN_MODULES = frozenset({"time", "datetime"})


def _obs001_applies(path: str) -> bool:
    module = repro_module_path(path)
    return module is not None and module.startswith("telemetry/")


def _obs001_check(tree: ast.Module, aliases: dict[str, str], path: str) -> list[Violation]:
    """OBS001: the telemetry package's exporters promise byte-identical
    output for same-seed runs, so its only notion of time is the simulated
    ``now`` handed to ``capture()``.  Stronger than DET001: even *importing*
    ``time``/``datetime`` is flagged, before any call site exists."""
    out: list[Violation] = []
    _ = aliases
    for node in ast.walk(tree):
        offending: str | None = None
        if isinstance(node, ast.Import):
            for item in node.names:
                root = item.name.split(".")[0]
                if root in _OBS_FORBIDDEN_MODULES:
                    offending = item.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            if node.module.split(".")[0] in _OBS_FORBIDDEN_MODULES:
                offending = node.module
        if offending is not None:
            out.append(
                _violation(
                    path,
                    node,
                    "OBS001",
                    f"`{offending}` imported inside src/repro/telemetry; telemetry "
                    "is sim-time only — take timestamps from the `now` passed to "
                    "capture()/snapshot functions",
                )
            )
    return out


# ----------------------------------------------------------------------
# OBS002 — registry.capture() only from the sampling layer
# ----------------------------------------------------------------------
#: Modules allowed to stamp retention rings directly: the telemetry
#: sampling actor and the sampling-controller layer it drives.
_OBS002_ALLOWED_MODULES = frozenset({"telemetry/hub.py", "telemetry/sampling.py"})


def _obs002_applies(path: str) -> bool:
    module = repro_module_path(path)
    return (
        module is not None
        and classify_path(path) == AREA_SRC
        and module not in _OBS002_ALLOWED_MODULES
    )


def _obs002_check(tree: ast.Module, aliases: dict[str, str], path: str) -> list[Violation]:
    """OBS002: ``capture()`` is the retention heartbeat — one stamp per
    sampling pass, after the sampling controller has charged the pass to
    the observation-cost budget.  A capture issued anywhere else records
    series the policy decided to skip, double-stamps ring timestamps, and
    evades the cost model, so only the sampling layer may call it.  A
    deliberate exception (e.g. a bench priming a synthetic registry)
    carries a ``# lint: disable=OBS002(reason)`` suppression."""
    _ = aliases
    out: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "capture"):
            continue
        receiver = _dotted_name(func.value)
        if receiver is None or "registry" not in receiver.lower():
            continue
        out.append(
            _violation(
                path,
                node,
                "OBS002",
                f"`{receiver}.capture(...)` outside the telemetry sampling "
                "layer; route captures through RunTelemetry.sample()/the "
                "SamplingController so the sampling policy and cost budget "
                "stay authoritative",
            )
        )
    return out


# ----------------------------------------------------------------------
# SAN001 — mutable class-level / default-argument containers
# ----------------------------------------------------------------------
#: Call targets that build a fresh mutable container.
_MUTABLE_FACTORIES = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.deque",
        "collections.OrderedDict",
        "collections.Counter",
    }
)


def _is_mutable_container_expr(node: ast.expr, aliases: dict[str, str]) -> bool:
    """Statically certain that ``node`` builds a mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _canonical_call_name(node, aliases)
        return name in _MUTABLE_FACTORIES
    return False


def _san001_applies(path: str) -> bool:
    module = repro_module_path(path)
    return module is not None and module.startswith(("cluster/", "platform/", "sim/"))


def _san001_check(tree: ast.Module, aliases: dict[str, str], path: str) -> list[Violation]:
    """SAN001: a mutable container in a class body is shared by every
    instance, and one in a default argument is shared by every call — both
    alias state across containers/nodes/runs, which is precisely the
    cross-actor write sharing the runtime sanitizer treats as a race."""
    out: list[Violation] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                value: ast.expr | None = None
                if isinstance(stmt, ast.Assign):
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    value = stmt.value
                if value is not None and _is_mutable_container_expr(value, aliases):
                    out.append(
                        _violation(
                            path,
                            stmt,
                            "SAN001",
                            f"mutable class-level container in {node.name}: shared by "
                            "every instance; initialise it in __init__ (or use "
                            "dataclasses.field(default_factory=...))",
                        )
                    )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults: list[ast.expr] = list(node.args.defaults)
            defaults += [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_container_expr(default, aliases):
                    out.append(
                        _violation(
                            path,
                            default,
                            "SAN001",
                            f"mutable default argument in {node.name}(): shared across "
                            "calls; default to None and build the container inside",
                        )
                    )
    return out


# ----------------------------------------------------------------------
# SAN002 — float equality on resource quantities
# ----------------------------------------------------------------------
#: Bare names that denote a resource quantity outright.
_RESOURCE_EXACT = frozenset({"cpu", "mem", "memory", "net", "network", "cores"})

#: Name prefixes/suffixes that mark a resource-quantity variable.
_RESOURCE_PREFIXES = ("cpu_", "mem_", "net_", "disk_")
_RESOURCE_SUFFIXES = (
    "_cpu",
    "_mem",
    "_memory",
    "_net",
    "_network",
    "_cores",
    "_mbps",
    "_mbit",
    "_mbits",
    "_mb",
    "_mib",
    "_request",
    "_limit",
    "_usage",
    "_quota",
    "_capacity",
    "_rate",
    "_headroom",
)


def _terminal_name(node: ast.expr) -> str | None:
    """The final identifier of a ``Name``/``Attribute`` chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_resource_name(node: ast.expr) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    lowered = name.lower()
    return (
        lowered in _RESOURCE_EXACT
        or lowered.startswith(_RESOURCE_PREFIXES)
        or lowered.endswith(_RESOURCE_SUFFIXES)
    )


def _san002_applies(path: str) -> bool:
    module = repro_module_path(path)
    return module is not None and module != "units.py"


def _san002_check(tree: ast.Module, aliases: dict[str, str], path: str) -> list[Violation]:
    """SAN002: resource quantities (cores, MiB, Mbit/s) are floats produced
    by scaling/clamping arithmetic, so exact ``==``/``!=`` silently turns
    into "almost never equal"; compare via ``repro.units.same_quantity``
    (tolerance comparisons live in one audited place)."""
    out: list[Violation] = []
    _ = aliases
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_resource_name(left) or _is_resource_name(right):
                shown = _terminal_name(left) if _is_resource_name(left) else _terminal_name(right)
                out.append(
                    _violation(
                        path,
                        node,
                        "SAN002",
                        f"float equality on resource quantity `{shown}`; use "
                        "repro.units.same_quantity(a, b) (tolerance comparison)",
                    )
                )
    return out


# ----------------------------------------------------------------------
# SAN003 — frozen-dataclass mutation outside the defining module
# ----------------------------------------------------------------------
def _san003_applies(path: str) -> bool:
    return classify_path(path) == AREA_SRC


def _san003_check(tree: ast.Module, aliases: dict[str, str], path: str) -> list[Violation]:
    """SAN003: ``object.__setattr__`` is the only way to mutate a frozen
    dataclass, and the only legitimate caller is the defining class's own
    ``__post_init__`` (receiver ``self``).  Any other receiver is a foreign
    module breaking an immutability contract — views, violation records,
    and spans are hashed/compared on the assumption they never change."""
    out: list[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if _canonical_call_name(node, aliases) != "object.__setattr__":
            continue
        receiver = node.args[0] if node.args else None
        if not (isinstance(receiver, ast.Name) and receiver.id == "self"):
            out.append(
                _violation(
                    path,
                    node,
                    "SAN003",
                    "object.__setattr__ on a foreign frozen instance; frozen "
                    "dataclasses may only self-mutate in their own __post_init__ "
                    "— build a new instance (dataclasses.replace) instead",
                )
            )
    return out


# ----------------------------------------------------------------------
# UNIT002 — unit-suffix dataflow
# ----------------------------------------------------------------------
#: Trailing name segment -> unit class.  Different classes never mix
#: without an explicit converter from ``repro.units``.
_UNIT_SUFFIX_CLASSES = {
    "mbps": "Mbit",
    "mbit": "Mbit",
    "mbits": "Mbit",
    "mb": "MB",
    "mib": "MiB",
    "core": "cores",
    "cores": "cores",
    "shares": "shares",
}

#: Segments to skip while scanning for the unit token (``_mb_per_s``).
_UNIT_NEUTRAL_SEGMENTS = frozenset({"per", "s", "sec", "secs", "second", "seconds"})


def _unit_class_of_name(name: str) -> str | None:
    """Unit class encoded in a name's trailing suffix, or ``None``."""
    for segment in reversed(name.lower().split("_")):
        if segment in _UNIT_NEUTRAL_SEGMENTS:
            continue
        return _UNIT_SUFFIX_CLASSES.get(segment)
    return None


def _unit_class_of_expr(node: ast.expr) -> str | None:
    name = _terminal_name(node)
    return None if name is None else _unit_class_of_name(name)


def _local_function_params(tree: ast.Module) -> dict[str, list[str]]:
    """Function/method name -> positional parameter names (sans self/cls)."""
    params: dict[str, list[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names = [a.arg for a in (*node.args.posonlyargs, *node.args.args)]
            if names and names[0] in ("self", "cls"):
                names = names[1:]
            # First definition wins; overload collisions are rare and the
            # check is advisory about names, not signatures.
            params.setdefault(node.name, names)
    return params


def _unit002_applies(path: str) -> bool:
    module = repro_module_path(path)
    return module is not None and module != "units.py"


def _unit002_check(tree: ast.Module, aliases: dict[str, str], path: str) -> list[Violation]:
    """UNIT002: a unit suffix is a type the type checker cannot see — a
    ``_mbps`` value flowing into a ``_mb`` slot is the MB-vs-Mbit bug class
    the paper's bandwidth model cannot tolerate.  Mixed-suffix assignment,
    argument passing, and +/-// arithmetic must route through a
    ``repro.units`` converter."""
    out: list[Violation] = []
    _ = aliases
    local_params = _local_function_params(tree)

    def mismatch(a: str | None, b: str | None) -> bool:
        return a is not None and b is not None and a != b

    def flag(node: ast.AST, source: str, source_class: str, dest: str, dest_class: str) -> None:
        out.append(
            _violation(
                path,
                node,
                "UNIT002",
                f"unit-suffix mismatch: `{source}` carries {source_class} but flows "
                f"into `{dest}` ({dest_class}); convert via repro.units",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = node.value
            if value is None:
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value_class = _unit_class_of_expr(value)
            for target in targets:
                target_class = _unit_class_of_expr(target)
                if mismatch(value_class, target_class):
                    flag(
                        node,
                        str(_terminal_name(value)),
                        str(value_class),
                        str(_terminal_name(target)),
                        str(target_class),
                    )
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                param_class = _unit_class_of_name(keyword.arg)
                arg_class = _unit_class_of_expr(keyword.value)
                if mismatch(arg_class, param_class):
                    flag(
                        keyword.value,
                        str(_terminal_name(keyword.value)),
                        str(arg_class),
                        keyword.arg,
                        str(param_class),
                    )
            callee = _terminal_name(node.func)
            param_names = local_params.get(callee or "")
            if param_names:
                for position, arg in enumerate(node.args):
                    if position >= len(param_names) or isinstance(arg, ast.Starred):
                        break
                    param_class = _unit_class_of_name(param_names[position])
                    arg_class = _unit_class_of_expr(arg)
                    if mismatch(arg_class, param_class):
                        flag(
                            arg,
                            str(_terminal_name(arg)),
                            str(arg_class),
                            f"{callee}(... {param_names[position]} ...)",
                            str(param_class),
                        )
        elif isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub, ast.Div)):
            left_class = _unit_class_of_expr(node.left)
            right_class = _unit_class_of_expr(node.right)
            if mismatch(left_class, right_class):
                flag(
                    node,
                    str(_terminal_name(node.left)),
                    str(left_class),
                    str(_terminal_name(node.right)),
                    str(right_class),
                )
    return out


# ----------------------------------------------------------------------
# Catalogue
# ----------------------------------------------------------------------
#: Version of the combined rule catalogue (per-file + flow families).
#: Bumped whenever a rule is added, removed, or changes meaning, so CI
#: consumers of the JSON reports can detect incompatible rule sets.
#: "5": DetFlow — determinism-taint rules DET101–104 and registry-contract
#: rules CON001–003 over the flow graph.
#: "6": application-graph registries — call-site contract rule CON004 over
#: the workload/app/routing registration tables.
CATALOGUE_VERSION = "6"

ALL_RULES: tuple[Rule, ...] = (
    Rule("DET001", "no wall-clock reads in simulator code", _det001_applies, _det001_check),
    Rule("DET002", "no private randomness outside sim/rng.py", _det002_applies, _det002_check),
    Rule("DET003", "no iteration over bare sets", _det003_applies, _det003_check),
    Rule("UNIT001", "no raw unit-conversion literals in cluster/netsim", _unit001_applies, _unit001_check),
    Rule("API001", "public src/repro defs carry complete annotations", _api001_applies, _api001_check),
    Rule("API002", "no run_experiment imports inside src/repro (use RunSpec)", _api002_applies, _api002_check),
    Rule("OBS001", "no time/datetime imports inside src/repro/telemetry", _obs001_applies, _obs001_check),
    Rule("OBS002", "registry.capture() only from the telemetry sampling layer", _obs002_applies, _obs002_check),
    Rule("SAN001", "no mutable class-level/default-arg containers in cluster/platform/sim", _san001_applies, _san001_check),
    Rule("SAN002", "no float ==/!= on resource quantities outside units.py", _san002_applies, _san002_check),
    Rule("SAN003", "object.__setattr__ only on self (frozen-dataclass discipline)", _san003_applies, _san003_check),
    Rule("UNIT002", "no mixed unit-suffix dataflow without a units converter", _unit002_applies, _unit002_check),
)


def rule_catalog() -> dict[str, str]:
    """Rule ID -> one-line summary (the ``--list-rules`` payload)."""
    return {rule.id: rule.summary for rule in ALL_RULES}
