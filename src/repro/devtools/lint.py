"""Engine and CLI of the determinism & invariant linter.

Usage::

    python -m repro.devtools.lint                 # lint src tests benchmarks examples
    python -m repro.devtools.lint src/repro/sim   # lint a subtree
    python -m repro.devtools.lint --format json   # machine-readable output
    python -m repro.devtools.lint --list-rules    # the rule catalogue
    python -m repro.devtools.lint --flow          # + interprocedural FlowLint
    hyscale-repro lint                            # same engine, via the main CLI

Exit status: 0 when the tree is clean, 1 when any violation (including a
malformed suppression) is found, 2 on usage errors (missing paths, malformed
flow baseline).  See ``docs/dev-tooling.md`` for the rule catalogue and the
``# lint: disable=RULE(reason)`` suppression syntax.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.devtools.rules import ALL_RULES, CATALOGUE_VERSION, Rule, rule_catalog
from repro.devtools.violations import PARSE_ERROR, Violation, parse_suppressions

#: Paths linted when the CLI is invoked without arguments (repo-root relative).
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", ".pytest_cache", ".benchmarks"})

#: Repo areas whose prefix anchors a logical (repo-relative) path.
_AREA_MARKERS = ("src/repro/", "tests/", "benchmarks/", "examples/")


def logical_path(path: Path, root: Path | None = None) -> str:
    """Repo-relative posix path used for rule scoping.

    Works from any CWD: prefers relativising against ``root``, then falls
    back to locating a known area marker (``src/repro/``, ``tests/`` …)
    inside the absolute path.
    """
    candidates: list[str] = []
    if root is not None:
        try:
            candidates.append(path.resolve().relative_to(root.resolve()).as_posix())
        except ValueError:
            pass
    candidates.append(path.as_posix())
    for candidate in candidates:
        for marker in _AREA_MARKERS:
            idx = candidate.find(marker)
            if idx == 0 or (idx > 0 and candidate[idx - 1] == "/"):
                return candidate[idx:]
    return candidates[0]


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    found: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            found.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    found.add(candidate)
    return sorted(found)


def lint_source(
    source: str,
    logical: str,
    rules: Sequence[Rule] = ALL_RULES,
    tree: ast.Module | None = None,
) -> list[Violation]:
    """Lint one module's source under its repo-relative ``logical`` path.

    A caller that already parsed the file passes its ``tree`` so the
    source is not parsed twice (the ``--flow`` shared pass).
    """
    if tree is None:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [
                Violation(
                    path=logical,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                    rule=PARSE_ERROR,
                    message=f"file does not parse: {exc.msg}",
                )
            ]
    suppressed, problems = parse_suppressions(source, logical)
    violations = list(problems)
    for rule in rules:
        for violation in rule.run(tree, logical):
            if rule.id in suppressed.get(violation.line, frozenset()):
                continue
            violations.append(violation)
    return sorted(violations)


def lint_paths(
    paths: Sequence[str | Path],
    root: str | Path | None = None,
    rules: Sequence[Rule] = ALL_RULES,
) -> tuple[list[Violation], int]:
    """Lint files/directories; returns ``(violations, files_checked)``."""
    root_path = Path(root) if root is not None else Path.cwd()
    files = iter_python_files(Path(root_path, p) if not Path(p).is_absolute() else Path(p) for p in paths)
    violations: list[Violation] = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        violations.extend(lint_source(source, logical_path(file, root_path), rules))
    return sorted(violations), len(files)


def render_report(violations: Sequence[Violation], files_checked: int) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [v.render() for v in violations]
    noun = "file" if files_checked == 1 else "files"
    if violations:
        by_rule: dict[str, int] = {}
        for v in violations:
            by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
        mix = ", ".join(f"{rule}={count}" for rule, count in sorted(by_rule.items()))
        lines.append(f"{len(violations)} violation(s) in {files_checked} {noun} ({mix})")
    else:
        lines.append(f"clean: {files_checked} {noun} checked, 0 violations")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_checked: int) -> str:
    """Machine-readable report (stable shape for CI consumers)."""
    return json.dumps(
        {
            "catalogue_version": CATALOGUE_VERSION,
            "files_checked": files_checked,
            "violation_count": len(violations),
            "violations": [v.to_dict() for v in violations],
        },
        indent=2,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism & invariant linter for the HyScale reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repository root used to derive rule-scoping paths (default: CWD)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the interprocedural FlowLint rules over src/repro "
        "(same engine as `hyscale-repro analyze`)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, summary in sorted(rule_catalog().items()):
            print(f"{rule_id}  {summary}")
        return 0

    requested = [Path(args.root or ".", p) if not Path(p).is_absolute() else Path(p) for p in args.paths]
    missing = [str(p) for p in requested if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    if args.flow:
        # Shared single-parse pass: lint and FlowLint both consume the
        # same ASTs, so the ~130 modules of src/repro are parsed once.
        from repro.devtools.flow.analyze import (
            DEFAULT_ANALYZE_PATHS,
            analyze_sources,
            default_baseline,
        )
        from repro.devtools.flow.baseline import BaselineError

        root_path = Path(args.root) if args.root is not None else Path.cwd()
        try:
            baseline = default_baseline(root_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        files = iter_python_files(
            Path(root_path, p) if not Path(p).is_absolute() else Path(p)
            for p in args.paths
        )
        violations = []
        shared: dict[str, tuple[str, str, ast.Module]] = {}
        for file in files:
            source = file.read_text(encoding="utf-8")
            logical = logical_path(file, root_path)
            try:
                tree = ast.parse(source)
            except SyntaxError:
                violations.extend(lint_source(source, logical))
                continue
            violations.extend(lint_source(source, logical, tree=tree))
            shared[logical] = (logical, source, tree)
        files_checked = len(files)
        # The flow pass always covers all of src/repro, whatever subtree
        # was linted: parse only the modules the lint walk did not visit.
        for file in iter_python_files(
            Path(root_path, p) for p in DEFAULT_ANALYZE_PATHS
        ):
            logical = logical_path(file, root_path)
            if logical in shared:
                continue
            source = file.read_text(encoding="utf-8")
            try:
                shared[logical] = (logical, source, ast.parse(source))
            except SyntaxError:
                continue
        analysis = analyze_sources(
            [shared[k] for k in sorted(shared)], baseline=baseline
        )
        violations = sorted([*violations, *analysis.violations])
    else:
        violations, files_checked = lint_paths(args.paths, root=args.root)
    if args.format == "json":
        print(render_json(violations, files_checked))
    else:
        print(render_report(violations, files_checked))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
