"""Application graphs: multi-service call chains with back-pressure.

The paper's evaluation (Section VI) scales independent single services,
but real traffic flows through call chains — frontend -> api -> db, with
per-request fan-out — where a saturated downstream tier back-pressures
upstream response times.  This module is the value-object layer for that
model:

- :class:`ServiceSpec` — one tier: an existing resource profile (by
  registry name) plus the replica bounds and target utilization the
  Monitor scales against.
- :class:`CallEdge` — "each request handled by *caller* issues *calls*
  requests to *callee*", with an optional per-edge routing-policy name.
- :class:`ServiceGraph` — tiers + edges, validated acyclic with a pinned
  deterministic topological order (Kahn's algorithm, lexicographic
  tie-break).
- :class:`ApplicationSpec` — a named graph plus its ingress tiers; the
  unit :class:`~repro.experiments.runner.Simulation` builds from.
- :class:`AppRequest` — the lifecycle record for one ingress request's
  journey through the graph (spawned/joined internal calls, end-to-end
  latency).

The single-service path is the degenerate case: a one-service, zero-edge
graph behaves byte-identically to a plain fleet (no internal calls are
spawned, every request keeps ``downstream_pending == 0``).

All value objects are frozen; the canonical JSON codec feeds
:meth:`~repro.experiments.spec.RunSpec.canonical_json` identity, so field
order and omit-when-default rules here are load-bearing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cluster.microservice import MicroserviceSpec
from repro.errors import WorkloadError
from repro.workloads.requests import Request, RequestState

#: Schema tag embedded in canonical application JSON.
GRAPH_SCHEMA = "repro.app/1"


@dataclass(frozen=True)
class ServiceSpec:
    """One tier of an application graph.

    Wraps an existing :class:`~repro.workloads.profiles.MicroserviceProfile`
    (by workload-registry name, resolved lazily so specs can be built
    before custom profiles are registered) together with the knobs the
    Monitor and placement layers need: replica bounds, target utilization,
    and per-replica allocations.  ``to_microservice_spec`` adapts to the
    existing fleet API without deprecation shims.
    """

    name: str
    profile: str = "cpu_bound"
    cpu_request: float = 0.5
    mem_limit: float = 512.0
    net_rate: float = 50.0
    disk_quota: float = 50.0
    min_replicas: int = 1
    max_replicas: int = 16
    target_utilization: float = 0.5
    max_concurrency: int = 16
    stateful: bool = False
    state_size_mb: float = 256.0

    def __post_init__(self) -> None:
        # Delegate numeric validation to the fleet spec so the two APIs
        # can never drift apart on what a legal tier looks like.
        self.to_microservice_spec()

    def to_microservice_spec(self) -> "MicroserviceSpec":
        """Adapt to the single-service fleet API (validates on build)."""
        # Imported here, not at module top: cluster.microservice itself
        # imports repro.workloads (for Request), so a top-level import
        # would cycle during package init.
        from repro.cluster.microservice import MicroserviceSpec

        return MicroserviceSpec(
            name=self.name,
            cpu_request=self.cpu_request,
            mem_limit=self.mem_limit,
            net_rate=self.net_rate,
            disk_quota=self.disk_quota,
            min_replicas=self.min_replicas,
            max_replicas=self.max_replicas,
            target_utilization=self.target_utilization,
            max_concurrency=self.max_concurrency,
            stateful=self.stateful,
            state_size_mb=self.state_size_mb,
            profile=self.profile,
        )

    @classmethod
    def from_microservice_spec(cls, spec: "MicroserviceSpec") -> "ServiceSpec":
        """Wrap an existing fleet spec as a graph tier."""
        return cls(
            name=spec.name,
            profile=spec.profile,
            cpu_request=spec.cpu_request,
            mem_limit=spec.mem_limit,
            net_rate=spec.net_rate,
            disk_quota=spec.disk_quota,
            min_replicas=spec.min_replicas,
            max_replicas=spec.max_replicas,
            target_utilization=spec.target_utilization,
            max_concurrency=spec.max_concurrency,
            stateful=spec.stateful,
            state_size_mb=spec.state_size_mb,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "profile": self.profile,
            "cpu_request": self.cpu_request,
            "mem_limit": self.mem_limit,
            "net_rate": self.net_rate,
            "disk_quota": self.disk_quota,
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "target_utilization": self.target_utilization,
            "max_concurrency": self.max_concurrency,
            "stateful": self.stateful,
            "state_size_mb": self.state_size_mb,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServiceSpec":
        return cls(**data)


@dataclass(frozen=True)
class CallEdge:
    """Per-request fan-out from one tier to another.

    Each request handled by ``caller`` issues ``calls`` downstream
    requests to ``callee``; the caller's completion then waits on all of
    them (its latency includes its slowest downstream dependency).
    ``routing`` optionally names a registered routing policy for this
    edge; ``None`` inherits the run-level policy.
    """

    caller: str
    callee: str
    calls: int = 1
    routing: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.calls, int) or isinstance(self.calls, bool):
            raise WorkloadError(
                f"edge {self.caller!r}->{self.callee!r}: calls must be an int, "
                f"got {self.calls!r}"
            )
        if self.calls < 0:
            raise WorkloadError(
                f"edge {self.caller!r}->{self.callee!r}: fan-out must be >= 0, "
                f"got {self.calls}"
            )
        if self.caller == self.callee:
            raise WorkloadError(f"edge {self.caller!r} may not call itself")

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "caller": self.caller,
            "callee": self.callee,
            "calls": self.calls,
        }
        if self.routing is not None:
            payload["routing"] = self.routing
        return payload

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CallEdge":
        return cls(
            caller=data["caller"],
            callee=data["callee"],
            calls=data["calls"],
            routing=data.get("routing"),
        )


@dataclass(frozen=True)
class ServiceGraph:
    """An acyclic service-dependency graph.

    Validation happens at construction: unique tier names, edges that
    reference known tiers, no duplicate (caller, callee) pairs, and
    acyclicity — proven by computing the pinned topological order.
    """

    services: tuple[ServiceSpec, ...]
    edges: tuple[CallEdge, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "services", tuple(self.services))
        object.__setattr__(self, "edges", tuple(self.edges))
        if not self.services:
            raise WorkloadError("a service graph needs at least one service")
        names = [spec.name for spec in self.services]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise WorkloadError(f"duplicate service names in graph: {dupes}")
        known = set(names)
        seen_pairs: set[tuple[str, str]] = set()
        for edge in self.edges:
            for endpoint in (edge.caller, edge.callee):
                if endpoint not in known:
                    raise WorkloadError(
                        f"edge {edge.caller!r}->{edge.callee!r} references "
                        f"unknown service {endpoint!r}"
                    )
            pair = (edge.caller, edge.callee)
            if pair in seen_pairs:
                raise WorkloadError(
                    f"duplicate edge {edge.caller!r}->{edge.callee!r}"
                )
            seen_pairs.add(pair)
        # Raises on cycles; also pins the deterministic order.
        self.topological_order()

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def service(self, name: str) -> ServiceSpec:
        """Tier spec by name, or raise."""
        for spec in self.services:
            if spec.name == name:
                return spec
        raise WorkloadError(f"unknown service {name!r} in graph")

    def service_names(self) -> tuple[str, ...]:
        """All tier names, sorted."""
        return tuple(sorted(spec.name for spec in self.services))

    def out_edges(self, name: str) -> tuple[CallEdge, ...]:
        """Edges out of ``name``, sorted by callee (deterministic dispatch)."""
        return tuple(
            sorted(
                (e for e in self.edges if e.caller == name),
                key=_edge_callee,
            )
        )

    def fan_out(self, name: str) -> int:
        """Total downstream calls one request to ``name`` spawns."""
        return sum(e.calls for e in self.edges if e.caller == name)

    def roots(self) -> tuple[str, ...]:
        """Tiers with no incoming edges (the natural ingress set), sorted."""
        called = {e.callee for e in self.edges}
        return tuple(sorted(n for n in (s.name for s in self.services) if n not in called))

    def topological_order(self) -> tuple[str, ...]:
        """Kahn's algorithm with a sorted ready set — the pinned order.

        Deterministic for a given graph regardless of the order services
        or edges were listed in; raises :class:`WorkloadError` naming the
        cycle participants when the graph is not a DAG.
        """
        indegree = {spec.name: 0 for spec in self.services}
        for edge in self.edges:
            indegree[edge.callee] += 1
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for edge in self.out_edges(name):
                indegree[edge.callee] -= 1
                if indegree[edge.callee] == 0:
                    ready.append(edge.callee)
            ready.sort()
        if len(order) != len(self.services):
            cycle = sorted(name for name, deg in indegree.items() if deg > 0)
            raise WorkloadError(f"service graph has a cycle through {cycle}")
        return tuple(order)

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "services": [spec.to_dict() for spec in self.services],
            "edges": [edge.to_dict() for edge in self.edges],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServiceGraph":
        return cls(
            services=tuple(ServiceSpec.from_dict(s) for s in data["services"]),
            edges=tuple(CallEdge.from_dict(e) for e in data.get("edges", ())),
        )


@dataclass(frozen=True)
class ApplicationSpec:
    """A named application: a service graph plus its ingress tiers.

    ``ingress`` names the tiers that receive user traffic; it defaults to
    the graph's roots.  :meth:`service_specs` adapts every tier to the
    existing fleet API in topological order, so the Monitor evaluates its
    per-service policies — HYSCALE_CPU, CPU+Mem, Kubernetes-HPA — per
    tier with no further wiring.
    """

    name: str
    graph: ServiceGraph
    ingress: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("an application needs a non-empty name")
        object.__setattr__(self, "ingress", tuple(self.ingress))
        if not self.ingress:
            object.__setattr__(self, "ingress", self.graph.roots())
        if not self.ingress:
            raise WorkloadError(
                f"application {self.name!r} has no ingress tier (every "
                "service has an incoming edge; pass ingress= explicitly)"
            )
        known = {spec.name for spec in self.graph.services}
        for tier in self.ingress:
            if tier not in known:
                raise WorkloadError(
                    f"application {self.name!r}: ingress tier {tier!r} is not "
                    "in the graph"
                )
        if len(set(self.ingress)) != len(self.ingress):
            raise WorkloadError(f"application {self.name!r}: duplicate ingress tiers")

    def service_specs(self) -> tuple["MicroserviceSpec", ...]:
        """Every tier as a fleet spec, in the pinned topological order."""
        return tuple(
            self.graph.service(name).to_microservice_spec()
            for name in self.graph.topological_order()
        )

    @classmethod
    def single_service(cls, spec: "MicroserviceSpec", name: str | None = None) -> "ApplicationSpec":
        """Degenerate one-tier application wrapping an existing fleet spec.

        Behaves byte-identically to running the spec as a plain fleet: no
        edges means no internal calls, so every request completes exactly
        as it would without a graph.
        """
        return cls(
            name=name or spec.name,
            graph=ServiceGraph(services=(ServiceSpec.from_microservice_spec(spec),)),
        )

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": GRAPH_SCHEMA,
            "name": self.name,
            "graph": self.graph.to_dict(),
            "ingress": list(self.ingress),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ApplicationSpec":
        schema = data.get("schema", GRAPH_SCHEMA)
        if schema != GRAPH_SCHEMA:
            raise WorkloadError(f"unsupported application schema {schema!r}")
        return cls(
            name=data["name"],
            graph=ServiceGraph.from_dict(data["graph"]),
            ingress=tuple(data.get("ingress", ())),
        )

    def canonical_json(self) -> str:
        """Byte-stable canonical encoding (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


@dataclass
class AppRequest:
    """Lifecycle record for one ingress request's journey through the graph.

    Created by the graph router when the load generator hands it an
    ingress request; updated as internal tier calls are spawned and
    joined; finished when the root request itself completes or fails.
    The end-to-end latency is the root's response time — by construction
    it includes the slowest downstream dependency chain, because a tier
    stays in flight (holding its concurrency slot and memory) until all
    of its downstream calls resolve.
    """

    app: str
    root: Request
    spawned: int = 0
    internal_completed: int = 0
    internal_failed: int = 0
    #: Internal requests still outstanding anywhere in the subtree.
    live_internal: int = 0

    @property
    def finished(self) -> bool:
        return self.root.is_finished

    @property
    def succeeded(self) -> bool:
        return self.root.state is RequestState.SUCCEEDED

    @property
    def response_time(self) -> float | None:
        return self.root.response_time


def _edge_callee(edge: CallEdge) -> str:
    """Sort key for deterministic edge iteration (module-level: HOT001)."""
    return edge.callee


def three_tier_graph(
    *,
    frontend_profile: str = "cpu_bound",
    api_profile: str = "cpu_bound",
    # cpu_bound, not disk_bound: the default ``hybrid`` policy watches CPU
    # and memory, so a disk-bound db would never emit a scaling signal it
    # can see (pair ``db_profile="disk_bound"`` with the ``disk`` policy).
    db_profile: str = "cpu_bound",
    api_calls: int = 1,
    db_calls: int = 2,
    db_max_replicas: int = 16,
) -> ServiceGraph:
    """The canonical frontend -> api -> db chain used by examples and benches.

    One user request does frontend work, issues ``api_calls`` api calls,
    and each api call issues ``db_calls`` db reads.  Capping
    ``db_max_replicas`` is the standard way to demonstrate back-pressure:
    the db saturates, api requests block on their reads, frontend blocks
    on api, and ingress p99 climbs.
    """
    return ServiceGraph(
        services=(
            ServiceSpec(
                name="frontend",
                profile=frontend_profile,
                cpu_request=0.5,
                mem_limit=512.0,
                max_replicas=16,
            ),
            ServiceSpec(
                name="api",
                profile=api_profile,
                cpu_request=0.5,
                mem_limit=512.0,
                max_replicas=16,
            ),
            ServiceSpec(
                name="db",
                profile=db_profile,
                cpu_request=0.5,
                mem_limit=768.0,
                max_replicas=db_max_replicas,
                stateful=True,
            ),
        ),
        edges=(
            CallEdge(caller="frontend", callee="api", calls=api_calls),
            CallEdge(caller="api", callee="db", calls=db_calls),
        ),
    )


def three_tier_app(
    name: str = "three-tier",
    *,
    db_max_replicas: int = 16,
    db_calls: int = 2,
) -> ApplicationSpec:
    """A ready-to-run three-tier :class:`ApplicationSpec`."""
    return ApplicationSpec(
        name=name,
        graph=three_tier_graph(db_max_replicas=db_max_replicas, db_calls=db_calls),
    )
