"""Microservice resource-consumption profiles.

The paper's evaluation drives "a custom Java microservice with configurable
workload": each instantiation is told how much of each resource to consume
per incoming request (Section VI).  A :class:`MicroserviceProfile` is that
configuration — mean per-request demands plus a lognormal jitter so request
sizes vary realistically but reproducibly.

The four canonical profiles mirror the paper's experiment matrix:
CPU-bound, memory-bound, network-bound, and mixed CPU+memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.requests import Request


@dataclass(frozen=True)
class MicroserviceProfile:
    """Per-request resource demands for one class of microservice."""

    name: str
    #: Mean compute per request, core-seconds.
    cpu_per_request: float
    #: Mean transient memory per in-flight request, MiB.
    mem_per_request: float
    #: Mean response payload, Mbit.
    net_per_request: float
    #: Mean disk I/O per request, MB (0 for the paper's three-axis profiles;
    #: used by the disk extension).
    disk_per_request: float = 0.0
    #: Lognormal sigma applied to each demand draw (0 disables jitter).
    jitter_sigma: float = 0.25
    #: Client-side timeout for requests of this class, seconds.
    timeout: float = 30.0

    def __post_init__(self) -> None:
        if (
            self.cpu_per_request < 0
            or self.mem_per_request < 0
            or self.net_per_request < 0
            or self.disk_per_request < 0
        ):
            raise WorkloadError(f"profile {self.name!r}: demands must be non-negative")
        if self.jitter_sigma < 0:
            raise WorkloadError(f"profile {self.name!r}: jitter_sigma must be >= 0")
        if self.timeout <= 0:
            raise WorkloadError(f"profile {self.name!r}: timeout must be positive")

    def make_request(
        self,
        service: str,
        now: float,
        rng: np.random.Generator,
        request_id: int | None = None,
    ) -> Request:
        """Stamp one request with jittered demands.

        ``request_id`` lets the load generator allocate ids from its own
        per-run sequence (ids feed balancer sharding, so a process-global
        sequence would make back-to-back runs diverge); when omitted, the
        module-level fallback sequence is used.
        """
        request = Request(
            service=service,
            arrival_time=now,
            cpu_work=self._draw(self.cpu_per_request, rng),
            mem_footprint=self._draw(self.mem_per_request, rng),
            net_mbits=self._draw(self.net_per_request, rng),
            disk_mb=self._draw(self.disk_per_request, rng),
            timeout=self.timeout,
        )
        if request_id is not None:
            request.request_id = request_id
        return request

    def _draw(self, mean: float, rng: np.random.Generator) -> float:
        """Lognormal draw with the configured sigma and unit mean scaling."""
        if mean == 0:
            return 0.0
        if self.jitter_sigma == 0:
            return mean
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); choose mu so the
        # draw's mean equals ``mean`` exactly.
        mu = -0.5 * self.jitter_sigma**2
        return mean * float(rng.lognormal(mu, self.jitter_sigma))


#: CPU-bound: each request burns 250 ms of core time and little else.
CPU_BOUND = MicroserviceProfile(
    name="cpu_bound",
    cpu_per_request=0.25,
    mem_per_request=4.0,
    net_per_request=0.1,
)

#: Memory-bound: requests hold a large working set while in flight, and the
#: compute actually *touches* that memory — so when the limit forces swap,
#: every request's compute crawls (the Section III-B "drastic degradation").
MEMORY_BOUND = MicroserviceProfile(
    name="memory_bound",
    cpu_per_request=0.12,
    mem_per_request=60.0,
    net_per_request=0.1,
)

#: Network-bound: a 12 Mbit response per request, with the "moderate use of
#: CPU caused by networking system calls" the paper notes in Section VI-A
#: (most of the CPU cost comes from transmission, via
#: ``OverheadModel.net_cpu_per_mbit``, not from the compute phase).
NETWORK_BOUND = MicroserviceProfile(
    name="network_bound",
    cpu_per_request=0.02,
    mem_per_request=4.0,
    net_per_request=12.0,
)

#: Mixed CPU and memory — the workload where HyScale_CPU+Mem shines and
#: CPU-only scalers swap themselves into trouble (Figure 7).
MIXED = MicroserviceProfile(
    name="mixed",
    cpu_per_request=0.15,
    mem_per_request=90.0,
    net_per_request=0.4,
)

#: Disk-bound (extension): each request reads/writes a few MB; compute is
#: trivial, so only spindle bandwidth and seek thrash gate throughput —
#: invisible to every CPU-driven scaler.
DISK_BOUND = MicroserviceProfile(
    name="disk_bound",
    cpu_per_request=0.008,
    mem_per_request=6.0,
    net_per_request=0.2,
    disk_per_request=6.0,
)

#: Registry used by experiment configs and the CLI.
PROFILES: dict[str, MicroserviceProfile] = {
    p.name: p for p in (CPU_BOUND, MEMORY_BOUND, NETWORK_BOUND, MIXED, DISK_BOUND)
}


def get_profile(name: str) -> MicroserviceProfile:
    """Look up a profile by name.

    Thin shim over :func:`repro.workloads.registry.resolve_profile` (the
    one name->profile source, which also sees profiles registered via
    :func:`~repro.workloads.registry.register_profile`); imported lazily
    because the registry module imports this one for the canonical table.
    """
    from repro.workloads.registry import resolve_profile

    return resolve_profile(name)
