"""Client load patterns.

Section VI: "the stable load consists of a low amplitude bursty traffic,
labelled low-burst, and the unstable load forms a spiking pattern, labelled
high-burst.  This wave-like bursty pattern simulates repeated peaks and
troughs in client activity."

A pattern is a deterministic rate function ``rate(t) -> requests/second``;
stochasticity enters only through the generator's Poisson thinning, never
through the pattern itself, so two algorithms compared under the same seed
see identical offered load.
"""

from __future__ import annotations

import abc
import math
from bisect import bisect_right

from repro.errors import WorkloadError


class LoadPattern(abc.ABC):
    """Deterministic arrival-rate curve."""

    @abc.abstractmethod
    def rate(self, t: float) -> float:
        """Offered load at time ``t``, in requests/second (never negative)."""

    def mean_rate(self, duration: float, samples: int = 1000) -> float:
        """Numerical mean of the curve over ``[0, duration]``."""
        if duration <= 0:
            raise WorkloadError("duration must be positive")
        step = duration / samples
        return sum(self.rate(i * step) for i in range(samples)) / samples


class ConstantLoad(LoadPattern):
    """Flat offered load."""

    def __init__(self, rate: float):
        if rate < 0:
            raise WorkloadError(f"rate must be non-negative, got {rate}")
        self._rate = float(rate)

    def rate(self, t: float) -> float:
        return self._rate


class LowBurstLoad(LoadPattern):
    """Stable load: gentle sinusoidal swell around a base rate.

    ``rate(t) = base * (1 + amplitude * sin(2*pi*(t+phase)/period))`` with a
    small default amplitude — the paper's "low amplitude bursty traffic".
    """

    def __init__(self, base: float, amplitude: float = 0.3, period: float = 120.0, phase: float = 0.0):
        if base < 0:
            raise WorkloadError(f"base rate must be non-negative, got {base}")
        if not 0 <= amplitude <= 1:
            raise WorkloadError(f"amplitude must be in [0, 1], got {amplitude}")
        if period <= 0:
            raise WorkloadError(f"period must be positive, got {period}")
        self.base = float(base)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = float(phase)

    def rate(self, t: float) -> float:
        swell = self.amplitude * math.sin(2 * math.pi * (t + self.phase) / self.period)
        return max(0.0, self.base * (1.0 + swell))


class HighBurstLoad(LoadPattern):
    """Unstable load: a low trough punctuated by tall square spikes.

    Each period consists of a trough at ``base`` and a spike of height
    ``peak`` occupying ``duty`` of the period — the paper's "spiking
    pattern ... repeated peaks and troughs".  Spike edges are smoothed over
    ``ramp`` seconds so rates stay finite-difference friendly.
    """

    def __init__(
        self,
        base: float,
        peak: float,
        period: float = 120.0,
        duty: float = 0.25,
        phase: float = 0.0,
        ramp: float = 2.0,
    ):
        if base < 0 or peak < base:
            raise WorkloadError("need 0 <= base <= peak")
        if period <= 0 or not 0 < duty < 1:
            raise WorkloadError("need period > 0 and 0 < duty < 1")
        if ramp < 0 or ramp * 2 > duty * period:
            raise WorkloadError("ramp must be >= 0 and fit inside the spike")
        self.base = float(base)
        self.peak = float(peak)
        self.period = float(period)
        self.duty = float(duty)
        self.phase = float(phase)
        self.ramp = float(ramp)

    def rate(self, t: float) -> float:
        pos = (t + self.phase) % self.period
        spike_len = self.duty * self.period
        if pos >= spike_len:
            return self.base
        if self.ramp > 0 and pos < self.ramp:  # rising edge
            frac = pos / self.ramp
        elif self.ramp > 0 and pos > spike_len - self.ramp:  # falling edge
            frac = (spike_len - pos) / self.ramp
        else:
            frac = 1.0
        return self.base + (self.peak - self.base) * frac


class DiurnalLoad(LoadPattern):
    """A day-shaped curve: overnight trough, business-hours plateau.

    ``rate(t)`` follows a raised cosine between ``trough`` and ``peak`` over
    ``day_length`` seconds, peaking at ``peak_at`` (fraction of the day).
    Section I's framing — "over-encumbered during peak usage hours and
    underutilized during off-peak hours" — as a reusable pattern.
    """

    def __init__(
        self,
        trough: float,
        peak: float,
        day_length: float = 86_400.0,
        peak_at: float = 0.58,  # mid-afternoon
        phase: float = 0.0,
    ):
        if trough < 0 or peak < trough:
            raise WorkloadError("need 0 <= trough <= peak")
        if day_length <= 0 or not 0 <= peak_at < 1:
            raise WorkloadError("need day_length > 0 and 0 <= peak_at < 1")
        self.trough = float(trough)
        self.peak = float(peak)
        self.day_length = float(day_length)
        self.peak_at = float(peak_at)
        self.phase = float(phase)

    def rate(self, t: float) -> float:
        position = ((t + self.phase) / self.day_length - self.peak_at) % 1.0
        # Raised cosine: 1.0 at the peak hour, 0.0 twelve "hours" away.
        shape = 0.5 * (1.0 + math.cos(2 * math.pi * position))
        return self.trough + (self.peak - self.trough) * shape


class FlashCrowdLoad(LoadPattern):
    """One viral event: exponential ramp to a peak, then exponential decay.

    Unlike :class:`HighBurstLoad`'s repeating spikes, a flash crowd happens
    once and never announces itself — the hardest case for reactive and
    predictive scalers alike.
    """

    def __init__(
        self,
        base: float,
        peak: float,
        onset: float,
        rise_tau: float = 20.0,
        decay_tau: float = 120.0,
    ):
        if base < 0 or peak < base:
            raise WorkloadError("need 0 <= base <= peak")
        if onset < 0 or rise_tau <= 0 or decay_tau <= 0:
            raise WorkloadError("need onset >= 0 and positive time constants")
        self.base = float(base)
        self.peak = float(peak)
        self.onset = float(onset)
        self.rise_tau = float(rise_tau)
        self.decay_tau = float(decay_tau)
        # The ramp reaches ~99.3% of peak after 5 time constants; decay
        # starts there so the curve is continuous.
        self._crest = self.onset + 5.0 * self.rise_tau

    def rate(self, t: float) -> float:
        if t < self.onset:
            return self.base
        surge = self.peak - self.base
        if t <= self._crest:
            return self.base + surge * (1.0 - math.exp(-(t - self.onset) / self.rise_tau))
        crest_value = surge * (1.0 - math.exp(-5.0))
        return self.base + crest_value * math.exp(-(t - self._crest) / self.decay_tau)


class CompositeLoad(LoadPattern):
    """Sum of patterns — e.g. a diurnal baseline plus flash crowds."""

    def __init__(self, parts: list[LoadPattern]):
        if not parts:
            raise WorkloadError("composite needs at least one part")
        self.parts = list(parts)

    def rate(self, t: float) -> float:
        return sum(part.rate(t) for part in self.parts)


class TraceLoad(LoadPattern):
    """Piecewise-constant rate curve replayed from a trace.

    Used to drive services from the Bitbrains dataset: each trace point
    holds until the next.  Times must be strictly increasing and start
    at 0; querying past the last point returns the last rate (the paper
    loops hour-long experiments over the scaled trace).
    """

    def __init__(self, times: list[float], rates: list[float], *, loop: bool = True):
        if len(times) != len(rates) or not times:
            raise WorkloadError("times and rates must be equal-length and non-empty")
        if times[0] != 0:
            raise WorkloadError("trace must start at t=0")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise WorkloadError("trace times must be strictly increasing")
        if any(r < 0 for r in rates):
            raise WorkloadError("trace rates must be non-negative")
        self.times = [float(t) for t in times]
        self.rates = [float(r) for r in rates]
        self.loop = loop

    @property
    def duration(self) -> float:
        """Span of the trace, assuming uniform spacing of the final point."""
        if len(self.times) == 1:
            return self.times[0] + 1.0
        return self.times[-1] + (self.times[-1] - self.times[-2])

    def rate(self, t: float) -> float:
        if t < 0:
            raise WorkloadError(f"time must be non-negative, got {t}")
        if self.loop:
            t = t % self.duration
        idx = bisect_right(self.times, t) - 1
        idx = max(0, min(idx, len(self.rates) - 1))
        return self.rates[idx]
