"""Synthetic Bitbrains GWA-T-12 ``Rnd`` workload trace.

The paper replays the Bitbrains ``Rnd`` dataset — resource usage of 500 VMs
from a managed-hosting provider — "re-purposed ... to be applicable to our
microservices use case and scaled ... to run on our cluster" (Section VI-B).
The original trace is distributed by TU Delft and is not bundled here, so we
generate a statistical stand-in calibrated to the published description:

* per-VM CPU utilization is *bursty/spiky* — a diurnal swell plus a Poisson
  spike train over a lognormal base (Figure 9's jagged CPU line);
* per-VM memory is *smoother* — a bounded random walk with mild correlation
  to CPU bursts (Figure 9's flatter memory line);
* the aggregate "exhibits the same behaviour as the low-burst mix and
  high-burst mix workloads" (mixed CPU+memory, alternating calm and spikes).

Generation is fully determined by the seed, so experiments replaying the
trace are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.sim.rng import RngStreams
from repro.workloads.generator import ServiceLoad
from repro.workloads.patterns import TraceLoad
from repro.workloads.profiles import MicroserviceProfile, MIXED


@dataclass(frozen=True)
class VmTrace:
    """One VM's usage series at a fixed sampling interval."""

    vm_id: int
    interval: float  # seconds between samples
    cpu_pct: np.ndarray  # CPU utilization, 0..100
    mem_frac: np.ndarray  # memory used / memory capacity, 0..1

    def __post_init__(self) -> None:
        if len(self.cpu_pct) != len(self.mem_frac) or len(self.cpu_pct) == 0:
            raise WorkloadError("cpu and mem series must be equal-length and non-empty")
        if self.interval <= 0:
            raise WorkloadError("interval must be positive")


@dataclass(frozen=True)
class BitbrainsTrace:
    """The full synthetic ``Rnd`` dataset: many VMs on one time base."""

    vms: tuple[VmTrace, ...]
    interval: float

    def __post_init__(self) -> None:
        if not self.vms:
            raise WorkloadError("trace must contain at least one VM")
        lengths = {len(vm.cpu_pct) for vm in self.vms}
        if len(lengths) != 1:
            raise WorkloadError("all VM series must have the same length")

    @property
    def n_vms(self) -> int:
        """Number of VMs in the trace (500 in the original)."""
        return len(self.vms)

    @property
    def n_samples(self) -> int:
        """Number of samples per VM."""
        return len(self.vms[0].cpu_pct)

    @property
    def duration(self) -> float:
        """Trace span in seconds."""
        return self.n_samples * self.interval

    def times(self) -> np.ndarray:
        """Sample timestamps (seconds, starting at 0)."""
        return np.arange(self.n_samples) * self.interval

    def aggregate_cpu(self) -> np.ndarray:
        """Mean CPU % across VMs at each sample — Figure 9's CPU line."""
        return np.mean([vm.cpu_pct for vm in self.vms], axis=0)

    def aggregate_mem(self) -> np.ndarray:
        """Mean memory fraction across VMs at each sample — Figure 9's memory line."""
        return np.mean([vm.mem_frac for vm in self.vms], axis=0)


#: Stream name the trace generator draws when deriving from a root seed.
TRACE_STREAM = "workloads/bitbrains"


def generate_bitbrains_trace(
    n_vms: int = 500,
    duration: float = 3600.0,
    interval: float = 30.0,
    seed: int = 0,
    rng: np.random.Generator | None = None,
) -> BitbrainsTrace:
    """Generate the synthetic ``Rnd`` trace.

    Parameters
    ----------
    n_vms:
        Number of VM series (the original dataset has 500).
    duration:
        Trace span in seconds (the original spans a month; experiments
        replay an hour).
    interval:
        Sampling interval in seconds (the original samples every 300 s; we
        default finer so hour-scale replays have enough points).
    seed:
        Root seed.  The generator participates in the single-root-seed
        guarantee by drawing the named :data:`TRACE_STREAM` stream of
        ``RngStreams(seed)``, so the trace is a pure function of the
        arguments and independent of every other consumer of the seed.
    rng:
        Explicitly injected generator; overrides ``seed`` when given (e.g.
        to synthesise a trace from a live run's own stream factory).
    """
    if n_vms < 1:
        raise WorkloadError("n_vms must be >= 1")
    if duration <= 0 or interval <= 0 or interval > duration:
        raise WorkloadError("need 0 < interval <= duration")
    if rng is None:
        rng = RngStreams(seed).stream(TRACE_STREAM)
    n_samples = int(round(duration / interval))
    t = np.arange(n_samples) * interval

    # Cluster-wide burst events: tenants in a shared data centre spike
    # *together* (batch windows, market opens) — this correlation is what
    # keeps the 500-VM aggregate jagged in Figure 9 instead of averaging
    # flat.  Each VM joins each event with some probability.
    n_events = max(1, int(rng.poisson(n_samples / 12)))
    global_events = [
        (
            int(rng.integers(0, n_samples)),  # start sample
            int(rng.integers(2, max(3, n_samples // 10))),  # width
            float(rng.uniform(2.0, 5.0)),  # magnitude multiplier
        )
        for _ in range(n_events)
    ]

    vms = []
    for vm_id in range(n_vms):
        # Base level: most VMs idle low, a few run hot (lognormal).
        base = float(np.clip(rng.lognormal(mean=2.4, sigma=0.7), 1.0, 60.0))
        # Diurnal swell with random phase and period jitter.
        period = duration * float(rng.uniform(0.5, 1.5))
        phase = float(rng.uniform(0, 2 * np.pi))
        swell = 0.35 * base * np.sin(2 * np.pi * t / period + phase)
        # Spike train: bursts arrive Poisson, last a few samples, and can
        # multiply the base several-fold — the "spiking pattern".
        spikes = np.zeros(n_samples)
        burst_rate = rng.uniform(0.01, 0.06)  # private bursts per sample
        n_bursts = rng.poisson(burst_rate * n_samples)
        for _ in range(n_bursts):
            start = int(rng.integers(0, n_samples))
            width = int(rng.integers(1, max(2, n_samples // 20)))
            height = base * float(rng.uniform(1.5, 5.0))
            spikes[start : start + width] += height
        for start, width, magnitude in global_events:
            if rng.random() < 0.35:  # this VM joins the shared event
                spikes[start : start + width] += base * magnitude
        noise = rng.normal(0, 0.1 * base, n_samples)
        cpu = np.clip(base + swell + spikes + noise, 0.0, 100.0)

        # Memory: bounded random walk, gently tugged upward during bursts.
        mem_base = float(rng.uniform(0.25, 0.65))
        steps = rng.normal(0, 0.004, n_samples)
        walk = np.cumsum(steps)
        coupling = 0.0015 * (cpu - base)  # slight CPU->memory correlation
        mem = np.clip(mem_base + walk + coupling, 0.05, 0.95)

        vms.append(VmTrace(vm_id=vm_id, interval=interval, cpu_pct=cpu, mem_frac=mem))

    return BitbrainsTrace(vms=tuple(vms), interval=interval)


def bitbrains_service_loads(
    trace: BitbrainsTrace,
    n_services: int = 15,
    base_rate: float = 4.0,
    profile: MicroserviceProfile = MIXED,
) -> list[ServiceLoad]:
    """Re-purpose the VM trace as request load on ``n_services`` microservices.

    Mirrors the paper's re-purposing: VMs are partitioned evenly into
    service groups; each group's mean CPU series drives that service's
    request rate (`base_rate` requests/s at 25 % group CPU), and the group's
    mean memory level scales the per-request memory footprint around the
    profile's mean.  Services are named ``bb-00 .. bb-NN``.
    """
    if n_services < 1 or n_services > trace.n_vms:
        raise WorkloadError("need 1 <= n_services <= n_vms")
    if base_rate <= 0:
        raise WorkloadError("base_rate must be positive")

    groups: list[list[VmTrace]] = [[] for _ in range(n_services)]
    for i, vm in enumerate(trace.vms):
        groups[i % n_services].append(vm)

    global_mem = float(np.mean([vm.mem_frac.mean() for vm in trace.vms]))
    times = list(trace.times())

    loads = []
    for idx, group in enumerate(groups):
        cpu = np.mean([vm.cpu_pct for vm in group], axis=0)
        mem_level = float(np.mean([vm.mem_frac.mean() for vm in group]))
        rates = [max(0.0, base_rate * c / 25.0) for c in cpu]
        pattern = TraceLoad(times, rates, loop=True)
        # Scale the memory footprint by the group's relative memory appetite,
        # bounded to keep the workload within the mixed regime.
        mem_scale = min(2.0, max(0.5, mem_level / global_mem)) if global_mem > 0 else 1.0
        service_profile = MicroserviceProfile(
            name=f"{profile.name}_bb{idx:02d}",
            cpu_per_request=profile.cpu_per_request,
            mem_per_request=profile.mem_per_request * mem_scale,
            net_per_request=profile.net_per_request,
            jitter_sigma=profile.jitter_sigma,
            timeout=profile.timeout,
        )
        loads.append(ServiceLoad(service=f"bb-{idx:02d}", profile=service_profile, pattern=pattern))
    return loads
