"""The workload registry: one place where workload names become experiments.

Before this module there were three overlapping ways to name a workload —
the ``WORKLOAD_FACTORIES`` dict in :mod:`repro.experiments.configs` (used
by the CLI and ``SweepSpec.from_grid``), the factory functions themselves,
and the profile names in :func:`repro.workloads.profiles.get_profile`.
They are collapsed here, mirroring :mod:`repro.core.registry` (policies),
:mod:`repro.engine_core.backend` (engines), and
:mod:`repro.platform.routing` (routing):

* **workloads** — ``register_workload`` / ``resolve_workload`` /
  ``registered_workloads``: experiment factories keyed by CLI name
  (``cpu``, ``memory``, ``bitbrains``, ...), each with a ``takes_burst``
  flag (the Bitbrains trace ignores the burst knob).
* **profiles** — ``register_profile`` / ``resolve_profile`` /
  ``registered_profiles``: per-request resource demand profiles keyed by
  name; :class:`~repro.workloads.graph.ServiceSpec` tiers resolve their
  profiles here.
* **apps** — ``register_app`` / ``resolve_app`` / ``registered_apps``:
  multi-tier :class:`~repro.workloads.graph.ApplicationSpec` experiment
  factories for ``cli run --app``.

The old spellings (``WORKLOAD_FACTORIES``, ``get_profile``) remain as thin
shims over this registry, byte-identical in behaviour.

Built-in *workload* and *app* factories live in
:mod:`repro.experiments.configs`, which imports :mod:`repro.workloads` —
so they are registered lazily on first enumeration/resolve rather than at
import time, breaking the cycle the way
:meth:`~repro.telemetry.sampling.resolve_sampling` does for controllers.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import WorkloadError
from repro.workloads.profiles import PROFILES, MicroserviceProfile

#: An experiment factory: ``factory(burst, seed=...)`` or ``factory(seed=...)``
#: returning an :class:`~repro.experiments.configs.ExperimentSpec`.
WorkloadFactory = Callable[..., Any]


class _WorkloadRegistry:
    """Name -> factory/profile/app tables.

    The tables live on an instance (not bare module dicts) so lookup paths
    that run inside sweep workers carry no module-level mutable state
    (PAR001); after the lazy built-in load they are only read, so every
    worker resolves identically.
    """

    def __init__(self) -> None:
        self._workloads: dict[str, tuple[WorkloadFactory, bool]] = {}
        self._apps: dict[str, WorkloadFactory] = {}
        self._profiles: dict[str, MicroserviceProfile] = dict(PROFILES)
        self._builtins_loaded = False

    def _ensure_builtins(self) -> None:
        if self._builtins_loaded:
            return
        # Set the flag *before* the import: configs registers its built-ins
        # at import time via register_workload/register_app, which re-enter
        # this registry.
        self._builtins_loaded = True
        import repro.experiments.configs  # noqa: F401  (registers built-ins)

    # -- workloads -----------------------------------------------------
    def workload_names(self) -> tuple[str, ...]:
        self._ensure_builtins()
        return tuple(sorted(self._workloads))

    def add_workload(
        self, name: str, factory: WorkloadFactory, *, takes_burst: bool, replace: bool
    ) -> None:
        if not name:
            raise WorkloadError("workload name must be non-empty")
        if not callable(factory):
            raise WorkloadError(f"workload {name!r} factory must be callable")
        if name in self._workloads and not replace:
            raise WorkloadError(f"workload {name!r} is already registered")
        self._workloads[name] = (factory, takes_burst)

    def resolve_workload(self, name: str) -> tuple[WorkloadFactory, bool]:
        self._ensure_builtins()
        try:
            return self._workloads[name]
        except KeyError:
            raise WorkloadError(
                f"unknown workload {name!r}; known: {self.workload_names()}"
            ) from None

    # -- apps ----------------------------------------------------------
    def app_names(self) -> tuple[str, ...]:
        self._ensure_builtins()
        return tuple(sorted(self._apps))

    def add_app(self, name: str, factory: WorkloadFactory, *, replace: bool) -> None:
        if not name:
            raise WorkloadError("application name must be non-empty")
        if not callable(factory):
            raise WorkloadError(f"application {name!r} factory must be callable")
        if name in self._apps and not replace:
            raise WorkloadError(f"application {name!r} is already registered")
        self._apps[name] = factory

    def resolve_app(self, name: str) -> WorkloadFactory:
        self._ensure_builtins()
        try:
            return self._apps[name]
        except KeyError:
            raise WorkloadError(
                f"unknown application {name!r}; known: {self.app_names()}"
            ) from None

    # -- profiles ------------------------------------------------------
    def profile_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._profiles))

    def add_profile(self, profile: MicroserviceProfile, *, replace: bool) -> None:
        if not isinstance(profile, MicroserviceProfile):
            raise WorkloadError("register_profile takes a MicroserviceProfile")
        if profile.name in self._profiles and not replace:
            raise WorkloadError(f"profile {profile.name!r} is already registered")
        self._profiles[profile.name] = profile

    def resolve_profile(self, name: str) -> MicroserviceProfile:
        try:
            return self._profiles[name]
        except KeyError:
            raise WorkloadError(
                f"unknown profile {name!r}; known: {sorted(self._profiles)}"
            ) from None


_REGISTRY = _WorkloadRegistry()


def registered_workloads() -> tuple[str, ...]:
    """Every resolvable workload name, sorted."""
    return _REGISTRY.workload_names()


def register_workload(
    name: str, factory: WorkloadFactory, *, takes_burst: bool = True, replace: bool = False
) -> None:
    """Add an experiment factory under ``name``.

    ``takes_burst`` declares whether the factory accepts the CLI's
    ``--burst`` knob as its first positional argument.  Raises
    :class:`~repro.errors.WorkloadError` if the name is taken and
    ``replace`` is not set.
    """
    _REGISTRY.add_workload(name, factory, takes_burst=takes_burst, replace=replace)


def resolve_workload(name: str) -> tuple[WorkloadFactory, bool]:
    """Coerce a workload name to ``(factory, takes_burst)``."""
    return _REGISTRY.resolve_workload(name)


def registered_apps() -> tuple[str, ...]:
    """Every resolvable application name, sorted."""
    return _REGISTRY.app_names()


def register_app(name: str, factory: WorkloadFactory, *, replace: bool = False) -> None:
    """Add a multi-tier application experiment factory under ``name``."""
    _REGISTRY.add_app(name, factory, replace=replace)


def resolve_app(name: str) -> WorkloadFactory:
    """Coerce an application name to its experiment factory."""
    return _REGISTRY.resolve_app(name)


def registered_profiles() -> tuple[str, ...]:
    """Every resolvable profile name, sorted."""
    return _REGISTRY.profile_names()


def register_profile(profile: MicroserviceProfile, *, replace: bool = False) -> None:
    """Add a resource profile under its own name."""
    _REGISTRY.add_profile(profile, replace=replace)


def resolve_profile(name: str) -> MicroserviceProfile:
    """Coerce a profile name to its :class:`MicroserviceProfile`."""
    return _REGISTRY.resolve_profile(name)
