"""Client request model and failure taxonomy.

A request is the unit of load: it arrives at the load balancer, is routed to
one replica, consumes CPU there (a processor-sharing phase), then transmits
its response over the node's NIC (a network phase).  The paper's Figures 6-8
distinguish exactly two failure classes, which we mirror:

* **removal failures** — "requests that end prematurely due to container
  removals" (a replica was scaled in or OOM-killed while serving);
* **connection failures** — "requests that fail prematurely at the
  microservice" (timeout, or no live replica to route to).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import WorkloadError

_request_ids = itertools.count(1)


class RequestState(enum.Enum):
    """Lifecycle states of a request."""

    QUEUED = "queued"  # created, waiting for the load balancer
    RUNNING = "running"  # assigned to a replica, consuming resources
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class FailureReason(enum.Enum):
    """Why a request failed — matches the paper's two failure classes."""

    REMOVAL = "removal"  # serving container was removed / OOM-killed
    CONNECTION = "connection"  # timeout or no replica available


@dataclass
class Request:
    """One client request and its progress through the system.

    Demands are stamped by the workload profile at creation time:

    * ``cpu_work`` — core-seconds of compute required,
    * ``mem_footprint`` — MiB resident in the serving container while the
      request is in flight,
    * ``net_mbits`` — response payload to egress once compute finishes.
    """

    service: str
    arrival_time: float
    cpu_work: float = 0.0
    mem_footprint: float = 0.0
    net_mbits: float = 0.0
    #: Disk I/O demand in MB (the paper's declared-but-unimplemented axis;
    #: served between the compute and network phases).
    disk_mb: float = 0.0
    timeout: float = 30.0
    request_id: int = field(default_factory=lambda: next(_request_ids))

    # Mutable progress -------------------------------------------------
    state: RequestState = RequestState.QUEUED
    failure_reason: FailureReason | None = None
    container_id: str | None = None
    start_time: float | None = None
    finish_time: float | None = None
    cpu_done: float = 0.0
    disk_done: float = 0.0
    net_done: float = 0.0
    #: Service-time multiplier applied at assignment; encodes the replica
    #: distribution overhead measured in Section III-A.
    overhead_factor: float = 1.0

    # Application-graph lifecycle ---------------------------------------
    #: Downstream calls this request still waits on.  Settlement keeps the
    #: request in flight — occupying its thread-pool slot and memory —
    #: until the count reaches zero, which is how downstream saturation
    #: back-pressures upstream latency.  Always 0 outside graph runs.
    downstream_pending: int = 0
    #: Set when any downstream call failed; the join then fails this
    #: request with a connection failure instead of completing it.
    downstream_failed: bool = False
    #: False for internal tier-to-tier calls spawned by the graph router;
    #: user-traffic accounting (ingress SLO, compare tables) only counts
    #: requests with this flag set.
    ingress: bool = True
    #: Node hosting the replica that issued this call, when known — the
    #: hint topology-aware routing uses to prefer same-node replicas.
    origin_node: str | None = None

    def __post_init__(self) -> None:
        if self.cpu_work < 0 or self.mem_footprint < 0 or self.net_mbits < 0 or self.disk_mb < 0:
            raise WorkloadError("request demands must be non-negative")
        if self.timeout <= 0:
            raise WorkloadError("request timeout must be positive")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def effective_cpu_work(self) -> float:
        """CPU demand after the distribution-overhead multiplier."""
        return self.cpu_work * self.overhead_factor

    @property
    def cpu_remaining(self) -> float:
        """Core-seconds of compute still required."""
        return max(0.0, self.effective_cpu_work - self.cpu_done)

    @property
    def disk_remaining(self) -> float:
        """MB of disk I/O still required."""
        return max(0.0, self.disk_mb - self.disk_done)

    @property
    def progress(self) -> float:
        """Fraction of total work done across all phases."""
        total = self.effective_cpu_work + self.disk_mb + self.net_mbits
        if total <= 0:
            return 1.0
        return min(1.0, (self.cpu_done + self.disk_done + self.net_done) / total)

    @property
    def resident_memory(self) -> float:
        """MiB currently held by this request in its container.

        Heap grows as the request is processed: a quarter is allocated at
        admission (buffers, session state) and the rest in proportion to
        progress.  The ramp is what gives memory-aware scalers a window to
        react before a burst's full footprint lands.
        """
        return self.mem_footprint * (0.25 + 0.75 * self.progress)

    @property
    def net_remaining(self) -> float:
        """Mbit of response payload still to transmit."""
        return max(0.0, self.net_mbits - self.net_done)

    @property
    def in_cpu_phase(self) -> bool:
        """True while compute is unfinished."""
        return self.state is RequestState.RUNNING and self.cpu_remaining > 1e-12

    @property
    def in_disk_phase(self) -> bool:
        """True once compute is done but disk I/O is still outstanding."""
        return (
            self.state is RequestState.RUNNING
            and not self.in_cpu_phase
            and self.disk_remaining > 1e-12
        )

    @property
    def in_net_phase(self) -> bool:
        """True once compute and disk are done but the payload is in flight."""
        return (
            self.state is RequestState.RUNNING
            and not self.in_cpu_phase
            and not self.in_disk_phase
            and self.net_remaining > 1e-12
        )

    @property
    def is_finished(self) -> bool:
        """True for both terminal states."""
        return self.state in (RequestState.SUCCEEDED, RequestState.FAILED)

    @property
    def response_time(self) -> float | None:
        """Arrival-to-finish latency; ``None`` until the request finishes."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    def deadline(self) -> float:
        """Absolute time at which this request times out."""
        return self.arrival_time + self.timeout

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def assign(self, container_id: str, now: float, overhead_factor: float = 1.0) -> None:
        """Route the request to a replica and start the CPU phase."""
        if self.state is not RequestState.QUEUED:
            raise WorkloadError(f"cannot assign request in state {self.state}")
        if overhead_factor < 1.0:
            raise WorkloadError("overhead_factor must be >= 1")
        self.state = RequestState.RUNNING
        self.container_id = container_id
        self.start_time = now
        self.overhead_factor = overhead_factor

    def advance_cpu(self, core_seconds: float) -> None:
        """Credit ``core_seconds`` of compute progress."""
        if core_seconds < 0:
            raise WorkloadError("cpu progress must be non-negative")
        self.cpu_done += core_seconds

    def advance_disk(self, mb: float) -> None:
        """Credit ``mb`` of disk I/O progress."""
        if mb < 0:
            raise WorkloadError("disk progress must be non-negative")
        self.disk_done += mb

    def advance_net(self, mbits: float) -> None:
        """Credit ``mbits`` of transmitted payload."""
        if mbits < 0:
            raise WorkloadError("net progress must be non-negative")
        self.net_done += mbits

    def complete(self, now: float) -> None:
        """Mark the request successful."""
        if self.is_finished:
            raise WorkloadError("request already finished")
        self.state = RequestState.SUCCEEDED
        self.finish_time = now

    def fail(self, now: float, reason: FailureReason) -> None:
        """Mark the request failed with one of the paper's two reasons."""
        if self.is_finished:
            raise WorkloadError("request already finished")
        self.state = RequestState.FAILED
        self.failure_reason = reason
        self.finish_time = now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Request(id={self.request_id}, service={self.service!r}, "
            f"state={self.state.value}, t={self.arrival_time:.2f})"
        )
