"""Workload substrate: requests, load patterns, microservice profiles,
open-loop generation, and the synthetic Bitbrains trace."""

from repro.workloads.bitbrains import BitbrainsTrace, generate_bitbrains_trace
from repro.workloads.generator import ClientLoadGenerator, ServiceLoad
from repro.workloads.patterns import (
    CompositeLoad,
    ConstantLoad,
    DiurnalLoad,
    FlashCrowdLoad,
    HighBurstLoad,
    LoadPattern,
    LowBurstLoad,
    TraceLoad,
)
from repro.workloads.profiles import (
    CPU_BOUND,
    DISK_BOUND,
    MEMORY_BOUND,
    MIXED,
    NETWORK_BOUND,
    MicroserviceProfile,
)
from repro.workloads.requests import FailureReason, Request, RequestState

__all__ = [
    "Request",
    "RequestState",
    "FailureReason",
    "LoadPattern",
    "ConstantLoad",
    "LowBurstLoad",
    "HighBurstLoad",
    "TraceLoad",
    "DiurnalLoad",
    "FlashCrowdLoad",
    "CompositeLoad",
    "MicroserviceProfile",
    "CPU_BOUND",
    "MEMORY_BOUND",
    "NETWORK_BOUND",
    "MIXED",
    "DISK_BOUND",
    "ClientLoadGenerator",
    "ServiceLoad",
    "BitbrainsTrace",
    "generate_bitbrains_trace",
]
