"""Workload substrate: requests, load patterns, microservice profiles,
open-loop generation, application graphs, and the synthetic Bitbrains
trace — plus the workload/profile/app name registry."""

from repro.workloads.bitbrains import BitbrainsTrace, generate_bitbrains_trace
from repro.workloads.generator import ClientLoadGenerator, ServiceLoad
from repro.workloads.graph import (
    AppRequest,
    ApplicationSpec,
    CallEdge,
    ServiceGraph,
    ServiceSpec,
    three_tier_app,
    three_tier_graph,
)
from repro.workloads.patterns import (
    CompositeLoad,
    ConstantLoad,
    DiurnalLoad,
    FlashCrowdLoad,
    HighBurstLoad,
    LoadPattern,
    LowBurstLoad,
    TraceLoad,
)
from repro.workloads.profiles import (
    CPU_BOUND,
    DISK_BOUND,
    MEMORY_BOUND,
    MIXED,
    NETWORK_BOUND,
    MicroserviceProfile,
)
from repro.workloads.registry import (
    register_app,
    register_profile,
    register_workload,
    registered_apps,
    registered_profiles,
    registered_workloads,
    resolve_app,
    resolve_profile,
    resolve_workload,
)
from repro.workloads.requests import FailureReason, Request, RequestState

__all__ = [
    "AppRequest",
    "ApplicationSpec",
    "CallEdge",
    "ServiceGraph",
    "ServiceSpec",
    "three_tier_app",
    "three_tier_graph",
    "register_app",
    "register_profile",
    "register_workload",
    "registered_apps",
    "registered_profiles",
    "registered_workloads",
    "resolve_app",
    "resolve_profile",
    "resolve_workload",
    "Request",
    "RequestState",
    "FailureReason",
    "LoadPattern",
    "ConstantLoad",
    "LowBurstLoad",
    "HighBurstLoad",
    "TraceLoad",
    "DiurnalLoad",
    "FlashCrowdLoad",
    "CompositeLoad",
    "MicroserviceProfile",
    "CPU_BOUND",
    "MEMORY_BOUND",
    "NETWORK_BOUND",
    "MIXED",
    "DISK_BOUND",
    "ClientLoadGenerator",
    "ServiceLoad",
    "BitbrainsTrace",
    "generate_bitbrains_trace",
]
