"""Open-loop client load generator.

Clients in the paper sit behind the LOAD BALANCERs and emit requests
regardless of how the cluster is coping (open loop) — that is what makes
under-provisioning visible as queueing and timeouts rather than as reduced
offered load.  Each simulation step the generator draws, per service, a
Poisson number of arrivals with mean ``pattern.rate(t) * dt`` and stamps
each request from the service's profile.

Determinism: each service gets its own named RNG stream, so adding a service
to an experiment does not perturb the arrivals of the others.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from repro.errors import WorkloadError
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams
from repro.workloads.patterns import LoadPattern
from repro.workloads.profiles import MicroserviceProfile
from repro.workloads.requests import Request


@dataclass(frozen=True)
class ServiceLoad:
    """Binding of one service to its demand profile and arrival pattern."""

    service: str
    profile: MicroserviceProfile
    pattern: LoadPattern

    def __post_init__(self) -> None:
        if not self.service:
            raise WorkloadError("service name must be non-empty")


class ClientLoadGenerator:
    """Emits requests into a sink (normally the load balancer) each step."""

    def __init__(
        self,
        loads: list[ServiceLoad],
        rng: RngStreams,
        sink: Callable[[Request], None],
        request_seq: "itertools.count[int] | None" = None,
    ):
        names = [load.service for load in loads]
        if len(set(names)) != len(names):
            raise WorkloadError("duplicate service in load list")
        self.loads = list(loads)
        self._rng = rng
        self._sink = sink
        self.total_generated = 0
        self.generated_by_service: dict[str, int] = {load.service: 0 for load in loads}
        # Per-generator (i.e. per-run) id sequence: request ids shard the
        # balancer tier, so they must be a pure function of the run.  App
        # runs pass the run's shared sequence so internal graph calls and
        # ingress arrivals draw from one id space.
        self._request_seq = request_seq if request_seq is not None else itertools.count(1)
        # Streams are prefetched by name so the per-step arrival loop does
        # no string formatting or registry lookups (HOT004).  stream() is
        # cached by name, so draws are identical to lazy lookup.
        self._streams = [
            (load, rng.stream(f"arrivals/{load.service}")) for load in self.loads
        ]

    def on_step(self, clock: SimClock) -> None:
        """Draw this step's arrivals for every service and emit them."""
        # Arrivals are stamped at the *start* of the step interval so a
        # request can begin service within the same step it arrives.
        t0 = clock.now - clock.dt
        for load, stream in self._streams:
            mean = load.pattern.rate(t0) * clock.dt
            if mean <= 0:
                continue
            count = int(stream.poisson(mean))
            for _ in range(count):
                request = load.profile.make_request(
                    load.service, t0, stream, request_id=next(self._request_seq)
                )
                self.total_generated += 1
                self.generated_by_service[load.service] += 1
                self._sink(request)
