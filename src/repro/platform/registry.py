"""Service registry: microservice name -> live endpoints.

The LOAD BALANCERs "act as proxies for clients interacting with
microservices" (Section V); to proxy they need a live view of which replicas
can take traffic.  The registry is that view — a thin, always-fresh read
layer over the cluster's replica sets, kept separate from the cluster so the
load balancer depends on *endpoints*, not on cluster internals.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.container import Container
from repro.cluster.microservice import MicroserviceSpec
from repro.errors import ClusterError


class ServiceRegistry:
    """Live endpoint lookup for the load balancers."""

    def __init__(self, cluster: Cluster):
        self._cluster = cluster

    def services(self) -> list[str]:
        """All registered service names, sorted."""
        return sorted(self._cluster.services)

    def has_service(self, name: str) -> bool:
        """True if ``name`` is a registered microservice."""
        return name in self._cluster.services

    def endpoints(self, service: str) -> list[Container]:
        """Replicas of ``service`` able to take traffic right now.

        PENDING (still booting) and stopped replicas are excluded — traffic
        routed to a booting container would be connection-refused in the
        real system.
        """
        if not self.has_service(service):
            raise ClusterError(f"unknown service {service!r}")
        return self._cluster.service(service).serving_replicas()

    def replica_count(self, service: str) -> int:
        """Number of serving replicas (the fan-out the LB spreads over)."""
        return len(self.endpoints(service))

    def spec(self, service: str) -> MicroserviceSpec:
        """The service's deployment spec (the LB reads statefulness)."""
        if not self.has_service(service):
            raise ClusterError(f"unknown service {service!r}")
        return self._cluster.service(service).spec

    def host_of(self, container_id: str) -> str:
        """Name of the node hosting ``container_id``.

        Topology-aware routing reads this to prefer same-node downstream
        replicas for internal application-graph calls.
        """
        return self._cluster.node_of(container_id).name
