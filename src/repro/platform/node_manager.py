"""Node manager (NM).

"Each node runs a single NM, in charge of monitoring the combined
microservice resource usage of all microservices stationed on that node"
(Section V-B).  Our NM:

* samples ``docker stats`` for every hosted container each step and keeps
  per-container :class:`~repro.dockersim.stats.StatsWindow` histories,
* answers the MONITOR's query for mean usage over the last query period,
* executes vertical scaling commands by invoking ``docker update``.

Deliberately *no* decision logic lives here: the paper found that NMs making
their own locally-optimal vertical decisions fight the MONITOR and cause
oscillation, so "the decision-making logic for resource allocation resides
solely with the MONITOR and not the NMs".
"""

from __future__ import annotations

from repro.dockersim.daemon import DockerDaemon
from repro.dockersim.stats import StatsSample, StatsWindow
from repro.errors import ContainerNotFound
from repro.sim.clock import SimClock


class NodeManager:
    """Stats aggregation and vertical-op execution for one node."""

    def __init__(self, daemon: DockerDaemon, window_horizon: float = 30.0):
        self.daemon = daemon
        self.node = daemon.node
        self._windows: dict[str, StatsWindow] = {}
        self._horizon = window_horizon
        # Array-backed nodes offer a frame-based recorder that snapshots the
        # whole node per step instead of one StatsSample per container; its
        # answers are bit-identical to the per-container windows below.
        self._buffer = daemon.node.stats_buffer(window_horizon)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def on_step(self, clock: SimClock) -> None:
        """Sample every active container; drop windows of departed ones."""
        if self._buffer is not None:
            self._buffer.record(clock.now)
            return
        active_ids = set()
        for container in self.daemon.ps():
            active_ids.add(container.container_id)
            window = self._windows.setdefault(container.container_id, StatsWindow(self._horizon))
            window.record(self.daemon.stats(container.container_id, clock.now))
        for container_id in list(self._windows):
            if container_id not in active_ids:
                del self._windows[container_id]

    # ------------------------------------------------------------------
    # Queries (what the MONITOR pulls each period)
    # ------------------------------------------------------------------
    def mean_stats(self, container_id: str, window: float) -> StatsSample:
        """Mean usage of one container over the trailing ``window`` seconds."""
        if self._buffer is not None:
            return self._buffer.mean_stats(container_id, window)
        stats_window = self._windows.get(container_id)
        if stats_window is None:
            raise ContainerNotFound(f"node manager has no stats for {container_id}")
        sample = stats_window.mean_over(window)
        if sample is None:
            raise ContainerNotFound(f"no samples yet for {container_id}")
        return sample

    def tracked_containers(self) -> list[str]:
        """Ids with at least one recorded sample, sorted."""
        if self._buffer is not None:
            return self._buffer.tracked_containers()
        return sorted(self._windows)

    # ------------------------------------------------------------------
    # Commands (what the MONITOR pushes)
    # ------------------------------------------------------------------
    def apply_vertical(
        self,
        container_id: str,
        *,
        cpu_request: float | None = None,
        mem_limit: float | None = None,
        net_rate: float | None = None,
    ) -> None:
        """Execute a vertical resize via ``docker update`` / tc reshape."""
        self.daemon.update(
            container_id,
            cpu_request=cpu_request,
            mem_limit=mem_limit,
            net_rate=net_rate,
        )
