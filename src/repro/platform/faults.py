"""Dynamic machine fleet: node additions, decommissions, and crashes.

The paper's future work: "We also aim to support features such as the
dynamic addition and removal of machines" (Section VII).  This module
implements that support for the platform:

* :class:`NodeManagerFleet` — drives all node managers as one engine actor,
  so managers can be added and removed while the simulation runs;
* :class:`FaultInjector` — executes scheduled fleet changes:

  - ``schedule_crash`` — a machine dies: every container on it is lost
    (in-flight requests become removal failures) and the autoscaling policy
    must restore the affected services' replica floors elsewhere;
  - ``schedule_add`` — a machine joins and becomes a placement target.

Faults execute at the *start* of their step, before routing and compute, so
the platform sees the new world for the entire step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.dockersim.api import DockerClient
from repro.errors import ClusterError
from repro.platform.node_manager import NodeManager
from repro.sim.clock import SimClock


class NodeManagerFleet:
    """One engine actor driving a mutable set of node managers."""

    def __init__(self, managers: dict[str, NodeManager]):
        self.managers = managers

    def on_step(self, clock: SimClock) -> None:
        for name in sorted(self.managers):
            self.managers[name].on_step(clock)


@dataclass(frozen=True)
class FleetEvent:
    """One scheduled fleet change."""

    at: float
    kind: str  # "crash" | "add"
    node: str
    capacity: ResourceVector | None = None
    disk_capacity: float = 150.0


def _fault_order(event: FleetEvent) -> tuple[float, str, str]:
    """Due-event ordering: time, then kind/node so ties are deterministic.

    Module-level because the injector sorts every step (HOT001).
    """
    return (event.at, event.kind, event.node)


@dataclass
class FaultLog:
    """What the injector actually did (inspected by tests)."""

    crashes: list[tuple[float, str]] = field(default_factory=list)
    additions: list[tuple[float, str]] = field(default_factory=list)
    lost_requests: int = 0


class FaultInjector:
    """Executes scheduled machine-fleet changes against a live platform."""

    def __init__(
        self,
        cluster: Cluster,
        client: DockerClient,
        node_managers: dict[str, NodeManager],
    ):
        self.cluster = cluster
        self.client = client
        self.node_managers = node_managers
        self.log = FaultLog()
        self._pending: list[FleetEvent] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_crash(self, at: float, node: str) -> None:
        """Kill ``node`` at simulated time ``at``."""
        if at < 0:
            raise ClusterError("fault time must be non-negative")
        self._pending.append(FleetEvent(at=at, kind="crash", node=node))

    def schedule_add(
        self,
        at: float,
        node: str,
        capacity: ResourceVector | None = None,
        disk_capacity: float = 150.0,
    ) -> None:
        """Bring a new machine named ``node`` online at time ``at``."""
        if at < 0:
            raise ClusterError("fault time must be non-negative")
        self._pending.append(
            FleetEvent(at=at, kind="add", node=node, capacity=capacity, disk_capacity=disk_capacity)
        )

    @property
    def pending(self) -> int:
        """Fleet changes not yet executed."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Engine integration
    # ------------------------------------------------------------------
    def on_step(self, clock: SimClock) -> None:
        due = sorted(
            (e for e in self._pending if e.at <= clock.now),
            key=_fault_order,
        )
        if not due:
            return
        self._pending = [e for e in self._pending if e.at > clock.now]
        for event in due:
            if event.kind == "crash":
                self._crash(event.node, clock.now)
            else:
                self._add(event)

    # ------------------------------------------------------------------
    def _crash(self, name: str, now: float) -> None:
        if name not in self.cluster.nodes:
            raise ClusterError(f"cannot crash unknown node {name!r}")
        casualties = self.cluster.remove_node(name, now)
        self.client.untrack_node(name)
        self.node_managers.pop(name, None)
        self.log.crashes.append((now, name))
        self.log.lost_requests += len(casualties)

    def _add(self, event: FleetEvent) -> None:
        capacity = event.capacity or ResourceVector(4.0, 8192.0, 1000.0)
        node = Node(event.node, capacity, self.cluster.overheads, disk_capacity=event.disk_capacity)
        self.cluster.add_node(node)
        self.client.track_node(event.node)
        self.node_managers[event.node] = NodeManager(self.client.daemons[event.node])
        self.log.additions.append((event.at, event.node))
