"""The autoscaler platform from Section V: MONITOR, NODE MANAGERs, and
LOAD BALANCERs, wired over the simulated cluster."""

from repro.platform.faults import FaultInjector, NodeManagerFleet
from repro.platform.lb_tier import LoadBalancerTier
from repro.platform.load_balancer import LoadBalancer, RoutingPolicy
from repro.platform.monitor import Monitor
from repro.platform.node_manager import NodeManager
from repro.platform.registry import ServiceRegistry

__all__ = [
    "LoadBalancer",
    "LoadBalancerTier",
    "RoutingPolicy",
    "Monitor",
    "NodeManager",
    "ServiceRegistry",
    "FaultInjector",
    "NodeManagerFleet",
]
