"""Distributed load-balancer tier.

The paper dedicates five of its 24 machines to "distributed server-side
LOAD BALANCERs (LBs) [that] act as proxies for clients" (Sections V and
VI).  Distribution matters for realism: each proxy keeps *its own* routing
state (round-robin counters, backlogs), so traffic spreads slightly less
evenly than one omniscient balancer would manage — real fleets always pay a
little balance skew for horizontal control planes.

:class:`LoadBalancerTier` shards clients over ``n`` independent
:class:`~repro.platform.load_balancer.LoadBalancer` instances by request id
(clients stick to one proxy, as DNS round-robin would arrange) and presents
the same ``submit`` / ``on_step`` / accounting surface, so the runner can
swap it in wherever a single balancer was used.
"""

from __future__ import annotations

from typing import Callable

from repro.config import OverheadModel
from repro.errors import ClusterError
from repro.platform.load_balancer import LoadBalancer, RoutingPolicy
from repro.platform.registry import ServiceRegistry
from repro.sim.clock import SimClock
from repro.workloads.requests import Request


class LoadBalancerTier:
    """``n`` independent proxies behind one ingress surface."""

    def __init__(
        self,
        registry: ServiceRegistry,
        overheads: OverheadModel,
        failure_sink: Callable[[Request], None],
        policy: RoutingPolicy = RoutingPolicy.WEIGHTED_CPU,
        n_balancers: int = 5,
    ):
        if n_balancers < 1:
            raise ClusterError("n_balancers must be >= 1")
        self.balancers = [
            LoadBalancer(registry, overheads, failure_sink, policy=policy)
            for _ in range(n_balancers)
        ]

    # ------------------------------------------------------------------
    # Ingress surface (mirrors LoadBalancer's)
    # ------------------------------------------------------------------
    def shard_of(self, request: Request) -> int:
        """Which proxy a client lands on (sticky by request id)."""
        return request.request_id % len(self.balancers)

    def submit(self, request: Request) -> None:
        """Route via the client's proxy."""
        self.balancers[self.shard_of(request)].submit(request)

    def on_step(self, clock: SimClock) -> None:
        """Drive every proxy's backlog handling."""
        for balancer in self.balancers:
            balancer.on_step(clock)

    # ------------------------------------------------------------------
    # Accounting (aggregated)
    # ------------------------------------------------------------------
    def backlog(self) -> int:
        """Requests waiting across all proxies."""
        return sum(b.backlog() for b in self.balancers)

    @property
    def total_routed(self) -> int:
        """Requests routed across all proxies."""
        return sum(b.total_routed for b in self.balancers)

    @property
    def total_rejected(self) -> int:
        """Requests expired un-routed across all proxies."""
        return sum(b.total_rejected for b in self.balancers)

    @property
    def policy(self) -> RoutingPolicy:
        """The routing policy all proxies share."""
        return self.balancers[0].policy

    def distribution_overhead(self, n_replicas: int) -> float:
        """Same overhead model as a single balancer (delegated)."""
        return self.balancers[0].distribution_overhead(n_replicas)

    def consistency_overhead(self, n_replicas: int) -> float:
        """Same consistency model as a single balancer (delegated)."""
        return self.balancers[0].consistency_overhead(n_replicas)
