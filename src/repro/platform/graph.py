"""Cross-tier routing for application graphs: the graph router actor.

One ingress request to a multi-tier :class:`~repro.workloads.graph.
ApplicationSpec` consumes resources along its call chain.  The
:class:`GraphRouter` is the engine actor that drives that lifecycle:

* **ingress** — the load generator's sink for app runs.  Each arriving
  request is adopted as the root of an :class:`~repro.workloads.graph.
  AppRequest` tree, stamped with its tier's downstream fan-out, and
  forwarded to the front load-balancer tier.
* **dispatch** — when a tier request finishes its local phases (CPU,
  disk, network) it is held in flight by ``downstream_pending`` (see
  :meth:`Container.settle_requests`); the router then spawns its
  downstream calls, one per :class:`~repro.workloads.graph.CallEdge`
  multiplicity, each routed through that edge's own
  :class:`GraphEdgeBalancer`.
* **join** — when a downstream call finishes (completes, times out, or
  dies with its replica), the router decrements the parent's pending
  count; a failure marks ``downstream_failed`` so the parent fails as a
  connection failure.  The parent settles only after its slowest
  dependency — its completion latency therefore *includes* that
  dependency's latency, and a saturated downstream tier back-pressures
  upstream occupancy and response times.

Determinism: records are scanned in insertion order; children are
stamped from per-edge named RNG streams (``graph/caller->callee``) and
take ids from the run's single request-id sequence shared with the load
generator, so one app run is a pure function of (spec, seed) on either
engine backend.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

import numpy as np

from repro.config import OverheadModel
from repro.platform.load_balancer import LoadBalancer, RoutingPolicy
from repro.platform.registry import ServiceRegistry
from repro.platform.routing import resolve_routing
from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams
from repro.workloads.graph import ApplicationSpec, AppRequest
from repro.workloads.profiles import MicroserviceProfile
from repro.workloads.requests import Request, RequestState

if TYPE_CHECKING:
    from repro.telemetry.hub import RunTelemetry


class GraphEdgeBalancer(LoadBalancer):
    """One load balancer per graph edge.

    Reuses the full :class:`LoadBalancer` machinery — routing policies,
    backlog with deadline expiry, distribution/consistency overheads —
    scoped to a single (caller, callee) edge so each edge can run its own
    policy (``CallEdge.routing``), including the topology-aware pick that
    reads the caller-node hint stamped on internal requests.
    """

    def __init__(
        self,
        edge_label: str,
        registry: ServiceRegistry,
        overheads: OverheadModel,
        failure_sink: Callable[[Request], None],
        policy: RoutingPolicy,
    ):
        super().__init__(registry, overheads, failure_sink, policy)
        self.edge_label = edge_label


class _EdgePlan:
    """Prefetched per-edge dispatch state (no per-step string work: HOT004)."""

    __slots__ = ("callee", "calls", "profile", "stream", "balancer", "callee_fan_out", "label", "wants_origin")

    def __init__(
        self,
        callee: str,
        calls: int,
        profile: MicroserviceProfile,
        stream: np.random.Generator,
        balancer: GraphEdgeBalancer,
        callee_fan_out: int,
        label: str,
        wants_origin: bool,
    ) -> None:
        self.callee = callee
        self.calls = calls
        self.profile = profile
        self.stream = stream
        self.balancer = balancer
        self.callee_fan_out = callee_fan_out
        self.label = label
        self.wants_origin = wants_origin


class _TierRecord:
    """One live tier request in an app tree."""

    __slots__ = ("request", "parent", "app", "dispatched", "joined")

    def __init__(self, request: Request, parent: Request | None, app: AppRequest) -> None:
        self.request = request
        self.parent = parent
        self.app = app
        self.dispatched = False
        self.joined = False


def _local_work_done(request: Request) -> bool:
    """True once a running request's own CPU/disk/net phases are finished."""
    return (
        request.state is RequestState.RUNNING
        and request.cpu_remaining <= 1e-12
        and request.disk_remaining <= 1e-12
        and request.net_remaining <= 1e-12
    )


class GraphRouter:
    """Engine actor that dispatches and joins cross-tier calls.

    Registered by ``Simulation.build`` right after the cluster phase, so
    a tier whose local work finished this step dispatches its downstream
    calls the same step, and finished children join their parents before
    node managers and the monitor observe the cluster.
    """

    def __init__(
        self,
        app: ApplicationSpec,
        registry: ServiceRegistry,
        overheads: OverheadModel,
        rng: RngStreams,
        failure_sink: Callable[[Request], None],
        lb_submit: Callable[[Request], None],
        request_seq: Iterator[int],
        *,
        routing: "RoutingPolicy | str" = RoutingPolicy.WEIGHTED_CPU,
        telemetry: "RunTelemetry | None" = None,
    ) -> None:
        from repro.workloads.registry import resolve_profile

        self.app = app
        self._registry = registry
        self._failure_sink = failure_sink
        self._lb_submit = lb_submit
        self._request_seq = request_seq
        self._telemetry = telemetry
        self._now = 0.0
        self._records: dict[int, _TierRecord] = {}
        self.total_ingress = 0
        self.total_internal = 0
        self.apps_completed = 0
        self.apps_failed = 0

        graph = app.graph
        default_policy = resolve_routing(routing)
        # Per-caller dispatch plans and the flat balancer list, both in the
        # pinned topological / callee-sorted order.  Streams, profiles, and
        # labels are prefetched here so the per-step path formats nothing.
        self._fan_out: dict[str, int] = {}
        self._plans: dict[str, tuple[_EdgePlan, ...]] = {}
        self._balancers: list[GraphEdgeBalancer] = []
        for caller in graph.topological_order():
            self._fan_out[caller] = graph.fan_out(caller)
            plans = []
            for edge in graph.out_edges(caller):
                policy = default_policy if edge.routing is None else resolve_routing(edge.routing)
                label = f"{edge.caller}->{edge.callee}"
                balancer = GraphEdgeBalancer(
                    label, registry, overheads, self._on_child_rejected, policy
                )
                plans.append(
                    _EdgePlan(
                        callee=edge.callee,
                        calls=edge.calls,
                        profile=resolve_profile(graph.service(edge.callee).profile),
                        stream=rng.stream(f"graph/{label}"),
                        balancer=balancer,
                        callee_fan_out=graph.fan_out(edge.callee),
                        label=label,
                        wants_origin=policy is RoutingPolicy.TOPOLOGY,
                    )
                )
                self._balancers.append(balancer)
            self._plans[caller] = tuple(plans)

    # ------------------------------------------------------------------
    # Ingress (the load generator's sink in app runs)
    # ------------------------------------------------------------------
    def ingress(self, request: Request) -> None:
        """Adopt one user request as an app-tree root and forward it."""
        request.downstream_pending = self._fan_out[request.service]
        record = _TierRecord(request, None, AppRequest(app=self.app.name, root=request))
        self._records[request.request_id] = record
        self.total_ingress += 1
        self._lb_submit(request)

    # ------------------------------------------------------------------
    # Engine integration
    # ------------------------------------------------------------------
    def on_step(self, clock: SimClock) -> None:
        """Drive edge balancers, join finished calls, dispatch new ones."""
        self._now = clock.now
        for balancer in self._balancers:
            balancer.on_step(clock)
        if not self._records:
            return
        finished_ids: list[int] = []
        for record in list(self._records.values()):
            request = record.request
            if request.is_finished:
                self._join(record)
                finished_ids.append(request.request_id)
            elif not record.dispatched and _local_work_done(request):
                record.dispatched = True
                self._dispatch(record)
        for request_id in finished_ids:
            del self._records[request_id]

    # ------------------------------------------------------------------
    # Tree mechanics
    # ------------------------------------------------------------------
    def _dispatch(self, record: _TierRecord) -> None:
        """Spawn the downstream calls of a tier whose local work is done."""
        parent = record.request
        plans = self._plans[parent.service]
        if not plans:
            return
        origin: str | None = None
        app = record.app
        telemetry = self._telemetry
        for plan in plans:
            if plan.wants_origin and origin is None and parent.container_id is not None:
                origin = self._registry.host_of(parent.container_id)
            for _ in range(plan.calls):
                child = plan.profile.make_request(
                    plan.callee, self._now, plan.stream, request_id=next(self._request_seq)
                )
                child.ingress = False
                child.downstream_pending = plan.callee_fan_out
                child.origin_node = origin
                self._records[child.request_id] = _TierRecord(child, parent, app)
                app.spawned += 1
                app.live_internal += 1
                self.total_internal += 1
                if telemetry is not None:
                    telemetry.observe_graph_call(plan.label)
                plan.balancer.submit(child)

    def _join(self, record: _TierRecord) -> None:
        """Propagate one finished tier request to its parent (idempotent)."""
        if record.joined:
            return
        record.joined = True
        request = record.request
        failed = request.state is RequestState.FAILED
        parent = record.parent
        app = record.app
        if parent is None:
            # Root finished: the whole tree's end-to-end outcome.
            if failed:
                self.apps_failed += 1
            else:
                self.apps_completed += 1
            if self._telemetry is not None:
                self._telemetry.observe_app_request(request)
            return
        app.live_internal -= 1
        if failed:
            app.internal_failed += 1
        else:
            app.internal_completed += 1
        if not parent.is_finished:
            parent.downstream_pending -= 1
            if failed:
                parent.downstream_failed = True

    def _on_child_rejected(self, request: Request) -> None:
        """Failure sink for edge balancers (backlog expiry).

        Joins the dead call into its tree immediately, then forwards to
        the run-level failure sink so metrics and telemetry account it.
        """
        record = self._records.get(request.request_id)
        if record is not None:
            self._join(record)
        self._failure_sink(request)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def edge_stats(self) -> dict[str, dict[str, int]]:
        """Routed/rejected/backlog per edge, in pinned edge order."""
        return {
            balancer.edge_label: {
                "routed": balancer.total_routed,
                "rejected": balancer.total_rejected,
                "backlog": balancer.backlog(),
            }
            for balancer in self._balancers
        }

    def live_records(self) -> int:
        """Tier requests currently tracked (roots + internal calls)."""
        return len(self._records)
