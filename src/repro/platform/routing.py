"""The routing-policy registry: one place where routing names become policies.

Mirrors :mod:`repro.core.registry` (policies) and
:mod:`repro.engine_core.backend` (engines): the CLI's ``--routing`` flag,
per-edge ``CallEdge.routing`` names in an application graph, and the
run-level :class:`~repro.experiments.spec.RunSpec` field all resolve names
here, and :func:`register_routing` lets extension code alias or add
spellings for :class:`~repro.platform.load_balancer.RoutingPolicy` members.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.platform.load_balancer import RoutingPolicy

#: The default routing policy name (the paper's weighted round-robin).
DEFAULT_ROUTING = RoutingPolicy.WEIGHTED_CPU.value


class _RoutingRegistry:
    """Name -> routing-policy table, populated with the built-ins.

    The table lives on an instance (not a bare module dict) so the lookup
    paths that run inside sweep workers carry no module-level mutable
    state; it is fully populated at import time and only read afterwards,
    so every worker resolves identically.
    """

    def __init__(self) -> None:
        self._entries: dict[str, RoutingPolicy] = {
            policy.value: policy for policy in RoutingPolicy
        }

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def add(self, name: str, policy: RoutingPolicy, *, replace: bool) -> None:
        if not name:
            raise ExperimentError("routing name must be non-empty")
        if not isinstance(policy, RoutingPolicy):
            raise ExperimentError(f"routing {name!r} must name a RoutingPolicy member")
        if name in self._entries and not replace:
            raise ExperimentError(f"routing {name!r} is already registered")
        self._entries[name] = policy

    def resolve(self, routing: str) -> RoutingPolicy:
        try:
            return self._entries[routing]
        except KeyError:
            raise ExperimentError(
                f"unknown routing policy {routing!r}; known: {self.names()}"
            ) from None


_REGISTRY = _RoutingRegistry()


def registered_routings() -> tuple[str, ...]:
    """Every resolvable routing name, sorted."""
    return _REGISTRY.names()


def register_routing(name: str, policy: RoutingPolicy, *, replace: bool = False) -> None:
    """Add (or alias) a routing policy under ``name``.

    Raises :class:`~repro.errors.ExperimentError` if the name is taken and
    ``replace`` is not set, or if ``policy`` is not a ``RoutingPolicy``.
    """
    _REGISTRY.add(name, policy, replace=replace)


def resolve_routing(routing: "RoutingPolicy | str") -> RoutingPolicy:
    """Coerce a routing name (or an already-resolved member) to a policy."""
    if isinstance(routing, RoutingPolicy):
        return routing
    return _REGISTRY.resolve(routing)
