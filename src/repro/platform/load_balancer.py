"""Server-side load balancer.

"Distributed server-side LOAD BALANCERs (LBs) act as proxies for clients
interacting with microservices" (Section V).  The paper ran five LB nodes;
since the LB tier was never the bottleneck in their evaluation we model it
as one logical balancer with pluggable routing policies.

Responsibilities:

* route each arriving request to a serving replica,
* hold requests briefly while a service has no live replica (e.g. all
  replicas booting after a scale-from-zero) and fail them as *connection
  failures* when they time out un-routed,
* stamp each routed request with the replica-distribution overhead factor
  (Section III-A's logarithmic cost of fanning out over more replicas).
"""

from __future__ import annotations

import enum
import math
from collections import deque
from typing import Callable

from repro.cluster.container import Container
from repro.config import OverheadModel
from repro.errors import ClusterError
from repro.platform.registry import ServiceRegistry
from repro.sim.clock import SimClock
from repro.workloads.requests import FailureReason, Request


class RoutingPolicy(enum.Enum):
    """How the LB spreads requests over replicas."""

    ROUND_ROBIN = "round_robin"
    LEAST_OUTSTANDING = "least_outstanding"
    WEIGHTED_CPU = "weighted_cpu"  # favour replicas with larger CPU requests
    #: Prefer replicas on the caller's node (no network hop for internal
    #: graph calls), spilling to remote replicas once the local queue,
    #: inflated by the co-location contention model, gets deeper than the
    #: remote one.  Falls back to least-outstanding for requests with no
    #: caller context (e.g. ingress traffic).
    TOPOLOGY = "topology"


def _least_outstanding_key(container: Container) -> tuple[int, str]:
    """Fewest in-flight requests first, container id breaking ties.

    Module-level: ``_pick`` runs for every routed request every step, and a
    per-call lambda would allocate a fresh function object (HOT001).
    """
    return (len(container.inflight), container.container_id)


def _weighted_cpu_key(container: Container) -> tuple[float, str]:
    """Largest CPU request per outstanding request wins, ids break ties."""
    return (container.cpu_request / (len(container.inflight) + 1), container.container_id)


class LoadBalancer:
    """Routes requests to replicas; failed routing becomes connection failures."""

    def __init__(
        self,
        registry: ServiceRegistry,
        overheads: OverheadModel,
        failure_sink: Callable[[Request], None],
        policy: RoutingPolicy = RoutingPolicy.ROUND_ROBIN,
    ):
        self.registry = registry
        self.overheads = overheads
        self.policy = policy
        self._failure_sink = failure_sink
        self._pending: deque[Request] = deque()
        self._rr_counters: dict[str, int] = {}
        self._now = 0.0
        self.total_routed = 0
        self.total_rejected = 0

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Accept a client request; route now or park it in the backlog."""
        if not self.registry.has_service(request.service):
            raise ClusterError(f"request for unknown service {request.service!r}")
        if not self._try_route(request):
            self._pending.append(request)

    def backlog(self) -> int:
        """Requests waiting for a live replica."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Engine integration
    # ------------------------------------------------------------------
    def on_step(self, clock: SimClock) -> None:
        """Retry the backlog; expire requests that out-waited their timeout."""
        self._now = clock.now
        still_waiting: deque[Request] = deque()
        while self._pending:
            request = self._pending.popleft()
            if clock.now >= request.deadline():
                request.fail(clock.now, FailureReason.CONNECTION)
                self.total_rejected += 1
                self._failure_sink(request)
            elif not self._try_route(request):
                still_waiting.append(request)
        self._pending = still_waiting

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _try_route(self, request: Request) -> bool:
        replicas = self.registry.endpoints(request.service)
        if not replicas:
            return False
        replica = self._pick_for(request, replicas)
        overhead = self.distribution_overhead(len(replicas))
        spec = self.registry.spec(request.service)
        if getattr(spec, "stateful", False):
            overhead *= self.consistency_overhead(len(replicas))
        replica.accept(request, self._now, overhead_factor=overhead)
        self.total_routed += 1
        return True

    def _pick_for(self, request: Request, replicas: list[Container]) -> Container:
        """Request-aware pick hook.

        The base balancer only needs the service name, but subclasses (the
        graph's per-edge balancers) and the topology policy read routing
        hints stamped on the request itself.
        """
        if self.policy is RoutingPolicy.TOPOLOGY:
            return self._pick_topology(request, replicas)
        return self._pick(request.service, replicas)

    def _pick_topology(self, request: Request, replicas: list[Container]) -> Container:
        """Same-node-preferring pick for internal graph calls.

        A same-node replica serves the call without a network hop, but it
        competes for the caller's cores — so we stay local only while the
        local queue, inflated by the co-location contention slope, is no
        deeper than the remote queue inflated by the contention cap
        (``config.OverheadModel``'s Section III co-location model).
        """
        origin = request.origin_node
        if origin is None:
            return min(replicas, key=_least_outstanding_key)
        local: Container | None = None
        remote: Container | None = None
        host_of = self.registry.host_of
        for replica in replicas:
            if host_of(replica.container_id) == origin:
                if local is None or _least_outstanding_key(replica) < _least_outstanding_key(local):
                    local = replica
            elif remote is None or _least_outstanding_key(replica) < _least_outstanding_key(remote):
                remote = replica
        if local is not None and remote is not None:
            local_cost = (len(local.inflight) + 1) * (1.0 + self.overheads.colocation_contention)
            remote_cost = (len(remote.inflight) + 1) * self.overheads.colocation_cap
            return local if local_cost <= remote_cost else remote
        if local is not None:
            return local
        if remote is not None:
            return remote
        # Unreachable (callers never pass an empty replica list), but keeps
        # the signature total without an assert.
        return min(replicas, key=_least_outstanding_key)

    def _pick(self, service: str, replicas: list[Container]) -> Container:
        if self.policy is RoutingPolicy.ROUND_ROBIN:
            counter = self._rr_counters.get(service, 0)
            self._rr_counters[service] = counter + 1
            return replicas[counter % len(replicas)]
        if self.policy is RoutingPolicy.LEAST_OUTSTANDING:
            return min(replicas, key=_least_outstanding_key)
        # WEIGHTED_CPU: deterministic weighted round-robin — pick the replica
        # with the largest CPU request per outstanding request.
        return max(replicas, key=_weighted_cpu_key)

    def distribution_overhead(self, n_replicas: int) -> float:
        """Service-time multiplier for a service fanned out to ``n`` replicas.

        Section III-A: replica distribution across nodes costs a logarithmic
        overhead — ``1 + coeff * ln(n)`` (1.0 for a single replica).
        """
        if n_replicas < 1:
            raise ClusterError("n_replicas must be >= 1")
        return 1.0 + self.overheads.distribution_log_coeff * math.log(n_replicas)

    def consistency_overhead(self, n_replicas: int) -> float:
        """Service-time multiplier for a *stateful* service at ``n`` replicas.

        Section IV-B: preserving state across replicas "introduces the need
        for a consistency model" — every write must reach every copy, so
        each extra replica adds a fixed synchronization fraction.
        """
        if n_replicas < 1:
            raise ClusterError("n_replicas must be >= 1")
        return 1.0 + self.overheads.state_sync_overhead * (n_replicas - 1)
