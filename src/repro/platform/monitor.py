"""The MONITOR: central arbiter of the autoscaling platform (Section V-C).

"The MONITOR is the central arbiter of the system.  The Monitor's
centralized view puts it in the most suitable position for determining and
administering resource scaling decisions across all microservices running
within the cluster."

Each query period (5 s in the paper's experiments) the monitor:

1. builds a :class:`~repro.core.view.ClusterView` from the node managers'
   averaged ``docker stats`` windows,
2. asks the configured :class:`~repro.core.policy.AutoscalingPolicy` for
   actions ("the use of different scaling algorithms is also supported ...
   and can be specified at initialization"), and
3. executes them — vertical resizes through the owning node manager,
   horizontal adds through placement + ``docker run``, removals through
   ``docker rm``.

Every step (not just on ticks) it reaps OOM-killed containers, standing in
for the NMs' liveness checks.

Execution is defensive: a policy decision computed from a 5-second-old
snapshot can be stale (the node filled up meanwhile), so failed actions are
counted and skipped rather than crashing the control loop — exactly how a
production controller behaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.cluster.resources import ResourceVector
from repro.config import SimulationConfig
from repro.core.actions import (
    AddReplica,
    MigrateReplica,
    RemoveReplica,
    ScalingAction,
    VerticalScale,
)
from repro.core.policy import AutoscalingPolicy
from repro.core.registry import resolve_policy
from repro.core.view import ClusterView, NodeView, ReplicaView, ServiceView
from repro.cluster.placement import PlacementStrategy, SpreadPlacement
from repro.dockersim.api import DockerClient
from repro.errors import ContainerNotFound, DockerSimError, PolicyError, ReproError
from repro.metrics.collector import MetricsCollector
from repro.metrics.events import EventKind, ScalingEvent
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.platform.node_manager import NodeManager
from repro.sanitizer.api import NULL_SANITIZER, Sanitizer
from repro.sim.clock import SimClock
from repro.telemetry.hub import RunTelemetry
from repro.units import same_quantity


@dataclass
class MonitorLog:
    """Operational counters for one run (inspected by tests/benches)."""

    ticks: int = 0
    actions_applied: int = 0
    actions_failed: int = 0
    placement_failures: int = 0
    migrations: int = 0
    failures: list[str] = field(default_factory=list)


#: Telemetry label value per applied action type (``scaling_actions{kind=}``).
_ACTION_KINDS: dict[type, str] = {
    VerticalScale: "vertical",
    AddReplica: "scale_up",
    RemoveReplica: "scale_down",
    MigrateReplica: "migrate",
}


class Monitor:
    """Builds views on a period, delegates to the policy, applies actions."""

    def __init__(
        self,
        cluster: Cluster,
        client: DockerClient,
        node_managers: dict[str, NodeManager],
        policy: AutoscalingPolicy,
        config: SimulationConfig,
        collector: MetricsCollector,
        placement: PlacementStrategy | None = None,
        tracer: Tracer = NULL_TRACER,
        telemetry: RunTelemetry | None = None,
        sanitizer: Sanitizer = NULL_SANITIZER,
    ):
        self.cluster = cluster
        self.client = client
        self.node_managers = node_managers
        self.policy = policy
        self.config = config
        self.collector = collector
        self.placement = placement or SpreadPlacement()
        self.log = MonitorLog()
        self.tracer = tracer
        self.telemetry = telemetry
        self.sanitizer = sanitizer
        policy.set_tracer(tracer)
        self._next_tick = config.monitor_period

    # ------------------------------------------------------------------
    # Engine integration
    # ------------------------------------------------------------------
    def on_step(self, clock: SimClock) -> None:
        """Reap dead containers every step; run the policy on the period."""
        corpses = self.client.reap(clock.now)
        if corpses:
            self.collector.record_oom(len(corpses))
            if self.telemetry is not None:
                self.telemetry.oom_kills.inc(len(corpses))
            for corpse in corpses:
                self.collector.events.record(
                    ScalingEvent(
                        time=clock.now,
                        kind=EventKind.OOM_KILL,
                        service=corpse.service,
                        container_id=corpse.container_id,
                        detail=f"limit {corpse.mem_limit:.0f} MiB exceeded",
                    )
                )
        if clock.now + 1e-9 < self._next_tick:
            return
        self._next_tick += self.config.monitor_period
        self.tick(clock.now)

    def set_policy(self, policy: AutoscalingPolicy | str) -> None:
        """Swap the scaling algorithm at runtime (object or registered name).

        Section V-C: the algorithm "can be specified at initialization or
        through the command-line interface" — operators switch algorithms on
        a live cluster.  The new policy starts with fresh state (its own
        interval guards), which matches restarting the algorithm process.
        """
        self.policy = resolve_policy(policy, self.config)
        self.policy.set_tracer(self.tracer)

    def tick(self, now: float) -> list[ScalingAction]:
        """One full monitor round: view -> decide -> apply."""
        self.log.ticks += 1
        view = self.build_view(now)
        if self.sanitizer.enabled:
            # Audit the snapshot before the policy plans against it: the
            # view's allocation vectors seed the NodeLedger balances.
            self.sanitizer.check_view(now=now, view=view)
        tracing = self.tracer.enabled
        applied_before = self.log.actions_applied
        failed_before = self.log.actions_failed
        if tracing:
            self.tracer.begin_tick(
                now=now,
                policy=self.policy.name,
                digest=view.digest(),
                services=len(view.services),
                nodes=len(view.nodes),
                replicas=sum(s.replica_count for s in view.services),
            )
        actions = self.policy.decide(view)
        for action in actions:
            self._apply(action, now)
        if self.telemetry is not None:
            self.telemetry.monitor_ticks.inc()
            if actions:
                self.telemetry.monitor_actions_emitted.inc(len(actions))
        if tracing:
            self.tracer.end_tick(
                emitted=len(actions),
                applied=self.log.actions_applied - applied_before,
                failed=self.log.actions_failed - failed_before,
            )
        return actions

    # ------------------------------------------------------------------
    # View construction
    # ------------------------------------------------------------------
    def build_view(self, now: float) -> ClusterView:
        """Snapshot every service and node from the NMs' stats windows."""
        window = self.config.monitor_period
        services = []
        for service in self.cluster.sorted_services():
            replica_views = []
            for container in service.active_replicas():
                node_name = self.client.node_name_of(container.container_id)
                if container.is_serving:
                    stats = self._mean_stats(node_name, container.container_id, window)
                    if stats is None:
                        continue  # raced with removal; skip this round
                    replica_views.append(
                        ReplicaView(
                            container_id=container.container_id,
                            service=service.name,
                            node=node_name,
                            booting=False,
                            cpu_request=stats.cpu_request,
                            cpu_usage=stats.cpu_usage,
                            mem_limit=stats.mem_limit,
                            mem_usage=stats.mem_usage,
                            net_rate=stats.net_rate,
                            net_usage=stats.net_usage,
                            disk_quota=stats.disk_quota,
                            disk_usage=stats.disk_usage,
                        )
                    )
                else:  # PENDING: reservation exists, usage signal does not
                    replica_views.append(
                        ReplicaView(
                            container_id=container.container_id,
                            service=service.name,
                            node=node_name,
                            booting=True,
                            cpu_request=container.cpu_request,
                            cpu_usage=0.0,
                            mem_limit=container.mem_limit,
                            mem_usage=0.0,
                            net_rate=container.net_rate,
                            net_usage=0.0,
                            disk_quota=container.disk_quota,
                            disk_usage=0.0,
                        )
                    )
            spec = service.spec
            services.append(
                ServiceView(
                    name=service.name,
                    min_replicas=spec.min_replicas,
                    max_replicas=spec.max_replicas,
                    target_utilization=spec.target_utilization,
                    base_cpu_request=spec.cpu_request,
                    base_mem_limit=spec.mem_limit,
                    base_net_rate=spec.net_rate,
                    replicas=tuple(replica_views),
                )
            )

        nodes = tuple(
            NodeView(
                name=node.name,
                capacity=node.capacity,
                allocated=node.allocated(),
                services=tuple(sorted({c.service for c in node.active_containers()})),
            )
            for node in self.cluster.sorted_nodes()
        )
        return ClusterView(now=now, services=tuple(services), nodes=nodes)

    def _mean_stats(self, node_name: str, container_id: str, window: float):
        manager = self.node_managers.get(node_name)
        if manager is None:
            return None
        try:
            return manager.mean_stats(container_id, window)
        except ContainerNotFound:
            return None

    # ------------------------------------------------------------------
    # Action execution
    # ------------------------------------------------------------------
    def _apply(self, action: ScalingAction, now: float) -> None:
        try:
            if isinstance(action, VerticalScale):
                self._apply_vertical(action, now)
            elif isinstance(action, AddReplica):
                self._apply_add(action, now)
            elif isinstance(action, RemoveReplica):
                self._apply_remove(action, now)
            elif isinstance(action, MigrateReplica):
                moved = self.client.migrate_replica(action.container_id, action.target_node, now)
                self.log.migrations += 1
                self.collector.events.record(
                    ScalingEvent(
                        time=now,
                        kind=EventKind.MIGRATE,
                        service=moved.service,
                        container_id=action.container_id,
                        reason=action.reason,
                        detail=f"to {action.target_node}",
                    )
                )
            else:
                raise PolicyError(f"unknown action type {type(action).__name__}")
            self.log.actions_applied += 1
            if self.telemetry is not None:
                self.telemetry.monitor_actions_applied.inc()
                self.telemetry.scaling_actions.inc(kind=_ACTION_KINDS[type(action)])
        except ReproError as exc:
            self.log.actions_failed += 1
            if self.telemetry is not None:
                self.telemetry.monitor_actions_failed.inc()
            self.log.failures.append(f"{now:.1f}s {type(action).__name__}: {exc}")
            self.collector.events.record(
                ScalingEvent(
                    time=now,
                    kind=EventKind.ACTION_FAILED,
                    service=getattr(action, "service", ""),
                    container_id=getattr(action, "container_id", ""),
                    reason=getattr(action, "reason", ""),
                    detail=str(exc),
                )
            )

    def _apply_vertical(self, action: VerticalScale, now: float) -> None:
        """Resize in place, clamping to node headroom (the snapshot the
        policy planned against may be stale by execution time)."""
        node_name = self.client.node_name_of(action.container_id)
        manager = self.node_managers[node_name]
        container = manager.node.containers[action.container_id]

        headroom = manager.node.available()
        cpu = action.cpu_request
        if cpu is not None and cpu > container.cpu_request:
            cpu = min(cpu, container.cpu_request + headroom.cpu)
        mem = action.mem_limit
        if mem is not None and mem > container.mem_limit:
            mem = min(mem, container.mem_limit + headroom.memory)
        net = action.net_rate
        if net is not None and net > container.net_rate:
            net = min(net, container.net_rate + headroom.network)

        before = (container.cpu_request, container.mem_limit, container.net_rate)
        manager.apply_vertical(action.container_id, cpu_request=cpu, mem_limit=mem, net_rate=net)
        self.collector.record_vertical()
        self.collector.events.record(
            ScalingEvent(
                time=now,
                kind=EventKind.VERTICAL,
                service=container.service,
                container_id=container.container_id,
                reason=action.reason,
                detail=_vertical_detail(before, cpu, mem, net),
            )
        )

    def _apply_add(self, action: AddReplica, now: float) -> None:
        request = ResourceVector(action.cpu_request, action.mem_limit, action.net_rate)
        node_name = action.node
        if node_name is not None and not self.cluster.node(node_name).can_fit(request):
            node_name = None  # pinned node filled up since the snapshot
        if node_name is None:
            exclude = action.service if action.exclude_hosting else None
            chosen = self.placement.choose(
                self.cluster.sorted_nodes(), request, exclude_service=exclude
            )
            if chosen is None and action.exclude_hosting:
                # Anti-affinity is a preference, capacity is a constraint.
                chosen = self.placement.choose(self.cluster.sorted_nodes(), request)
            if chosen is None:
                self.log.placement_failures += 1
                raise DockerSimError(
                    f"no node can host a {action.service} replica needing {request}"
                )
            node_name = chosen.name
        created = self.client.run_replica(
            action.service,
            node_name,
            cpu_request=action.cpu_request,
            mem_limit=action.mem_limit,
            net_rate=action.net_rate,
            now=now,
        )
        self.collector.record_scale_up()
        self.collector.events.record(
            ScalingEvent(
                time=now,
                kind=EventKind.SCALE_UP,
                service=action.service,
                container_id=created.container_id,
                reason=action.reason,
                detail=f"on {node_name}, cpu {action.cpu_request:.2f}",
            )
        )

    def _apply_remove(self, action: RemoveReplica, now: float) -> None:
        node_name = self.client.node_name_of(action.container_id)
        container = self.cluster.node(node_name).containers[action.container_id]
        self.client.remove_replica(action.container_id, now)
        self.collector.record_scale_down()
        self.collector.events.record(
            ScalingEvent(
                time=now,
                kind=EventKind.SCALE_DOWN,
                service=container.service,
                container_id=action.container_id,
                reason=action.reason,
                detail=f"from {node_name}",
            )
        )


def _vertical_detail(
    before: tuple[float, float, float],
    cpu: float | None,
    mem: float | None,
    net: float | None,
) -> str:
    """Human-readable summary of what a vertical resize actually changed."""
    changes = []
    if cpu is not None and not same_quantity(cpu, before[0]):
        changes.append(f"cpu {before[0]:.2f}->{cpu:.2f}")
    if mem is not None and not same_quantity(mem, before[1]):
        changes.append(f"mem {before[1]:.0f}->{mem:.0f}")
    if net is not None and not same_quantity(net, before[2]):
        changes.append(f"net {before[2]:.0f}->{net:.0f}")
    return ", ".join(changes)
