"""Self-contained sweep-executor validation (``make sweep-check``).

Builds a small 2-workload x 2-burst x 2-algorithm sweep and checks the
parallel contract end to end:

1. a ``--jobs N`` run is **byte-identical** to the serial run — same
   summaries, same canonical result JSON, same merged telemetry snapshot,
2. a second run against the same ``--cache-dir`` is satisfied entirely
   from the shard cache and still byte-identical,
3. bumping the cache's code-version tag invalidates every entry (the
   resumability key includes simulator behaviour, not just inputs),
4. wall-clock speedup of parallel over serial is measured and recorded;
   the ``>= 2x at 4 jobs`` acceptance threshold is only *asserted* when
   the host actually has >= 4 CPUs (on smaller hosts the measurement is
   still recorded, with ``speedup_ok: null``).

Writes a machine-readable report (default ``BENCH_sweep_parallel.json``
— uploaded as a CI artifact next to the other BENCH files).  Exits
non-zero on any failed check.

Run directly::

    PYTHONPATH=src python -m repro.parallel.check --out BENCH_sweep_parallel.json --jobs 2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

# A *reference* to the profiler's timer (never a module-level wall-clock
# call): timing here measures harness speedup, not simulated behaviour.
from repro.experiments.spec import SweepSpec
from repro.obs.profiler import DEFAULT_TIMER

#: Simulated seconds per shard in the identity probe (small on purpose).
CHECK_DURATION = 60.0

#: Simulated seconds per shard in the timing probe (large enough that the
#: pool's fork/IPC overhead does not swamp the speedup signal).
BENCH_DURATION = 240.0

#: Wall-clock speedup the acceptance criterion demands at >= 4 CPUs.
SPEEDUP_THRESHOLD = 2.0


def _probe_sweep(duration: float) -> SweepSpec:
    return SweepSpec.from_grid(
        ("cpu", "network"),
        bursts=("low", "high"),
        algorithms=("kubernetes", "hybrid"),
        duration=duration,
    )


def run_check(out: Path, jobs: int, bench_jobs: int) -> int:
    """Run the probes, validate, write the report; returns exit code."""
    from repro.parallel.cache import ShardCache

    sweep = _probe_sweep(CHECK_DURATION)
    checks: dict[str, bool] = {}

    serial = sweep.run(parallel=1, telemetry=True)
    parallel = sweep.run(parallel=jobs, telemetry=True)
    checks["parallel_summaries_identical"] = parallel.summaries == serial.summaries
    checks["parallel_json_identical"] = parallel.to_json() == serial.to_json()
    checks["parallel_telemetry_identical"] = (
        parallel.telemetry_lines() == serial.telemetry_lines()
    )

    with tempfile.TemporaryDirectory(prefix="sweep-cache-") as tmp:
        first = sweep.run(parallel=jobs, cache_dir=tmp, telemetry=True)
        second = sweep.run(parallel=jobs, cache_dir=tmp, telemetry=True)
        checks["cache_cold_run_misses"] = first.cache_hits == 0
        checks["cache_warm_run_all_hits"] = second.cache_hits == len(sweep)
        # Identity of *results*: the cached-provenance flags rightly differ
        # between the cold and warm runs, everything else must not.
        cold_doc, warm_doc = first.to_dict(), second.to_dict()
        cold_doc.pop("cached"), warm_doc.pop("cached")
        checks["cache_result_identical"] = warm_doc == cold_doc
        bumped = ShardCache(tmp, code_version="sweep-check/other-version")
        stale = all(
            bumped.load(shard, need_telemetry=True) is None for shard in sweep.shards
        )
        checks["cache_code_version_invalidates"] = stale

    cpu_count = os.cpu_count() or 1
    bench = _probe_sweep(BENCH_DURATION)
    started = DEFAULT_TIMER()
    bench.run(parallel=1)
    serial_seconds = DEFAULT_TIMER() - started
    started = DEFAULT_TIMER()
    bench.run(parallel=bench_jobs)
    parallel_seconds = DEFAULT_TIMER() - started
    speedup = (serial_seconds / parallel_seconds) if parallel_seconds > 0 else float("inf")
    # Speedup is only a hard gate where the hardware can deliver it.
    speedup_ok: bool | None = None
    if cpu_count >= 4 and bench_jobs >= 4:
        speedup_ok = speedup >= SPEEDUP_THRESHOLD
        checks["speedup_at_least_2x"] = speedup_ok

    report = {
        "schema": "repro.sweep-check/1",
        "shards": len(sweep),
        "jobs": jobs,
        "bench_jobs": bench_jobs,
        "cpu_count": cpu_count,
        "check_duration": CHECK_DURATION,
        "bench_duration": BENCH_DURATION,
        "serial_seconds": round(serial_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "speedup": round(speedup, 4),
        "speedup_ok": speedup_ok,
        "checks": checks,
        "ok": all(checks.values()),
    }
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    for name, passed in sorted(checks.items()):
        print(f"  {'PASS' if passed else 'FAIL'}  {name}")
    print(
        f"sweep-check: {len(sweep)} shards, {jobs} jobs identical to serial, "
        f"x{report['speedup']} at {bench_jobs} jobs on {cpu_count} CPU(s) -> {out}"
    )
    return 0 if report["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``python -m repro.parallel.check``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_sweep_parallel.json"),
        help="report path (default: %(default)s)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker processes for the identity probe (default: %(default)s)",
    )
    parser.add_argument(
        "--bench-jobs",
        type=int,
        default=4,
        help="worker processes for the timing probe (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    return run_check(args.out, args.jobs, args.bench_jobs)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
