"""The process-pool sweep executor.

Shards are independent by construction (each is a self-contained
``repro.sweep/1`` run document), so the executor's only real job is
discipline:

* **Dispatch** — cache probe first, then the missing shards either
  in-process (``jobs <= 1``) or on a
  :class:`concurrent.futures.ProcessPoolExecutor`, both through the same
  :func:`~repro.parallel.worker.run_shard_payload` entry point.
* **Deterministic merge** — results are slotted by shard *index* and
  assembled in spec order once all are in; completion order never leaks
  into the output, so ``jobs=N`` is byte-identical to ``jobs=1``.
* **Structured failure** — a shard that raises comes back as an error
  envelope and surfaces as :class:`ShardError` (which shard, which
  exception, full worker traceback); pending work is cancelled rather
  than left to hang the pool.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable

from repro.errors import ExperimentError
from repro.experiments.spec import RunSpec, SweepSpec
from repro.metrics.summary import RunSummary
from repro.parallel.cache import ShardCache
from repro.parallel.result import SweepResult
from repro.parallel.worker import run_shard_payload


class ShardError(ExperimentError):
    """One shard of a sweep failed; carries the worker-side diagnosis."""

    def __init__(
        self,
        *,
        key: str,
        index: int,
        error_type: str,
        message: str,
        traceback_text: str = "",
    ):
        self.key = key
        self.index = index
        self.error_type = error_type
        self.traceback_text = traceback_text
        super().__init__(f"shard {index} ({key}) failed: {error_type}: {message}")


class SweepExecutor:
    """Executes a :class:`~repro.experiments.spec.SweepSpec` shard by shard.

    ``jobs`` caps the worker-process count (``<= 1`` runs every shard
    in-process, through the identical worker function).  ``cache`` is an
    optional :class:`~repro.parallel.ShardCache` consulted before any
    dispatch and fed after every fresh run.  ``collect_telemetry`` makes
    each shard record a :class:`~repro.telemetry.MetricRegistry` and
    return its canonical snapshot.  ``progress`` (if given) is called
    with ``(shard, status)`` where status is ``"cached"``, ``"running"``,
    or ``"done"``.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: ShardCache | None = None,
        collect_telemetry: bool = False,
        progress: Callable[[RunSpec, str], None] | None = None,
    ):
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.collect_telemetry = collect_telemetry
        self.progress = progress

    def run(self, sweep: SweepSpec) -> SweepResult:
        """Execute every shard and merge in spec order."""
        shards = sweep.shards
        envelopes: list[dict | None] = [None] * len(shards)
        cached: list[bool] = [False] * len(shards)

        if self.cache is not None:
            for index, shard in enumerate(shards):
                hit = self.cache.load(shard, need_telemetry=self.collect_telemetry)
                if hit is not None:
                    envelopes[index] = hit
                    cached[index] = True
                    self._report(shard, "cached")

        missing = [index for index, envelope in enumerate(envelopes) if envelope is None]
        if self.jobs <= 1 or len(missing) <= 1:
            for index in missing:
                self._report(shards[index], "running")
                envelopes[index] = run_shard_payload(
                    shards[index].to_dict(), self.collect_telemetry
                )
                self._finish(sweep, index, envelopes[index])
        else:
            self._run_pool(sweep, missing, envelopes)

        return self._merge(sweep, envelopes, cached)

    # -- internals -----------------------------------------------------
    def _run_pool(
        self, sweep: SweepSpec, missing: list[int], envelopes: list[dict | None]
    ) -> None:
        shards = sweep.shards
        workers = min(self.jobs, len(missing))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for index in missing:
                self._report(shards[index], "running")
                futures[index] = pool.submit(
                    run_shard_payload, shards[index].to_dict(), self.collect_telemetry
                )
            try:
                # Collect in spec order; completion order is irrelevant
                # because results land in their own slot.
                for index in missing:
                    try:
                        envelopes[index] = futures[index].result()
                    except BrokenProcessPool as exc:
                        raise ShardError(
                            key=shards[index].key,
                            index=index,
                            error_type=type(exc).__name__,
                            message=(
                                "worker process died before returning a result "
                                "(e.g. killed or crashed hard)"
                            ),
                        ) from exc
                    self._finish(sweep, index, envelopes[index])
            except ShardError:
                for future in futures.values():
                    future.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise

    def _finish(self, sweep: SweepSpec, index: int, envelope: dict | None) -> None:
        shard = sweep.shards[index]
        if envelope is None or not envelope.get("ok"):
            error = (envelope or {}).get("error", {})
            raise ShardError(
                key=shard.key,
                index=index,
                error_type=error.get("type", "UnknownError"),
                message=error.get("message", "worker returned no result"),
                traceback_text=error.get("traceback", ""),
            )
        if self.cache is not None:
            self.cache.store(shard, envelope)
        self._report(shard, "done")

    def _merge(
        self, sweep: SweepSpec, envelopes: list[dict | None], cached: list[bool]
    ) -> SweepResult:
        summaries = []
        telemetry = []
        for envelope in envelopes:
            assert envelope is not None  # every index was filled or raised
            summaries.append(RunSummary.from_dict(envelope["summary"]))
            telemetry.append(tuple(envelope.get("telemetry") or ()))
        return SweepResult(
            sweep=sweep,
            summaries=tuple(summaries),
            cached=tuple(cached),
            telemetry=tuple(telemetry) if self.collect_telemetry else (),
        )

    def _report(self, shard: RunSpec, status: str) -> None:
        if self.progress is not None:
            self.progress(shard, status)
