"""Merged sweep results, in shard order.

A :class:`SweepResult` pairs the sweep's spec with one
:class:`~repro.metrics.summary.RunSummary` per shard (same order), which
shards came from the cache, and — when telemetry was collected — each
shard's canonical metric-snapshot lines.  Because the executor merges in
spec order regardless of completion order, everything here (including
:meth:`to_json`) is byte-identical between serial and parallel execution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ExperimentError
from repro.experiments.spec import SWEEP_SCHEMA, RunSpec, SweepSpec
from repro.metrics.summary import RunSummary


@dataclass(frozen=True)
class SweepResult:
    """Everything one sweep produced, merged deterministically."""

    sweep: SweepSpec
    summaries: tuple[RunSummary, ...]
    #: Per shard: ``True`` when the result came from the shard cache.
    cached: tuple[bool, ...] = ()
    #: Per shard: canonical telemetry snapshot lines (empty tuple when the
    #: sweep ran without telemetry collection).
    telemetry: tuple[tuple[str, ...], ...] = ()

    def __post_init__(self) -> None:
        if len(self.summaries) != len(self.sweep.shards):
            raise ExperimentError(
                f"sweep has {len(self.sweep.shards)} shards but {len(self.summaries)} summaries"
            )
        if not self.cached:
            object.__setattr__(self, "cached", tuple(False for _ in self.summaries))
        if len(self.cached) != len(self.summaries):
            raise ExperimentError("cached flags must match the shard count")
        if self.telemetry and len(self.telemetry) != len(self.summaries):
            raise ExperimentError("telemetry snapshots must match the shard count")

    def __len__(self) -> int:
        return len(self.summaries)

    @property
    def cache_hits(self) -> int:
        """How many shards were satisfied from the cache."""
        return sum(1 for hit in self.cached if hit)

    def shards(self) -> tuple[tuple[RunSpec, RunSummary], ...]:
        """``(spec, summary)`` pairs in execution order."""
        return tuple(zip(self.sweep.shards, self.summaries))

    def by_key(self) -> dict[str, RunSummary]:
        """Summaries keyed by :attr:`RunSpec.key` (always unique)."""
        return {spec.key: summary for spec, summary in self.shards()}

    def by_label(self) -> dict[str, dict[str, RunSummary]]:
        """Summaries grouped ``workload label -> algorithm -> summary``.

        The grouping the comparison tables want; raises if one label ran
        the same algorithm twice (e.g. a multi-seed sweep — use
        :meth:`by_key` there, the grouping would be ambiguous).
        """
        grouped: dict[str, dict[str, RunSummary]] = {}
        for spec, summary in self.shards():
            per_label = grouped.setdefault(spec.label, {})
            if spec.policy in per_label:
                raise ExperimentError(
                    f"label {spec.label!r} ran {spec.policy!r} more than once; "
                    "group by_key() for multi-seed sweeps"
                )
            per_label[spec.policy] = summary
        return grouped

    def by_policy(self) -> dict[str, RunSummary]:
        """Summaries keyed by algorithm, for single-workload sweeps."""
        grouped = self.by_label()
        if len(grouped) != 1:
            raise ExperimentError(
                f"by_policy() needs a single-workload sweep, got labels {sorted(grouped)}"
            )
        return next(iter(grouped.values()))

    # -- telemetry -----------------------------------------------------
    def telemetry_lines(self) -> list[str]:
        """The sweep-level snapshot: every shard's lines, shard-stamped.

        Each per-shard line is re-encoded canonically with an extra
        ``"shard": <key>`` field (the telemetry parser tolerates extra
        keys), concatenated in shard order.
        """
        merged: list[str] = []
        for spec, lines in zip(self.sweep.shards, self.telemetry):
            for line in lines:
                payload = json.loads(line)
                payload["shard"] = spec.key
                merged.append(json.dumps(payload, sort_keys=True, separators=(",", ":")))
        return merged

    def write_telemetry_jsonl(self, path: str | Path) -> int:
        """Write the merged sweep snapshot; returns the line count."""
        lines = self.telemetry_lines()
        Path(path).write_text("\n".join(lines) + "\n" if lines else "", encoding="utf-8")
        return len(lines)

    # -- codec ---------------------------------------------------------
    def to_dict(self) -> dict:
        """This result as a ``repro.sweep/1`` document."""
        return {
            "schema": SWEEP_SCHEMA,
            "kind": "sweep_result",
            "sweep": self.sweep.to_dict(),
            "summaries": [summary.to_dict() for summary in self.summaries],
            "cached": list(self.cached),
            "telemetry": [list(lines) for lines in self.telemetry],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        """Decode a ``repro.sweep/1`` result document."""
        schema = data.get("schema")
        if schema != SWEEP_SCHEMA:
            raise ExperimentError(f"unsupported spec schema {schema!r} (want {SWEEP_SCHEMA!r})")
        if data.get("kind") != "sweep_result":
            raise ExperimentError(f"expected a sweep_result document, got {data.get('kind')!r}")
        return cls(
            sweep=SweepSpec.from_dict(data["sweep"]),
            summaries=tuple(RunSummary.from_dict(s) for s in data["summaries"]),
            cached=tuple(bool(flag) for flag in data.get("cached", ())),
            telemetry=tuple(tuple(lines) for lines in data.get("telemetry", ())),
        )

    def to_json(self) -> str:
        """Canonical (sorted, compact) encoding — byte-identical across
        serial and parallel executions of the same sweep."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

