"""Content-addressed shard cache: what makes sweeps resumable.

A shard's cache key is ``sha256(canonical RunSpec JSON + "\\n" +
code-version tag)``.  The spec JSON captures everything that determines
the result (config, fleet, loads, policy name, seed, duration, routing);
the code-version tag invalidates every entry when the simulator's
behaviour changes.  Nothing else may enter the key — observation knobs
never affect results, so they never affect keys.

Entries are single JSON files named ``<key>.json`` under the cache root,
written atomically (temp file + ``os.replace``) so an interrupted sweep
never leaves a torn entry behind — re-running with the same ``--cache-dir``
skips every completed shard and executes only the missing ones.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.spec import RunSpec

#: Behaviour tag mixed into every cache key.  Bump whenever a change could
#: alter any run's results (engine semantics, overhead model, policies,
#: codec shape) — stale entries then miss instead of lying.
CODE_VERSION = "hyscale-repro/1.0.0"

#: Schema tag of the cache-entry file format.
CACHE_SCHEMA = "repro.sweep-cache/1"


class ShardCache:
    """Filesystem cache of completed shard results.

    Purely advisory: a load miss (absent, torn, schema-mismatched, or
    written by another code version) simply means the shard runs again.
    """

    def __init__(self, root: str | Path, *, code_version: str = CODE_VERSION):
        self.root = Path(root)
        self.code_version = code_version
        self.hits = 0
        self.misses = 0

    def key_for(self, spec: "RunSpec") -> str:
        """The shard's content address (hex sha256)."""
        material = spec.canonical_json() + "\n" + self.code_version
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def path_for(self, spec: "RunSpec") -> Path:
        """Where the shard's entry lives (whether or not it exists yet)."""
        return self.root / f"{self.key_for(spec)}.json"

    def load(self, spec: "RunSpec", *, need_telemetry: bool = False) -> dict | None:
        """Return the cached worker envelope for ``spec``, or ``None``.

        An entry recorded without telemetry does not satisfy a request
        *with* telemetry (and is treated as a miss so the shard re-runs
        and re-stores with the snapshot included).
        """
        path = self.path_for(spec)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not self._entry_valid(entry, spec):
            self.misses += 1
            return None
        if need_telemetry and entry.get("telemetry") is None:
            self.misses += 1
            return None
        self.hits += 1
        return {"ok": True, "summary": entry["summary"], "telemetry": entry.get("telemetry")}

    def store(self, spec: "RunSpec", result: dict) -> Path:
        """Persist a successful worker envelope for ``spec`` atomically."""
        entry = {
            "schema": CACHE_SCHEMA,
            "code_version": self.code_version,
            "key": self.key_for(spec),
            "spec": spec.to_dict(),
            "summary": result["summary"],
            "telemetry": result.get("telemetry"),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)
        return path

    def _entry_valid(self, entry: Any, spec: "RunSpec") -> bool:
        if not isinstance(entry, dict):
            return False
        if entry.get("schema") != CACHE_SCHEMA:
            return False
        if entry.get("code_version") != self.code_version:
            return False
        # Paranoia against sha collisions and hand-edited files: the stored
        # spec must match the requested one byte-for-byte.
        stored = entry.get("spec")
        if stored is None:
            return False
        canonical = json.dumps(stored, sort_keys=True, separators=(",", ":"))
        return canonical == spec.canonical_json() and "summary" in entry
