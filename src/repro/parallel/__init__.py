"""Parallel sweep execution: process pools, shard caching, resumability.

The executor shards a :class:`~repro.experiments.spec.SweepSpec` into
independent ``(workload, burst, algorithm, seed)`` runs, executes them on
a :class:`concurrent.futures.ProcessPoolExecutor`, and merges results in
spec order — so a parallel sweep is byte-identical to a serial one.  The
content-addressed :class:`ShardCache` (key = sha256 of the canonical
``repro.sweep/1`` RunSpec JSON + code-version tag) makes interrupted
sweeps resumable: only the missing shards re-run.

Quickstart::

    from repro import SweepSpec

    sweep = SweepSpec.from_grid(("cpu", "network"), algorithms=("kubernetes", "hybrid"))
    result = sweep.run(parallel=4, cache_dir=".sweep-cache")
    for spec, summary in result.shards():
        print(spec.key, summary.as_row())

See ``docs/parallel.md`` for the executor model, the determinism
contract, and the cache keying rules.
"""

from repro.parallel.cache import CODE_VERSION, ShardCache
from repro.parallel.executor import ShardError, SweepExecutor
from repro.parallel.result import SweepResult
from repro.parallel.worker import run_shard_payload

__all__ = [
    "SweepExecutor",
    "SweepResult",
    "ShardCache",
    "ShardError",
    "CODE_VERSION",
    "run_shard_payload",
]
