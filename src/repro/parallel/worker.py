"""The picklable worker entry point every shard runs through.

``run_shard_payload`` is a plain top-level function over plain JSON types,
so :class:`concurrent.futures.ProcessPoolExecutor` can ship it to a child
process on any start method (fork *or* spawn).  The serial path of
:class:`~repro.parallel.SweepExecutor` calls the very same function
in-process — one code path, which is how "parallel is byte-identical to
serial" is a structural property rather than a test-enforced hope.

Worker exceptions are returned as a structured ``{"ok": False, "error":
...}`` envelope instead of being raised: a raised exception would have to
survive pickling back through the pool, and a type that cannot pickle
would hang diagnosis.  The executor turns the envelope into a
:class:`~repro.parallel.ShardError`.
"""

from __future__ import annotations

import traceback
from typing import Any, Mapping


def run_shard_payload(payload: Mapping[str, Any], collect_telemetry: bool = False) -> dict:
    """Execute one ``repro.sweep/1`` run document and envelope the result.

    Returns ``{"ok": True, "summary": <RunSummary dict>, "telemetry":
    <list of canonical snapshot lines or None>}`` on success and
    ``{"ok": False, "error": {"type", "message", "traceback"}}`` on any
    failure inside the shard.
    """
    try:
        # Imported inside the function: the module must stay importable in
        # a bare spawn child before the heavy experiment stack is needed.
        from repro.experiments.spec import RunSpec

        spec = RunSpec.from_dict(payload)
        if collect_telemetry:
            from repro.telemetry.registry import MetricRegistry
            from repro.telemetry.snapshot import snapshot_lines

            registry = MetricRegistry()
            simulation = spec.build(telemetry=registry)
            summary = simulation.run(spec.duration)
            telemetry: list[str] | None = snapshot_lines(
                registry, now=simulation.engine.clock.now
            )
        else:
            summary = spec.run()
            telemetry = None
        return {"ok": True, "summary": summary.to_dict(), "telemetry": telemetry}
    except Exception as exc:  # noqa: BLE001 - the envelope *is* the handler
        return {
            "ok": False,
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
        }
