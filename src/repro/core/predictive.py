"""Predictive hybrid scaling (extension; the paper's "machine learning
aspect" future work).

Section VII: "we aim to ... extend our hybrid autoscaling algorithms to
incorporate a cost-based aspect, a machine learning aspect and various
others."  Every algorithm in the paper is *reactive*: it provisions for the
usage it just measured, so a burst is always served late by one
reaction lag (monitor period + boot delay).  This extension keeps HyScale's
equations but feeds them a *forecast*:

* per container, usage history is folded into a Holt double-exponential
  smoother (level + trend) — no training data or external deps, just the
  streaming updates:

  .. math::

      level_t = \\alpha \\cdot y_t + (1-\\alpha)(level_{t-1} + trend_{t-1})

      trend_t = \\beta (level_t - level_{t-1}) + (1-\\beta) trend_{t-1}

* ``decide()`` rewrites each replica's ``cpu_usage`` (and memory, for the
  +Mem variant) to the forecast ``horizon`` seconds ahead — one monitor
  period plus the boot delay, i.e. exactly the reaction lag being hidden —
  then delegates to the parent HyScale logic unchanged.

On rising edges the forecast overshoots the present, so capacity lands
*before* the spike; on falling edges it releases slightly early.  The bench
(`benchmarks/test_ext_predictive.py`) measures what that buys against
reactive HyScale on the paper's high-burst pattern.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.core.actions import ScalingAction
from repro.core.hyscale_mem import HyScaleCpuMem
from repro.core.view import ClusterView, ReplicaView, ServiceView
from repro.errors import PolicyError


class HoltSmoother:
    """Streaming Holt (level + trend) smoother for one signal."""

    def __init__(self, alpha: float = 0.5, beta: float = 0.3):
        if not 0 < alpha <= 1 or not 0 <= beta <= 1:
            raise PolicyError("need 0 < alpha <= 1 and 0 <= beta <= 1")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.level: float | None = None
        self.trend = 0.0

    def update(self, value: float) -> None:
        """Fold one observation in."""
        if self.level is None:
            self.level = float(value)
            return
        previous_level = self.level
        self.level = self.alpha * value + (1 - self.alpha) * (self.level + self.trend)
        self.trend = self.beta * (self.level - previous_level) + (1 - self.beta) * self.trend

    def forecast(self, steps: float) -> float:
        """Prediction ``steps`` update-intervals ahead (never negative)."""
        if self.level is None:
            raise PolicyError("smoother has no observations yet")
        return max(0.0, self.level + self.trend * steps)


class PredictiveHyScale(HyScaleCpuMem):
    """HyScale_CPU+Mem driven by Holt forecasts instead of raw usage."""

    name = "predictive"

    def __init__(
        self,
        *,
        horizon_ticks: float = 2.5,
        alpha: float = 0.5,
        beta: float = 0.3,
        **kwargs: Any,
    ):
        super().__init__(**kwargs)
        if horizon_ticks < 0:
            raise PolicyError("horizon_ticks must be >= 0")
        #: How many monitor periods ahead to provision for — sized to the
        #: reaction lag (one period + part of a boot delay).
        self.horizon_ticks = float(horizon_ticks)
        self._alpha = alpha
        self._beta = beta
        self._cpu: dict[str, HoltSmoother] = {}
        self._mem: dict[str, HoltSmoother] = {}

    # ------------------------------------------------------------------
    def decide(self, view: ClusterView) -> list[ScalingAction]:
        """Update smoothers with this tick's usage, then decide on forecasts."""
        self._garbage_collect(view)
        forecast_view = replace(
            view, services=tuple(self._forecast_service(s) for s in view.services)
        )
        return super().decide(forecast_view)

    # ------------------------------------------------------------------
    def _forecast_service(self, service: ServiceView) -> ServiceView:
        replicas = tuple(self._forecast_replica(r) for r in service.replicas)
        return replace(service, replicas=replicas)

    def _forecast_replica(self, replica: ReplicaView) -> ReplicaView:
        if replica.booting:
            return replica
        cpu = self._cpu.setdefault(
            replica.container_id, HoltSmoother(self._alpha, self._beta)
        )
        mem = self._mem.setdefault(
            replica.container_id, HoltSmoother(self._alpha, self._beta)
        )
        cpu.update(replica.cpu_usage)
        mem.update(replica.mem_usage)
        return replace(
            replica,
            cpu_usage=cpu.forecast(self.horizon_ticks),
            mem_usage=mem.forecast(self.horizon_ticks),
        )

    def _garbage_collect(self, view: ClusterView) -> None:
        alive = {r.container_id for s in view.services for r in s.replicas}
        for table in (self._cpu, self._mem):
            for container_id in list(table):
                if container_id not in alive:
                    del table[container_id]
