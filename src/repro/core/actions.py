"""Scaling-action algebra.

Policies are pure: they read a :class:`~repro.core.view.ClusterView` and
emit a list of actions; the MONITOR executes them.  Three verbs cover every
algorithm in the paper:

* :class:`VerticalScale` — resize a container in place (``docker update`` /
  tc reshape); the hybrid algorithms' fine-grained tool.
* :class:`AddReplica` — start a new container somewhere; the HPA's and the
  hybrids' spill-over tool.
* :class:`RemoveReplica` — scale a container in (its in-flight requests
  become removal failures, which is why Figures 6-8 track them).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyError


class ScalingAction:
    """Marker base class for all actions."""

    __slots__ = ()


@dataclass(frozen=True)
class VerticalScale(ScalingAction):
    """Resize one container in place.  ``None`` axes are left untouched."""

    container_id: str
    cpu_request: float | None = None
    mem_limit: float | None = None
    net_rate: float | None = None
    #: Why the policy did this ("reclaim", "acquire", ...) — for logs/tests.
    reason: str = ""

    def __post_init__(self) -> None:
        if self.cpu_request is None and self.mem_limit is None and self.net_rate is None:
            raise PolicyError("VerticalScale must change at least one axis")
        if self.cpu_request is not None and self.cpu_request < 0:
            raise PolicyError("cpu_request must be >= 0")
        if self.mem_limit is not None and self.mem_limit <= 0:
            raise PolicyError("mem_limit must be > 0")
        if self.net_rate is not None and self.net_rate < 0:
            raise PolicyError("net_rate must be >= 0")


@dataclass(frozen=True)
class AddReplica(ScalingAction):
    """Start one new replica of a service.

    ``node`` may pin the placement (HyScale chooses its own target node from
    the ledger); ``None`` lets the MONITOR's placement strategy decide.
    ``exclude_hosting`` enforces the paper's HyScale constraint that new
    replicas land on nodes "not hosting the same microservice".
    """

    service: str
    cpu_request: float
    mem_limit: float
    net_rate: float
    node: str | None = None
    exclude_hosting: bool = False
    reason: str = ""

    def __post_init__(self) -> None:
        if self.cpu_request <= 0 or self.mem_limit <= 0 or self.net_rate < 0:
            raise PolicyError("replica allocations must satisfy cpu>0, memory>0, network>=0")


@dataclass(frozen=True)
class RemoveReplica(ScalingAction):
    """Scale one replica in."""

    container_id: str
    reason: str = ""

    def __post_init__(self) -> None:
        if not self.container_id:
            raise PolicyError("container_id must be non-empty")


@dataclass(frozen=True)
class MigrateReplica(ScalingAction):
    """Live-migrate one container to another machine (extension).

    Used by vertical-first scalers (ElasticDocker-style) when the current
    host cannot satisfy a grow request: the container keeps its in-flight
    requests but freezes for the checkpoint/restore window
    (``OverheadModel.migration_freeze``).
    """

    container_id: str
    target_node: str
    reason: str = ""

    def __post_init__(self) -> None:
        if not self.container_id or not self.target_node:
            raise PolicyError("container_id and target_node must be non-empty")
