"""The paper's contribution: autoscaling algorithms and their contracts.

* :mod:`repro.core.view` — immutable cluster snapshots policies consume.
* :mod:`repro.core.actions` — the scaling-action algebra policies emit.
* :mod:`repro.core.policy` — the policy interface and planning helpers.
* :mod:`repro.core.kubernetes` — Kubernetes HPA (Section IV-A1).
* :mod:`repro.core.network` — the network scaling algorithm (Section IV-A2).
* :mod:`repro.core.hyscale` — HyScale_CPU (Section IV-B1).
* :mod:`repro.core.hyscale_mem` — HyScale_CPU+Mem (Section IV-B2).
* :mod:`repro.core.registry` — algorithm names -> policy factories;
  :func:`resolve_policy` lets every policy-accepting API take a name.
"""

from repro.core.actions import (
    AddReplica,
    MigrateReplica,
    RemoveReplica,
    ScalingAction,
    VerticalScale,
)
from repro.core.disk import DiskHpa
from repro.core.elasticdocker import ElasticDockerPolicy
from repro.core.hyscale import HyScaleCpu
from repro.core.hyscale_mem import HyScaleCpuMem
from repro.core.intervals import RescaleIntervalGuard
from repro.core.kubernetes import KubernetesHpa
from repro.core.kubernetes_multi import KubernetesMemoryHpa, KubernetesMultiMetricHpa
from repro.core.network import NetworkHpa
from repro.core.predictive import HoltSmoother, PredictiveHyScale
from repro.core.policy import AutoscalingPolicy, NodeLedger
from repro.core.registry import (
    ALGORITHMS,
    EXTENSION_ALGORITHMS,
    make_policy,
    register_policy,
    registered_policies,
    resolve_policy,
)
from repro.core.view import ClusterView, NodeView, ReplicaView, ServiceView

__all__ = [
    "ALGORITHMS",
    "EXTENSION_ALGORITHMS",
    "make_policy",
    "register_policy",
    "registered_policies",
    "resolve_policy",
    "ScalingAction",
    "VerticalScale",
    "AddReplica",
    "RemoveReplica",
    "AutoscalingPolicy",
    "NodeLedger",
    "RescaleIntervalGuard",
    "KubernetesHpa",
    "KubernetesMemoryHpa",
    "KubernetesMultiMetricHpa",
    "NetworkHpa",
    "DiskHpa",
    "ElasticDockerPolicy",
    "MigrateReplica",
    "HyScaleCpu",
    "HyScaleCpuMem",
    "PredictiveHyScale",
    "HoltSmoother",
    "ClusterView",
    "NodeView",
    "ReplicaView",
    "ServiceView",
]
