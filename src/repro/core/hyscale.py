"""HYSCALE_CPU — the hybrid CPU autoscaling algorithm (Section IV-B1).

Per monitor period the algorithm:

0. ensures every service runs within its [min, max] replica bounds
   ("these algorithms first ensure the minimum and maximum number of
   replicas are running for fault-tolerance benefits");

1. computes, per microservice ``m``::

       MissingCPUs_m = (sum(usage_r) - sum(requested_r) * Target_m) / Target_m

   — zero means perfectly provisioned, negative means reclaimable slack,
   positive means the service is starved;

2. **reclamation phase** — for services with slack, vertically scales each
   replica down by::

       ReclaimableCPUs_r = requested_r - usage_r / (Target_m * 0.9)

   removing a replica entirely when its allocation would drop below the
   0.1-CPU minimum threshold (subject to min-replica bounds and the
   horizontal rescale interval);

3. **acquisition phase** — for starved services, vertically scales each
   replica up by::

       RequiredCPUs_r = usage_r / (Target_m * 0.9) - requested_r
       AcquiredCPUs_r = min(RequiredCPUs_r, AvailableCPUs_node)

   and, if vertical scaling could not cover the whole deficit, scales
   horizontally onto nodes *not* hosting the service that advertise at
   least the baseline memory requirement and the 0.25-CPU spawn threshold.

Horizontal operations respect the Kubernetes-style rescale intervals;
vertical operations are exempt ("vertical scaling must perform fine-grained
adjustments quickly and frequently").
"""

from __future__ import annotations

from repro.cluster.resources import ResourceVector
from repro.core.actions import AddReplica, RemoveReplica, ScalingAction, VerticalScale
from repro.core.intervals import RescaleIntervalGuard
from repro.core.policy import AutoscalingPolicy, NodeLedger
from repro.core.view import ClusterView, ReplicaView, ServiceView
from repro.errors import PolicyError

#: Numerical slack below which a resource deficit is treated as zero.
EPSILON = 1e-6


# Sort keys used inside the per-step decide path are module-level so the
# hot loop does not construct a fresh function object every step (HOT001).
def _by_container_id(replica: ReplicaView) -> str:
    return replica.container_id


def _by_cpu_utilization(replica: ReplicaView) -> float:
    return replica.cpu_utilization


def _by_cpu_utilization_desc(replica: ReplicaView) -> float:
    return -replica.cpu_utilization


class HyScaleCpu(AutoscalingPolicy):
    """Hybrid vertical+horizontal scaling driven by CPU usage."""

    name = "hybrid"

    def __init__(
        self,
        *,
        scale_up_interval: float = 3.0,
        scale_down_interval: float = 50.0,
        min_cpu_removal: float = 0.1,
        min_cpu_spawn: float = 0.25,
        headroom: float = 0.9,
    ):
        if min_cpu_removal <= 0 or min_cpu_spawn <= 0:
            raise PolicyError("CPU thresholds must be positive")
        if min_cpu_spawn < min_cpu_removal:
            raise PolicyError("spawn threshold must be >= removal threshold")
        if not 0 < headroom <= 1:
            raise PolicyError("headroom must be in (0, 1]")
        self.guard = RescaleIntervalGuard(scale_up_interval, scale_down_interval)
        #: Remove a replica whose allocation would fall below this (paper: 0.1 CPUs).
        self.min_cpu_removal = float(min_cpu_removal)
        #: Never spawn a replica smaller than this (paper: 0.25 CPUs).
        self.min_cpu_spawn = float(min_cpu_spawn)
        #: The paper's ``Target * 0.9`` safety factor: size allocations for
        #: 90 % of target so small fluctuations do not immediately starve.
        self.headroom = float(headroom)

    # ------------------------------------------------------------------
    # The paper's equations
    # ------------------------------------------------------------------
    def missing_cpus(self, service: ServiceView) -> float:
        """``MissingCPUs_m`` — the service-wide deficit (+) or slack (−)."""
        usage = service.total_cpu_usage()
        requested = service.total_cpu_requested()
        target = service.target_utilization
        return (usage - requested * target) / target

    def reclaimable_cpus(self, replica: ReplicaView, target: float) -> float:
        """``ReclaimableCPUs_r`` — slack this replica can surrender."""
        return replica.cpu_request - replica.cpu_usage / (target * self.headroom)

    def required_cpus(self, replica: ReplicaView, target: float) -> float:
        """``RequiredCPUs_r`` — extra CPU this replica wants."""
        return replica.cpu_usage / (target * self.headroom) - replica.cpu_request

    # ------------------------------------------------------------------
    # Decision pass
    # ------------------------------------------------------------------
    def decide(self, view: ClusterView) -> list[ScalingAction]:
        """Reclaim first, then acquire — so freed resources are immediately
        redistributable within the same period (Section IV-B1)."""
        actions: list[ScalingAction] = []
        ledger = NodeLedger(view, tracer=self.tracer)
        removed: set[str] = set()

        for service in view.services:
            actions.extend(self._enforce_bounds(service, view, ledger, removed))

        missing = {s.name: self.missing_cpus(s) for s in view.services}
        if self.tracer.enabled:
            for service in view.services:
                deficit = missing[service.name]
                verdict = (
                    "acquire" if deficit > EPSILON else "reclaim" if deficit < -EPSILON else "balanced"
                )
                self.tracer.record_metric(
                    service=service.name, metric="cpu",
                    value=_service_utilization(service), threshold=service.target_utilization,
                    verdict=verdict,
                )
                self.tracer.record_metric(
                    service=service.name, metric="missing-cpu",
                    value=deficit, threshold=0.0, verdict=verdict,
                )

        for service in view.services:
            if missing[service.name] < -EPSILON:
                actions.extend(self._reclaim(service, view, ledger, removed))

        # Neediest services acquire first so contention for freed capacity
        # resolves in favour of the largest deficits.
        starving = sorted(
            (s for s in view.services if missing[s.name] > EPSILON),
            key=lambda s: -missing[s.name],
        )
        for service in starving:
            actions.extend(self._acquire(service, view, ledger, missing[service.name]))
        return actions

    # ------------------------------------------------------------------
    # Phase 0: replica bounds
    # ------------------------------------------------------------------
    def _enforce_bounds(
        self,
        service: ServiceView,
        view: ClusterView,
        ledger: NodeLedger,
        removed: set[str],
    ) -> list[ScalingAction]:
        actions: list[ScalingAction] = []
        deficit = service.min_replicas - service.replica_count
        for _ in range(max(0, deficit)):
            placed = self._place_replica(service, ledger, self.min_cpu_spawn, reason="min-replicas")
            if placed is None:
                break
            actions.append(placed)
            if self.tracer.enabled:
                self.tracer.record_action(
                    kind="add-replica", service=service.name, target=placed.node or "",
                    reason="min-replicas", metric="replicas",
                    value=float(service.replica_count), threshold=float(service.min_replicas),
                    detail=f"cpu {placed.cpu_request:.3f} on {placed.node}",
                )

        excess = service.replica_count - service.max_replicas
        if excess > 0:
            victims = sorted(service.replicas, key=_by_container_id, reverse=True)[:excess]
            for victim in victims:
                actions.append(RemoveReplica(victim.container_id, reason="max-replicas"))
                removed.add(victim.container_id)
                ledger.release(victim.node, _reservation(victim))
                if self.tracer.enabled:
                    self.tracer.record_action(
                        kind="remove-replica", service=service.name, target=victim.container_id,
                        reason="max-replicas", metric="replicas",
                        value=float(service.replica_count), threshold=float(service.max_replicas),
                        detail=f"from {victim.node}",
                    )
        return actions

    # ------------------------------------------------------------------
    # Phase 1: reclamation
    # ------------------------------------------------------------------
    def _reclaim(
        self,
        service: ServiceView,
        view: ClusterView,
        ledger: NodeLedger,
        removed: set[str],
    ) -> list[ScalingAction]:
        actions: list[ScalingAction] = []
        target = service.target_utilization
        # Idlest replicas first: they have the most to give back and are the
        # natural removal candidates.
        replicas = sorted(service.measurable_replicas(), key=_by_cpu_utilization)
        live = service.replica_count

        for replica in replicas:
            if replica.container_id in removed:
                continue
            reclaimable = self.reclaimable_cpus(replica, target)
            if reclaimable <= EPSILON:
                continue
            new_request = replica.cpu_request - reclaimable

            if new_request < self.min_cpu_removal:
                if live > service.min_replicas and self.guard.can_scale_down(service.name, view.now):
                    actions.append(RemoveReplica(replica.container_id, reason="reclaim-remove"))
                    removed.add(replica.container_id)
                    ledger.release(replica.node, _reservation(replica))
                    self.guard.record_scale_down(service.name, view.now)
                    live -= 1
                    if self.tracer.enabled:
                        self.tracer.record_action(
                            kind="remove-replica", service=service.name,
                            target=replica.container_id, reason="reclaim-remove", metric="cpu",
                            value=replica.cpu_utilization, threshold=target,
                            detail=(
                                f"request {replica.cpu_request:.3f} below removal "
                                f"floor {self.min_cpu_removal:.3f} on {replica.node}"
                            ),
                        )
                    continue
                # Cannot remove: clamp the shrink at the minimum allocation.
                new_request = self.min_cpu_removal
                if new_request >= replica.cpu_request - EPSILON:
                    continue

            actions.append(
                VerticalScale(replica.container_id, cpu_request=new_request, reason="reclaim")
            )
            ledger.release(replica.node, ResourceVector(cpu=replica.cpu_request - new_request))
            if self.tracer.enabled:
                self.tracer.record_action(
                    kind="vertical-scale", service=service.name,
                    target=replica.container_id, reason="reclaim", metric="cpu",
                    value=replica.cpu_utilization, threshold=target,
                    detail=f"cpu {replica.cpu_request:.3f}->{new_request:.3f} on {replica.node}",
                )
        return actions

    # ------------------------------------------------------------------
    # Phase 2: acquisition
    # ------------------------------------------------------------------
    def _acquire(
        self,
        service: ServiceView,
        view: ClusterView,
        ledger: NodeLedger,
        missing: float,
    ) -> list[ScalingAction]:
        actions: list[ScalingAction] = []
        target = service.target_utilization
        acquired_total = 0.0
        # Busiest replicas first: they are closest to starving.
        replicas = sorted(service.measurable_replicas(), key=_by_cpu_utilization_desc)

        for replica in replicas:
            required = self.required_cpus(replica, target)
            if required <= EPSILON:
                continue
            available = ledger.available(replica.node).cpu
            acquired = min(required, available)
            if acquired <= EPSILON:
                continue
            actions.append(
                VerticalScale(
                    replica.container_id,
                    cpu_request=replica.cpu_request + acquired,
                    reason="acquire",
                )
            )
            ledger.take(replica.node, ResourceVector(cpu=acquired))
            acquired_total += acquired
            if self.tracer.enabled:
                new_request = replica.cpu_request + acquired
                self.tracer.record_action(
                    kind="vertical-scale", service=service.name,
                    target=replica.container_id, reason="acquire", metric="cpu",
                    value=replica.cpu_utilization, threshold=target,
                    detail=f"cpu {replica.cpu_request:.3f}->{new_request:.3f} on {replica.node}",
                )

        shortfall = missing - acquired_total
        if shortfall > EPSILON:
            actions.extend(self._spill_horizontal(service, view, ledger, shortfall))
        return actions

    def _spill_horizontal(
        self,
        service: ServiceView,
        view: ClusterView,
        ledger: NodeLedger,
        shortfall: float,
    ) -> list[ScalingAction]:
        """Vertical scaling ran out of local room: replicate elsewhere."""
        if not self.guard.can_scale_up(service.name, view.now):
            return []
        actions: list[ScalingAction] = []
        live = service.replica_count
        while shortfall > EPSILON and live < service.max_replicas:
            placed = self._place_replica(service, ledger, shortfall, reason="spill")
            if placed is None:
                break
            actions.append(placed)
            if self.tracer.enabled:
                self.tracer.record_action(
                    kind="add-replica", service=service.name, target=placed.node or "",
                    reason="spill", metric="missing-cpu",
                    value=shortfall, threshold=0.0,
                    detail=f"cpu {placed.cpu_request:.3f} on {placed.node}",
                )
            shortfall -= placed.cpu_request
            live += 1
        if actions:
            self.guard.record_scale_up(service.name, view.now)
        return actions

    def _place_replica(
        self,
        service: ServiceView,
        ledger: NodeLedger,
        wanted_cpu: float,
        reason: str,
    ) -> AddReplica | None:
        """Plan one new replica on a node meeting the paper's spawn bar:
        >= 0.25 CPUs and the service's baseline memory requirement."""
        minimum = ResourceVector(
            cpu=self.min_cpu_spawn,
            memory=service.base_mem_limit,
            network=service.base_net_rate,
        )
        candidates = ledger.candidates_for(service.name, minimum, exclude_hosting=True)
        if not candidates and reason == "min-replicas":
            # Fault-tolerance floor beats anti-affinity: allow co-location
            # rather than running below the minimum replica count.
            candidates = ledger.candidates_for(service.name, minimum, exclude_hosting=False)
        if not candidates:
            return None
        node = candidates[0]
        cpu = min(max(wanted_cpu, self.min_cpu_spawn), ledger.available(node).cpu)
        allocation = ResourceVector(cpu, service.base_mem_limit, service.base_net_rate)
        ledger.plan_placement(node, service.name, allocation)
        return AddReplica(
            service=service.name,
            cpu_request=cpu,
            mem_limit=service.base_mem_limit,
            net_rate=service.base_net_rate,
            node=node,
            exclude_hosting=True,
            reason=reason,
        )


def _reservation(replica: ReplicaView) -> ResourceVector:
    """Resources a replica holds against its node."""
    return ResourceVector(replica.cpu_request, replica.mem_limit, replica.net_rate)


def _service_utilization(service: ServiceView) -> float:
    """Service-wide ``sum(usage) / sum(requested)`` (0.0 when nothing is
    requested) — the utilization figure a trace reader compares against
    ``Target_m``."""
    requested = service.total_cpu_requested()
    if requested <= 0:
        return 0.0
    return service.total_cpu_usage() / requested
