"""HYSCALE_CPU+Mem — the two-metric hybrid algorithm (Section IV-B2).

Extends :class:`~repro.core.hyscale.HyScaleCpu` "by considering memory and
swap usage.  The algorithm and equations used are analogous to those used
for CPU measurements"::

    MissingMem_m    = (sum(usage_r) - sum(requested_r) * Target_m) / Target_m
    ReclaimableMem_r = requested_r - usage_r / (Target_m * 0.9)
    RequiredMem_r    = usage_r / (Target_m * 0.9) - requested_r
    AcquiredMem_r    = min(RequiredMem_r, AvailableMem_n)

"With the consideration of a second variable, horizontal scaling becomes
much less trivial.  The algorithm can no longer indiscriminately remove a
container that is consuming memory or CPU, if it falls below a certain CPU
or memory threshold, respectively. ...  This changes the conditions for
container removal and addition by requiring the CPU and memory threshold
conditions to be met **mutually**."

So: a replica is removed only when *both* its post-reclaim CPU would fall
below the CPU threshold *and* its post-reclaim memory would fall below the
memory threshold; a new replica needs a node advertising both the CPU spawn
threshold and the baseline memory.
"""

from __future__ import annotations

from repro.cluster.resources import ResourceVector
from repro.core.actions import AddReplica, RemoveReplica, ScalingAction, VerticalScale
from repro.core.hyscale import EPSILON, HyScaleCpu, _reservation
from repro.core.policy import NodeLedger
from repro.core.view import ClusterView, ReplicaView, ServiceView
from repro.errors import PolicyError


# Module-level sort keys: the decide path runs every step and must not
# construct a fresh function object per call (HOT001).
def _by_combined_utilization(replica: ReplicaView) -> float:
    return replica.cpu_utilization + replica.mem_utilization


def _by_combined_utilization_desc(replica: ReplicaView) -> float:
    return -(replica.cpu_utilization + replica.mem_utilization)


class HyScaleCpuMem(HyScaleCpu):
    """Hybrid scaling on CPU *and* memory with mutual removal conditions."""

    name = "hybridmem"

    def __init__(
        self,
        *,
        scale_up_interval: float = 3.0,
        scale_down_interval: float = 50.0,
        min_cpu_removal: float = 0.1,
        min_cpu_spawn: float = 0.25,
        headroom: float = 0.9,
        min_mem_removal: float = 96.0,
        mem_floor: float = 160.0,
    ):
        super().__init__(
            scale_up_interval=scale_up_interval,
            scale_down_interval=scale_down_interval,
            min_cpu_removal=min_cpu_removal,
            min_cpu_spawn=min_cpu_spawn,
            headroom=headroom,
        )
        if min_mem_removal <= 0:
            raise PolicyError("min_mem_removal must be positive")
        if mem_floor < min_mem_removal:
            raise PolicyError("mem_floor must be >= min_mem_removal")
        #: Memory analogue of the 0.1-CPU removal threshold (MiB).
        self.min_mem_removal = float(min_mem_removal)
        #: Never vertically shrink a kept replica's limit below this (MiB) —
        #: the application's resident footprint makes smaller limits an
        #: immediate OOM sentence.
        self.mem_floor = float(mem_floor)

    # ------------------------------------------------------------------
    # Memory analogues of the paper's equations
    # ------------------------------------------------------------------
    def missing_mem(self, service: ServiceView) -> float:
        """``MissingMem_m`` in MiB."""
        usage = service.total_mem_usage()
        requested = service.total_mem_requested()
        target = service.target_utilization
        return (usage - requested * target) / target

    def reclaimable_mem(self, replica: ReplicaView, target: float) -> float:
        """``ReclaimableMem_r`` in MiB."""
        return replica.mem_limit - replica.mem_usage / (target * self.headroom)

    def required_mem(self, replica: ReplicaView, target: float) -> float:
        """``RequiredMem_r`` in MiB."""
        return replica.mem_usage / (target * self.headroom) - replica.mem_limit

    # ------------------------------------------------------------------
    # Decision pass (two-axis variant of the parent's)
    # ------------------------------------------------------------------
    def decide(self, view: ClusterView) -> list[ScalingAction]:
        """Reclaim both axes first, then acquire both axes."""
        actions: list[ScalingAction] = []
        ledger = NodeLedger(view, tracer=self.tracer)
        removed: set[str] = set()

        for service in view.services:
            actions.extend(self._enforce_bounds(service, view, ledger, removed))

        missing_cpu = {s.name: self.missing_cpus(s) for s in view.services}
        missing_mem = {s.name: self.missing_mem(s) for s in view.services}
        if self.tracer.enabled:
            for service in view.services:
                for metric, deficit in (
                    ("missing-cpu", missing_cpu[service.name]),
                    ("missing-mem", missing_mem[service.name]),
                ):
                    verdict = (
                        "acquire" if deficit > EPSILON
                        else "reclaim" if deficit < -EPSILON
                        else "balanced"
                    )
                    self.tracer.record_metric(
                        service=service.name, metric=metric,
                        value=deficit, threshold=0.0, verdict=verdict,
                    )

        for service in view.services:
            if missing_cpu[service.name] < -EPSILON or missing_mem[service.name] < -EPSILON:
                actions.extend(
                    self._reclaim_both(
                        service,
                        view,
                        ledger,
                        removed,
                        reclaim_cpu=missing_cpu[service.name] < -EPSILON,
                        reclaim_mem=missing_mem[service.name] < -EPSILON,
                    )
                )

        starving = sorted(
            (
                s
                for s in view.services
                if missing_cpu[s.name] > EPSILON or missing_mem[s.name] > EPSILON
            ),
            key=lambda s: -(max(missing_cpu[s.name], 0.0) + max(missing_mem[s.name], 0.0) / 1024.0),
        )
        for service in starving:
            actions.extend(
                self._acquire_both(
                    service,
                    view,
                    ledger,
                    max(0.0, missing_cpu[service.name]),
                    max(0.0, missing_mem[service.name]),
                )
            )
        return actions

    # ------------------------------------------------------------------
    # Reclamation (mutual removal condition)
    # ------------------------------------------------------------------
    def _reclaim_both(
        self,
        service: ServiceView,
        view: ClusterView,
        ledger: NodeLedger,
        removed: set[str],
        *,
        reclaim_cpu: bool,
        reclaim_mem: bool,
    ) -> list[ScalingAction]:
        actions: list[ScalingAction] = []
        target = service.target_utilization
        replicas = sorted(
            service.measurable_replicas(),
            key=_by_combined_utilization,
        )
        live = service.replica_count

        for replica in replicas:
            if replica.container_id in removed:
                continue
            cpu_give = self.reclaimable_cpus(replica, target) if reclaim_cpu else 0.0
            mem_give = self.reclaimable_mem(replica, target) if reclaim_mem else 0.0
            if cpu_give <= EPSILON and mem_give <= EPSILON:
                continue

            new_cpu = replica.cpu_request - max(0.0, cpu_give)
            new_mem = replica.mem_limit - max(0.0, mem_give)

            cpu_below = new_cpu < self.min_cpu_removal
            mem_below = new_mem < self.min_mem_removal
            if cpu_below and mem_below:
                # Mutual condition met: the replica is idle on both axes.
                if live > service.min_replicas and self.guard.can_scale_down(service.name, view.now):
                    actions.append(RemoveReplica(replica.container_id, reason="reclaim-remove"))
                    removed.add(replica.container_id)
                    ledger.release(replica.node, _reservation(replica))
                    self.guard.record_scale_down(service.name, view.now)
                    live -= 1
                    if self.tracer.enabled:
                        self.tracer.record_action(
                            kind="remove-replica", service=service.name,
                            target=replica.container_id, reason="reclaim-remove", metric="cpu+mem",
                            value=replica.cpu_utilization, threshold=target,
                            detail=(
                                f"mutual floors: cpu {new_cpu:.3f}<{self.min_cpu_removal:.3f}"
                                f" and mem {new_mem:.1f}<{self.min_mem_removal:.1f}"
                                f" on {replica.node}"
                            ),
                        )
                    continue

            # Keep it: clamp each axis at its floor and shrink what remains.
            # The memory floor also respects the service's baseline limit:
            # shrinking a kept replica far below its deployment size invites
            # an OOM kill on the next burst, defeating the point of
            # memory-aware scaling.
            new_cpu = max(new_cpu, self.min_cpu_removal)
            new_mem = max(new_mem, self.mem_floor, 0.75 * service.base_mem_limit)
            cpu_delta = replica.cpu_request - new_cpu
            mem_delta = replica.mem_limit - new_mem
            if cpu_delta <= EPSILON and mem_delta <= EPSILON:
                continue
            actions.append(
                VerticalScale(
                    replica.container_id,
                    cpu_request=new_cpu if cpu_delta > EPSILON else None,
                    mem_limit=new_mem if mem_delta > EPSILON else None,
                    reason="reclaim",
                )
            )
            ledger.release(
                replica.node,
                ResourceVector(cpu=max(cpu_delta, 0.0), memory=max(mem_delta, 0.0)),
            )
            if self.tracer.enabled:
                self.tracer.record_action(
                    kind="vertical-scale", service=service.name,
                    target=replica.container_id, reason="reclaim", metric="cpu+mem",
                    value=replica.cpu_utilization, threshold=target,
                    detail=(
                        f"cpu {replica.cpu_request:.3f}->{new_cpu:.3f}"
                        f" mem {replica.mem_limit:.1f}->{new_mem:.1f} on {replica.node}"
                    ),
                )
        return actions

    # ------------------------------------------------------------------
    # Acquisition (two axes, then spill)
    # ------------------------------------------------------------------
    def _acquire_both(
        self,
        service: ServiceView,
        view: ClusterView,
        ledger: NodeLedger,
        missing_cpu: float,
        missing_mem: float,
    ) -> list[ScalingAction]:
        actions: list[ScalingAction] = []
        target = service.target_utilization
        acquired_cpu = 0.0
        acquired_mem = 0.0
        replicas = sorted(
            service.measurable_replicas(),
            key=_by_combined_utilization_desc,
        )

        for replica in replicas:
            need_cpu = max(0.0, self.required_cpus(replica, target)) if missing_cpu > EPSILON else 0.0
            need_mem = max(0.0, self.required_mem(replica, target)) if missing_mem > EPSILON else 0.0
            if need_cpu <= EPSILON and need_mem <= EPSILON:
                continue
            available = ledger.available(replica.node)
            got_cpu = min(need_cpu, available.cpu)
            got_mem = min(need_mem, available.memory)
            if got_cpu <= EPSILON and got_mem <= EPSILON:
                continue
            actions.append(
                VerticalScale(
                    replica.container_id,
                    cpu_request=replica.cpu_request + got_cpu if got_cpu > EPSILON else None,
                    mem_limit=replica.mem_limit + got_mem if got_mem > EPSILON else None,
                    reason="acquire",
                )
            )
            ledger.take(replica.node, ResourceVector(cpu=got_cpu, memory=got_mem))
            acquired_cpu += got_cpu
            acquired_mem += got_mem
            if self.tracer.enabled:
                self.tracer.record_action(
                    kind="vertical-scale", service=service.name,
                    target=replica.container_id, reason="acquire", metric="cpu+mem",
                    value=replica.cpu_utilization, threshold=target,
                    detail=(
                        f"cpu {replica.cpu_request:.3f}->{replica.cpu_request + got_cpu:.3f}"
                        f" mem {replica.mem_limit:.1f}->{replica.mem_limit + got_mem:.1f}"
                        f" on {replica.node}"
                    ),
                )

        cpu_short = missing_cpu - acquired_cpu
        mem_short = missing_mem - acquired_mem
        if cpu_short > EPSILON or mem_short > EPSILON:
            actions.extend(self._spill_both(service, view, ledger, cpu_short, mem_short))
        return actions

    def _spill_both(
        self,
        service: ServiceView,
        view: ClusterView,
        ledger: NodeLedger,
        cpu_short: float,
        mem_short: float,
    ) -> list[ScalingAction]:
        """Horizontal spill sized for whichever axes are still starved."""
        if not self.guard.can_scale_up(service.name, view.now):
            return []
        actions: list[ScalingAction] = []
        live = service.replica_count
        while (cpu_short > EPSILON or mem_short > EPSILON) and live < service.max_replicas:
            minimum = ResourceVector(
                cpu=self.min_cpu_spawn,
                memory=service.base_mem_limit,
                network=service.base_net_rate,
            )
            candidates = ledger.candidates_for(service.name, minimum, exclude_hosting=True)
            if not candidates:
                break
            node = candidates[0]
            available = ledger.available(node)
            cpu = min(max(cpu_short, self.min_cpu_spawn), available.cpu)
            mem = min(max(mem_short, service.base_mem_limit), available.memory)
            allocation = ResourceVector(cpu, mem, service.base_net_rate)
            ledger.plan_placement(node, service.name, allocation)
            actions.append(
                AddReplica(
                    service=service.name,
                    cpu_request=cpu,
                    mem_limit=mem,
                    net_rate=service.base_net_rate,
                    node=node,
                    exclude_hosting=True,
                    reason="spill",
                )
            )
            if self.tracer.enabled:
                self.tracer.record_action(
                    kind="add-replica", service=service.name, target=node,
                    reason="spill", metric="missing-cpu",
                    value=cpu_short, threshold=0.0,
                    detail=f"cpu {cpu:.3f} mem {mem:.1f} on {node}",
                )
            cpu_short -= cpu
            mem_short -= mem
            live += 1
        if actions:
            self.guard.record_scale_up(service.name, view.now)
        return actions
