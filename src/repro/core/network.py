"""The dedicated network scaling algorithm (Section IV-A2).

"There is no known generic implementation of network bandwidth scaling nor
is it natively supported in Kubernetes.  Therefore, we chose to design an
exploratory horizontal algorithm ...  This algorithm uses the same algorithm
as Kubernetes, but replaces CPU usage for outgoing network bandwidth usage
in its calculations."

Mechanically that is the whole definition, and the implementation reflects
it: the controller arithmetic lives in
:class:`~repro.core.kubernetes.KubernetesHpa`; this subclass swaps the
metric to egress-bandwidth utilization (measured against each replica's
guaranteed tc rate).  What makes it *effective* is the physics it exploits:
horizontally spreading replicas thins each machine's tx queues
(Section III-C / Figure 3), which CPU-driven scaling only triggers by the
accident of networking syscall load.
"""

from __future__ import annotations

from repro.core.kubernetes import KubernetesHpa


class NetworkHpa(KubernetesHpa):
    """Kubernetes' formula over outgoing network bandwidth."""

    name = "network"
    metric = "network"
