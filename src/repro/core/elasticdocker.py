"""ElasticDocker-style vertical autoscaler with live migration (extension).

Section II-A describes ElasticDocker (Al-Dhuraibi et al., CLOUD 2017): it
"employs the MAPE-K loop to monitor CPU and memory usage and autonomously
scales Docker containers vertically.  It also performs live migration of
containers, when the host machine does not have sufficient resources.  This
approach was compared with the horizontally scaling Kubernetes, and shown
to outperform Kubernetes by 37.63%.  The main flaw with this solution is
the difference in monitoring and scaling periods between ElasticDocker and
Kubernetes" — 4 s vs 30 s, an unfair comparison the paper calls out.

Implementing the comparator lets the benchmarks *quantify* that critique
(`benchmarks/test_ext_elasticdocker.py`): ElasticDocker@4s vs Kubernetes@30s
reproduces a large win; at equal 5 s periods the win shrinks; and HyScale
beats it outright once demand exceeds one machine, because vertical scaling
plus migration still cannot exceed single-host capacity — the paper's core
argument for hybridization.

Mechanics, following the ElasticDocker description (threshold rules on CPU
and memory, multiplicative adjustment, migrate when the host is full):

* utilization above ``high_watermark``  -> grow the allocation by ``step``
  (x1.5), capped by the node's free capacity;
* the node cannot satisfy the grow     -> live-migrate to the machine with
  the most free capacity and grow there;
* utilization below ``low_watermark``  -> shrink by ``step`` toward floors.

Replica counts never change: this is the pure-vertical end of the design
space.
"""

from __future__ import annotations

from repro.cluster.resources import ResourceVector
from repro.core.actions import MigrateReplica, ScalingAction, VerticalScale
from repro.core.policy import AutoscalingPolicy, NodeLedger
from repro.core.view import ClusterView, ReplicaView
from repro.errors import PolicyError
from repro.units import same_quantity


class ElasticDockerPolicy(AutoscalingPolicy):
    """Threshold-driven vertical scaling with spill-over migration."""

    name = "elasticdocker"

    def __init__(
        self,
        *,
        high_watermark: float = 0.9,
        low_watermark: float = 0.3,
        step: float = 1.5,
        min_cpu: float = 0.25,
        min_mem: float = 256.0,
        migration_cooldown: float = 30.0,
    ):
        if not 0 < low_watermark < high_watermark <= 2.0:
            raise PolicyError("need 0 < low_watermark < high_watermark <= 2")
        if step <= 1.0:
            raise PolicyError("step must be > 1")
        if min_cpu <= 0 or min_mem <= 0:
            raise PolicyError("floors must be positive")
        if migration_cooldown < 0:
            raise PolicyError("migration_cooldown must be >= 0")
        self.high_watermark = float(high_watermark)
        self.low_watermark = float(low_watermark)
        self.step = float(step)
        self.min_cpu = float(min_cpu)
        self.min_mem = float(min_mem)
        #: Minimum spacing between migrations of the same container — each
        #: move freezes the container, so chasing a moving bottleneck with
        #: back-to-back migrations starves it (the anti-thrash analogue of
        #: the paper's rescale intervals).
        self.migration_cooldown = float(migration_cooldown)
        self._last_migration: dict[str, float] = {}

    def decide(self, view: ClusterView) -> list[ScalingAction]:
        """One MAPE iteration over every replica."""
        actions: list[ScalingAction] = []
        ledger = NodeLedger(view, tracer=self.tracer)
        for service in view.services:
            for replica in service.measurable_replicas():
                actions.extend(self._adjust(replica, ledger, view.now))
        return actions

    # ------------------------------------------------------------------
    def _adjust(self, replica: ReplicaView, ledger: NodeLedger, now: float) -> list[ScalingAction]:
        cpu_util = replica.cpu_utilization
        mem_util = replica.mem_utilization
        # Resolved once: this runs per replica per step (HOT003).
        tracing = self.tracer.enabled
        if tracing:
            for metric, util in (("cpu", cpu_util), ("memory", mem_util)):
                verdict = (
                    "grow" if util > self.high_watermark
                    else "shrink" if util < self.low_watermark
                    else "hold"
                )
                threshold = self.high_watermark if util > self.high_watermark else self.low_watermark
                self.tracer.record_metric(
                    service=replica.service, metric=metric,
                    value=util, threshold=threshold, verdict=verdict,
                )

        wanted_cpu = replica.cpu_request
        wanted_mem = replica.mem_limit
        if cpu_util > self.high_watermark:
            wanted_cpu = replica.cpu_request * self.step
        elif cpu_util < self.low_watermark:
            wanted_cpu = max(self.min_cpu, replica.cpu_request / self.step)
        if mem_util > self.high_watermark:
            wanted_mem = replica.mem_limit * self.step
        elif mem_util < self.low_watermark:
            wanted_mem = max(self.min_mem, replica.mem_limit / self.step)

        grow_cpu = max(0.0, wanted_cpu - replica.cpu_request)
        grow_mem = max(0.0, wanted_mem - replica.mem_limit)
        available = ledger.available(replica.node)

        if grow_cpu <= available.cpu + 1e-9 and grow_mem <= available.memory + 1e-9:
            if same_quantity(wanted_cpu, replica.cpu_request) and same_quantity(
                wanted_mem, replica.mem_limit
            ):
                return []
            ledger.take(
                replica.node,
                ResourceVector(cpu=grow_cpu, memory=grow_mem),
            )
            shrink_cpu = max(0.0, replica.cpu_request - wanted_cpu)
            shrink_mem = max(0.0, replica.mem_limit - wanted_mem)
            if shrink_cpu > 0 or shrink_mem > 0:
                ledger.release(replica.node, ResourceVector(cpu=shrink_cpu, memory=shrink_mem))
            if tracing:
                self._record_adjust(
                    replica, "elastic", cpu_util, mem_util, wanted_cpu, wanted_mem
                )
            return [
                VerticalScale(
                    replica.container_id,
                    cpu_request=wanted_cpu
                    if not same_quantity(wanted_cpu, replica.cpu_request)
                    else None,
                    mem_limit=wanted_mem
                    if not same_quantity(wanted_mem, replica.mem_limit)
                    else None,
                    reason="elastic",
                )
            ]

        # "When the host machine does not have sufficient resources":
        # migrate to the roomiest machine that fits the grown reservation —
        # or, failing that, one that at least offers meaningful headroom
        # over the current size (the monitor clamps the grow on arrival).
        candidates: list[str] = []
        last = self._last_migration.get(replica.container_id)
        if last is None or now - last >= self.migration_cooldown:
            needed = ResourceVector(wanted_cpu, wanted_mem, replica.net_rate)
            candidates = ledger.candidates_for(replica.service, needed, exclude_hosting=False)
            if not candidates:
                modest = ResourceVector(
                    replica.cpu_request + self.min_cpu,
                    replica.mem_limit + self.min_mem,
                    replica.net_rate,
                )
                candidates = ledger.candidates_for(replica.service, modest, exclude_hosting=False)
            candidates = [c for c in candidates if c != replica.node]
        if not candidates:
            # Nowhere to go: grow as far as the current host allows.
            capped_cpu = replica.cpu_request + min(grow_cpu, available.cpu)
            capped_mem = replica.mem_limit + min(grow_mem, available.memory)
            if same_quantity(capped_cpu, replica.cpu_request) and same_quantity(
                capped_mem, replica.mem_limit
            ):
                return []
            ledger.take(
                replica.node,
                ResourceVector(
                    cpu=capped_cpu - replica.cpu_request,
                    memory=capped_mem - replica.mem_limit,
                ),
            )
            if tracing:
                self._record_adjust(
                    replica, "elastic-capped", cpu_util, mem_util, capped_cpu, capped_mem
                )
            return [
                VerticalScale(
                    replica.container_id,
                    cpu_request=capped_cpu,
                    mem_limit=capped_mem,
                    reason="elastic-capped",
                )
            ]

        target = candidates[0]
        self._last_migration[replica.container_id] = now
        ledger.release(
            replica.node,
            ResourceVector(replica.cpu_request, replica.mem_limit, replica.net_rate),
        )
        landing = ResourceVector(wanted_cpu, wanted_mem, replica.net_rate).elementwise_min(
            ledger.available(target)
        )
        ledger.plan_placement(target, replica.service, landing)
        if tracing:
            self.tracer.record_action(
                kind="migrate-replica", service=replica.service,
                target=replica.container_id, reason="elastic-migrate", metric="cpu",
                value=cpu_util, threshold=self.high_watermark,
                detail=f"{replica.node}->{target}",
            )
            self._record_adjust(
                replica, "elastic-after-migrate", cpu_util, mem_util, wanted_cpu, wanted_mem
            )
        return [
            MigrateReplica(replica.container_id, target, reason="elastic-migrate"),
            VerticalScale(
                replica.container_id,
                cpu_request=wanted_cpu,
                mem_limit=wanted_mem,
                reason="elastic-after-migrate",
            ),
        ]

    def _record_adjust(
        self,
        replica: ReplicaView,
        reason: str,
        cpu_util: float,
        mem_util: float,
        new_cpu: float,
        new_mem: float,
    ) -> None:
        """Trace one vertical adjustment, naming the axis that triggered it."""
        if abs(new_cpu - replica.cpu_request) >= abs(new_mem - replica.mem_limit) / 1024.0:
            metric, value = "cpu", cpu_util
        else:
            metric, value = "memory", mem_util
        threshold = self.high_watermark if value > self.high_watermark else self.low_watermark
        self.tracer.record_action(
            kind="vertical-scale", service=replica.service,
            target=replica.container_id, reason=reason, metric=metric,
            value=value, threshold=threshold,
            detail=(
                f"cpu {replica.cpu_request:.3f}->{new_cpu:.3f}"
                f" mem {replica.mem_limit:.1f}->{new_mem:.1f} on {replica.node}"
            ),
        )
