"""Anti-thrash rescaling intervals.

"To prevent thrashing between quickly scaling up and scaling down
horizontally, the Kubernetes algorithm uses minimum scale up and scale down
time intervals" (Section IV-A1); the experiments use 3 s up / 50 s down.
HyScale keeps the same guard for *horizontal* operations while exempting
vertical ones, "as vertical scaling must perform fine-grained adjustments
quickly and frequently" (Section IV-B1).
"""

from __future__ import annotations

from repro.errors import PolicyError


class RescaleIntervalGuard:
    """Per-service timers gating horizontal scale up / scale down."""

    def __init__(self, up_interval: float = 3.0, down_interval: float = 50.0):
        if up_interval < 0 or down_interval < 0:
            raise PolicyError("rescale intervals must be non-negative")
        self.up_interval = float(up_interval)
        self.down_interval = float(down_interval)
        self._last_up: dict[str, float] = {}
        self._last_down: dict[str, float] = {}

    def can_scale_up(self, service: str, now: float) -> bool:
        """True if a scale-up for ``service`` is allowed at ``now``."""
        last = self._last_up.get(service)
        return last is None or now - last >= self.up_interval

    def can_scale_down(self, service: str, now: float) -> bool:
        """True if a scale-down for ``service`` is allowed at ``now``."""
        last = self._last_down.get(service)
        return last is None or now - last >= self.down_interval

    def record_scale_up(self, service: str, now: float) -> None:
        """Start the scale-up cooldown for ``service``."""
        self._last_up[service] = now

    def record_scale_down(self, service: str, now: float) -> None:
        """Start the scale-down cooldown for ``service``."""
        self._last_down[service] = now

    def reset(self, service: str | None = None) -> None:
        """Clear timers for one service (or all)."""
        if service is None:
            self._last_up.clear()
            self._last_down.clear()
        else:
            self._last_up.pop(service, None)
            self._last_down.pop(service, None)
