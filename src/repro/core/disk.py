"""Exploratory disk I/O scaling algorithm (extension).

The paper: "Additional computing resource types, such as disk I/O, are also
supported, however, they are not currently implemented and will be part of
future works" (Section VI).  This module is that future work, built the
same way the paper built its network algorithm (Section IV-A2): take the
Kubernetes controller and swap the metric — here, measured disk throughput
against each replica's soft quota.

The physics it exploits mirrors Figure 3's: a machine's spindle serves
interleaved streams poorly (seek thrash — see
:class:`repro.cluster.disk.DiskDevice`), so replicating a disk-hungry
service across machines multiplies both raw spindle bandwidth and
sequential efficiency.  CPU-driven scalers never see the pressure: a
request waiting on disk burns no CPU.
"""

from __future__ import annotations

from repro.core.kubernetes import KubernetesHpa


class DiskHpa(KubernetesHpa):
    """Kubernetes' formula over disk I/O throughput (our extension)."""

    name = "disk"
    metric = "disk"
