"""The Kubernetes horizontal autoscaling algorithm (Section IV-A1).

The paper benchmarks HyScale against this exact controller, restated here:

    utilization_r = usage_r / requested_r
    NumReplicas_m = ceil( sum(utilization_r) / Target_m )

with two anti-thrash features: minimum scale-up / scale-down intervals
(3 s / 50 s in the experiments) and a 10 % tolerance band —

    rescale only if | average(utilization_r) / Target_m ... | exceeds 0.1

(the paper writes ``|average(usage_r)/Target_m − 1| > 0.1``; usages and
targets are both "measured as a percentage", i.e. utilizations).

The same arithmetic drives the paper's network scaling algorithm with
bandwidth in place of CPU, so the controller here is parameterized by a
metric extractor and :class:`~repro.core.network.NetworkHpa` subclasses it.
"""

from __future__ import annotations

import math

from repro.core.actions import AddReplica, RemoveReplica, ScalingAction
from repro.core.intervals import RescaleIntervalGuard
from repro.core.policy import AutoscalingPolicy
from repro.core.view import ClusterView, ReplicaView, ServiceView
from repro.errors import PolicyError


# Module-level sort key: victim selection runs on the per-step reconcile
# path and must not construct a fresh function object per call (HOT001).
def _by_container_id(replica: ReplicaView) -> str:
    return replica.container_id


class KubernetesHpa(AutoscalingPolicy):
    """Horizontal-only, threshold-driven scaling on one utilization metric."""

    name = "kubernetes"
    #: Which utilization signal drives the controller; the network algorithm
    #: overrides this ("replaces CPU usage for outgoing network bandwidth
    #: usage in its calculations", Section IV-A2).
    metric = "cpu"

    def __init__(
        self,
        *,
        scale_up_interval: float = 3.0,
        scale_down_interval: float = 50.0,
        tolerance: float = 0.1,
    ):
        if tolerance < 0:
            raise PolicyError("tolerance must be non-negative")
        self.guard = RescaleIntervalGuard(scale_up_interval, scale_down_interval)
        self.tolerance = float(tolerance)

    # ------------------------------------------------------------------
    # Metric plumbing
    # ------------------------------------------------------------------
    def utilization(self, replica: ReplicaView) -> float:
        """``utilization_r`` for the controller's metric."""
        if self.metric == "cpu":
            return replica.cpu_utilization
        if self.metric == "memory":
            return replica.mem_utilization
        if self.metric == "network":
            return replica.net_utilization
        if self.metric == "disk":
            return replica.disk_utilization
        raise PolicyError(f"unknown metric {self.metric!r}")

    # ------------------------------------------------------------------
    # Controller
    # ------------------------------------------------------------------
    def decide(self, view: ClusterView) -> list[ScalingAction]:
        """One reconciliation pass over every service."""
        actions: list[ScalingAction] = []
        for service in view.services:
            actions.extend(self._reconcile(service, view.now))
        return actions

    def desired_replicas(self, service: ServiceView) -> int:
        """``ceil(sum(utilization_r) / Target_m)``, clamped to the bounds."""
        replicas = service.measurable_replicas()
        if not replicas:
            return max(service.min_replicas, service.replica_count)
        total_utilization = sum(self.utilization(r) for r in replicas)
        desired = math.ceil(total_utilization / service.target_utilization - 1e-9)
        return max(service.min_replicas, min(service.max_replicas, desired))

    def within_tolerance(self, service: ServiceView) -> bool:
        """The 10 % dead band: skip rescaling near the target."""
        replicas = service.measurable_replicas()
        if not replicas:
            return False
        avg_utilization = sum(self.utilization(r) for r in replicas) / len(replicas)
        return abs(avg_utilization / service.target_utilization - 1.0) <= self.tolerance

    def average_utilization(self, service: ServiceView) -> float:
        """Mean ``utilization_r`` over measurable replicas (0.0 when none)."""
        replicas = service.measurable_replicas()
        if not replicas:
            return 0.0
        return sum(self.utilization(r) for r in replicas) / len(replicas)

    def _reconcile(self, service: ServiceView, now: float) -> list[ScalingAction]:
        current = service.replica_count
        actions, verdict = self._reconcile_actions(service, now)
        if self.tracer.enabled:
            value = self.average_utilization(service)
            threshold = service.target_utilization
            self.tracer.record_metric(
                service=service.name, metric=self.metric, value=value, threshold=threshold,
                verdict=verdict,
            )
            for action in actions:
                if isinstance(action, AddReplica):
                    self.tracer.record_action(
                        kind="add-replica", service=service.name, reason=action.reason,
                        metric=self.metric, value=value, threshold=threshold,
                        detail=f"replicas {current}->{current + len(actions)}",
                    )
                else:
                    self.tracer.record_action(
                        kind="remove-replica", service=service.name,
                        target=getattr(action, "container_id", ""), reason=action.reason,
                        metric=self.metric, value=value, threshold=threshold,
                        detail=f"replicas {current}->{current - len(actions)}",
                    )
        return actions

    def _reconcile_actions(self, service: ServiceView, now: float) -> tuple[list[ScalingAction], str]:
        """The controller's decision plus a verdict label for the trace."""
        current = service.replica_count
        if current == 0:
            # Nothing running (first tick, or everything OOM-killed): restore
            # the user-specified minimum.
            return (
                [self._new_replica(service, reason="bootstrap") for _ in range(service.min_replicas)],
                "bootstrap",
            )

        desired = self.desired_replicas(service)
        # The replica bounds are hard constraints; the tolerance band only
        # mutes *metric-driven* rescaling inside the legal range.
        if service.min_replicas <= current <= service.max_replicas and self.within_tolerance(service):
            return [], "within-tolerance"
        if desired == current:
            return [], "hold"

        if desired > current:
            if not self.guard.can_scale_up(service.name, now):
                return [], "scale-up-blocked"
            self.guard.record_scale_up(service.name, now)
            return (
                [self._new_replica(service, reason="scale-up") for _ in range(desired - current)],
                "scale-up",
            )

        if not self.guard.can_scale_down(service.name, now):
            return [], "scale-down-blocked"
        self.guard.record_scale_down(service.name, now)
        victims = self._scale_in_victims(service, current - desired)
        return [RemoveReplica(v.container_id, reason="scale-down") for v in victims], "scale-down"

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _new_replica(self, service: ServiceView, reason: str) -> AddReplica:
        """Horizontal scale-out copies the service's base allocation —
        replication "copies over" resource allocations (Section I)."""
        return AddReplica(
            service=service.name,
            cpu_request=service.base_cpu_request,
            mem_limit=service.base_mem_limit,
            net_rate=service.base_net_rate,
            exclude_hosting=False,
            reason=reason,
        )

    def _scale_in_victims(self, service: ServiceView, count: int) -> list[ReplicaView]:
        """Newest replicas die first (Kubernetes' default victim order)."""
        ordered = sorted(service.replicas, key=_by_container_id, reverse=True)
        return ordered[:count]
