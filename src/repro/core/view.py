"""Immutable cluster snapshots consumed by autoscaling policies.

The MONITOR "periodically queries each of the nodes within the cluster for
resource usage information" (Section IV-A1); the result of one such query
round is a :class:`ClusterView`.  Policies receive only this snapshot —
never live cluster objects — so decisions are pure functions of observable
state, exactly like a controller reading a metrics API.

Usage figures are *means over the query period* (how the Kubernetes
controller computes utilization); allocation figures are the current
configuration.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.cluster.resources import ResourceVector
from repro.errors import PolicyError


@dataclass(frozen=True)
class ReplicaView:
    """One replica as the monitor sees it."""

    container_id: str
    service: str
    node: str
    booting: bool  # PENDING containers have no usage signal yet

    cpu_request: float  # cores allocated (the paper's ``requested_r``)
    cpu_usage: float  # mean cores used over the query period (``usage_r``)
    mem_limit: float  # MiB allocated
    mem_usage: float  # MiB used (mean)
    net_rate: float  # Mbit/s guaranteed
    net_usage: float  # Mbit/s used (mean)
    disk_quota: float = 0.0  # MB/s soft quota (scaling reference only)
    disk_usage: float = 0.0  # MB/s used (mean)

    @property
    def cpu_utilization(self) -> float:
        """``usage_r / requested_r`` — may exceed 1 (work-conserving shares)."""
        return self.cpu_usage / self.cpu_request if self.cpu_request > 0 else 0.0

    @property
    def mem_utilization(self) -> float:
        """Memory analogue of :attr:`cpu_utilization`."""
        return self.mem_usage / self.mem_limit if self.mem_limit > 0 else 0.0

    @property
    def net_utilization(self) -> float:
        """Network analogue of :attr:`cpu_utilization`."""
        return self.net_usage / self.net_rate if self.net_rate > 0 else 0.0

    @property
    def disk_utilization(self) -> float:
        """Disk analogue of :attr:`cpu_utilization` (vs. the soft quota)."""
        return self.disk_usage / self.disk_quota if self.disk_quota > 0 else 0.0


@dataclass(frozen=True)
class ServiceView:
    """One microservice: spec knobs + replica snapshots."""

    name: str
    min_replicas: int
    max_replicas: int
    target_utilization: float  # the paper's ``Target_m`` as a fraction
    #: Per-replica allocation a fresh (horizontally scaled) replica copies.
    base_cpu_request: float
    base_mem_limit: float
    base_net_rate: float
    replicas: tuple[ReplicaView, ...] = ()

    @property
    def replica_count(self) -> int:
        """Active replicas, booting included (they hold reservations)."""
        return len(self.replicas)

    def measurable_replicas(self) -> tuple[ReplicaView, ...]:
        """Replicas with a usage signal (booting ones excluded)."""
        return tuple(r for r in self.replicas if not r.booting)

    # Aggregates used verbatim in the paper's equations -----------------
    def total_cpu_usage(self) -> float:
        """``sum(usage_r)`` over measurable replicas."""
        return sum(r.cpu_usage for r in self.measurable_replicas())

    def total_cpu_requested(self) -> float:
        """``sum(requested_r)`` over measurable replicas."""
        return sum(r.cpu_request for r in self.measurable_replicas())

    def total_mem_usage(self) -> float:
        """Memory analogue of :meth:`total_cpu_usage`."""
        return sum(r.mem_usage for r in self.measurable_replicas())

    def total_mem_requested(self) -> float:
        """Memory analogue of :meth:`total_cpu_requested`."""
        return sum(r.mem_limit for r in self.measurable_replicas())

    def total_net_usage(self) -> float:
        """Network analogue of :meth:`total_cpu_usage`."""
        return sum(r.net_usage for r in self.measurable_replicas())

    def total_net_requested(self) -> float:
        """Network analogue of :meth:`total_cpu_requested`."""
        return sum(r.net_rate for r in self.measurable_replicas())

    def total_disk_usage(self) -> float:
        """Disk analogue of :meth:`total_cpu_usage`."""
        return sum(r.disk_usage for r in self.measurable_replicas())


@dataclass(frozen=True)
class NodeView:
    """One machine: capacity and what is reserved on it."""

    name: str
    capacity: ResourceVector
    allocated: ResourceVector
    services: tuple[str, ...] = ()  # services with a replica on this node

    @property
    def available(self) -> ResourceVector:
        """Unreserved capacity, clamped non-negative."""
        return (self.capacity - self.allocated).clamp_floor(0.0)

    def hosts(self, service: str) -> bool:
        """True if this node already hosts a replica of ``service``."""
        return service in self.services


@dataclass(frozen=True)
class ClusterView:
    """One monitor query round over the whole cluster."""

    now: float
    services: tuple[ServiceView, ...] = ()
    nodes: tuple[NodeView, ...] = ()
    _service_index: dict[str, int] = field(default_factory=dict, repr=False, compare=False)
    _node_index: dict[str, int] = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Frozen dataclass: populate the lookup indices via object.__setattr__.
        object.__setattr__(self, "_service_index", {s.name: i for i, s in enumerate(self.services)})
        object.__setattr__(self, "_node_index", {n.name: i for i, n in enumerate(self.nodes)})
        if len(self._service_index) != len(self.services):
            raise PolicyError("duplicate service in view")
        if len(self._node_index) != len(self.nodes):
            raise PolicyError("duplicate node in view")

    def service(self, name: str) -> ServiceView:
        """Service snapshot by name."""
        try:
            return self.services[self._service_index[name]]
        except KeyError:
            raise PolicyError(f"view has no service {name!r}") from None

    def node(self, name: str) -> NodeView:
        """Node snapshot by name."""
        try:
            return self.nodes[self._node_index[name]]
        except KeyError:
            raise PolicyError(f"view has no node {name!r}") from None

    def node_of(self, replica: ReplicaView) -> NodeView:
        """Node snapshot hosting the given replica."""
        return self.node(replica.node)

    def digest(self) -> str:
        """Short content digest of the whole snapshot.

        Two views of identical observable state produce the same digest, so
        decision traces can be correlated ("this tick saw the same cluster
        as that one") and same-seed runs produce byte-identical traces.
        Floats are folded in via ``repr`` (exact, locale-independent).
        """
        hasher = hashlib.sha256()
        parts: list[str] = [repr(self.now)]
        for service in self.services:
            parts.append(
                f"s|{service.name}|{service.min_replicas}|{service.max_replicas}"
                f"|{service.target_utilization!r}|{service.base_cpu_request!r}"
                f"|{service.base_mem_limit!r}|{service.base_net_rate!r}"
            )
            for r in service.replicas:
                parts.append(
                    f"r|{r.container_id}|{r.node}|{int(r.booting)}|{r.cpu_request!r}"
                    f"|{r.cpu_usage!r}|{r.mem_limit!r}|{r.mem_usage!r}|{r.net_rate!r}"
                    f"|{r.net_usage!r}|{r.disk_quota!r}|{r.disk_usage!r}"
                )
        for node in self.nodes:
            parts.append(
                f"n|{node.name}|{node.capacity!r}|{node.allocated!r}|{','.join(node.services)}"
            )
        hasher.update("\n".join(parts).encode("utf-8"))
        return hasher.hexdigest()[:16]
