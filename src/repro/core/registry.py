"""The policy-name registry: one place where names become policies.

Section V-C: the scaling algorithm "can be specified at initialization or
through the command-line interface".  Before this module, that name-to-
policy mapping lived in :func:`repro.experiments.configs.make_policy` and
the CLI kept its own copy of the name list; extensions had no way to add an
algorithm without editing both.  The registry is now the single source of
truth — the CLI, the experiment specs, and :func:`resolve_policy` all read
from it, and :func:`register_policy` lets extension code plug in new
algorithms under their own names (see ``docs/extending.md``).

Anywhere the public API accepts an :class:`AutoscalingPolicy`, it also
accepts one of these names; :func:`resolve_policy` performs the coercion.
"""

from __future__ import annotations

from typing import Callable

from repro.config import SimulationConfig
from repro.core.disk import DiskHpa
from repro.core.elasticdocker import ElasticDockerPolicy
from repro.core.hyscale import HyScaleCpu
from repro.core.hyscale_mem import HyScaleCpuMem
from repro.core.kubernetes import KubernetesHpa
from repro.core.kubernetes_multi import KubernetesMemoryHpa, KubernetesMultiMetricHpa
from repro.core.network import NetworkHpa
from repro.core.policy import AutoscalingPolicy
from repro.core.predictive import PredictiveHyScale
from repro.errors import ExperimentError

#: Algorithm names as the paper's figures label them.
ALGORITHMS = ("kubernetes", "hybrid", "hybridmem", "network")

#: Algorithms added by this reproduction beyond the paper's four.
EXTENSION_ALGORITHMS = ("disk", "elasticdocker", "predictive", "kubernetes-multi", "kubernetes-mem")

#: A factory builds a fresh policy for one run, sized by the run's config
#: (rescale intervals are per-run settings, not per-algorithm constants).
PolicyFactory = Callable[[SimulationConfig], AutoscalingPolicy]


def _interval_factory(
    cls: Callable[..., AutoscalingPolicy],
) -> PolicyFactory:
    """Factory for the interval-guarded controllers (all but ElasticDocker)."""

    def build(config: SimulationConfig) -> AutoscalingPolicy:
        return cls(
            scale_up_interval=config.scale_up_interval,
            scale_down_interval=config.scale_down_interval,
        )

    return build


_REGISTRY: dict[str, PolicyFactory] = {
    "kubernetes": _interval_factory(KubernetesHpa),
    "network": _interval_factory(NetworkHpa),
    "hybrid": _interval_factory(HyScaleCpu),
    "hybridmem": _interval_factory(HyScaleCpuMem),
    "disk": _interval_factory(DiskHpa),
    "kubernetes-multi": _interval_factory(KubernetesMultiMetricHpa),
    "kubernetes-mem": _interval_factory(KubernetesMemoryHpa),
    "predictive": _interval_factory(PredictiveHyScale),
    # Threshold-driven and purely vertical: the rescale-interval knobs do
    # not apply (ElasticDocker has no horizontal operations).
    "elasticdocker": lambda config: ElasticDockerPolicy(),
}


def registered_policies() -> tuple[str, ...]:
    """Every resolvable algorithm name, sorted."""
    return tuple(sorted(_REGISTRY))


def register_policy(name: str, factory: PolicyFactory, *, replace: bool = False) -> None:
    """Add an algorithm under ``name`` so string-accepting APIs find it.

    Raises :class:`~repro.errors.ExperimentError` if the name is taken and
    ``replace`` is not set.
    """
    if not name:
        raise ExperimentError("policy name must be non-empty")
    if name in _REGISTRY and not replace:
        raise ExperimentError(f"policy {name!r} is already registered")
    _REGISTRY[name] = factory


def make_policy(name: str, config: SimulationConfig | None = None) -> AutoscalingPolicy:
    """Build a fresh policy by name, sized by ``config``'s intervals."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ExperimentError(
            f"unknown algorithm {name!r}; known: {registered_policies()}"
        ) from None
    return factory(config or SimulationConfig())


def resolve_policy(
    policy: AutoscalingPolicy | str,
    config: SimulationConfig | None = None,
) -> AutoscalingPolicy:
    """Coerce ``policy`` to a policy object.

    Policy instances pass through untouched; strings are looked up in the
    registry and built with ``config``'s rescale intervals.  This is the
    one coercion point behind every API that accepts
    ``AutoscalingPolicy | str``.
    """
    if isinstance(policy, str):
        return make_policy(policy, config)
    if not isinstance(policy, AutoscalingPolicy):
        raise ExperimentError(
            f"expected an AutoscalingPolicy or algorithm name, got {type(policy).__name__}"
        )
    return policy
