"""Policy interface and planning helpers.

An :class:`AutoscalingPolicy` is a pure decision function: snapshot in,
actions out.  The MONITOR supports swapping policies "at initialization or
through the command-line interface" (Section V-C) — in code, any object
implementing this interface plugs in.

:class:`NodeLedger` solves the planning problem every multi-step policy has:
a view is a frozen snapshot, but as the policy emits actions (reclaim here,
acquire there, place a replica elsewhere) the *planned* availability of each
node changes.  The ledger tracks those provisional changes so one decision
round never double-spends a node's capacity.
"""

from __future__ import annotations

import abc

from repro.cluster.resources import ResourceVector
from repro.core.actions import ScalingAction
from repro.core.view import ClusterView
from repro.errors import PolicyError
from repro.obs.tracer import NULL_TRACER, Tracer


class AutoscalingPolicy(abc.ABC):
    """The contract every scaling algorithm implements."""

    #: Short identifier used in summaries and benchmark tables
    #: (e.g. ``"kubernetes"``, ``"hybrid"``, ``"hybridmem"``, ``"network"``).
    name: str = "abstract"

    #: Decision-trace sink.  The default :class:`~repro.obs.NullTracer` is a
    #: shared, stateless no-op, so untraced policies pay nothing; the
    #: MONITOR re-points this at the run's tracer (see
    #: :meth:`repro.platform.monitor.Monitor.set_policy`).
    tracer: Tracer = NULL_TRACER

    @abc.abstractmethod
    def decide(self, view: ClusterView) -> list[ScalingAction]:
        """Produce this period's scaling actions from a cluster snapshot."""

    def set_tracer(self, tracer: Tracer) -> None:
        """Point this policy's decision-evidence hooks at ``tracer``."""
        self.tracer = tracer


class NodeLedger:
    """Provisional per-node availability during one decision round.

    Initialized from the snapshot's reservations; ``take`` / ``release``
    record planned acquisitions and reclamations so later decisions in the
    same round see the updated headroom.  Also tracks which services each
    node hosts, since planned placements make a node ineligible for further
    replicas of the same service (the HyScale constraint).
    """

    def __init__(self, view: ClusterView, tracer: Tracer = NULL_TRACER):
        self._available: dict[str, ResourceVector] = {}
        self._hosted: dict[str, set[str]] = {}
        self._tracer = tracer
        for node in view.nodes:
            self._available[node.name] = node.available
            self._hosted[node.name] = set(node.services)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def node_names(self) -> list[str]:
        """All node names, sorted (deterministic iteration)."""
        return sorted(self._available)

    def available(self, node: str) -> ResourceVector:
        """Planned availability of one node."""
        try:
            return self._available[node]
        except KeyError:
            raise PolicyError(f"ledger has no node {node!r}") from None

    def hosts(self, node: str, service: str) -> bool:
        """True if the node hosts (or is planned to host) the service."""
        if node not in self._hosted:
            raise PolicyError(f"ledger has no node {node!r}")
        return service in self._hosted[node]

    def candidates_for(
        self,
        service: str,
        minimum: ResourceVector,
        *,
        exclude_hosting: bool = True,
    ) -> list[str]:
        """Nodes able to host a new replica needing at least ``minimum``.

        Ordered by descending available CPU (spread-style), ties by name.
        """
        out: list[str] = []
        for name in self.node_names():
            if exclude_hosting and self.hosts(name, service):
                continue
            if minimum.fits_within(self._available[name]):
                out.append(name)
        out.sort(key=lambda n: (-self._available[n].cpu, n))
        return out

    # ------------------------------------------------------------------
    # Writes (planned mutations)
    # ------------------------------------------------------------------
    def take(self, node: str, amount: ResourceVector) -> None:
        """Reserve ``amount`` on ``node``; raises if it would go negative."""
        if not amount.is_nonnegative():
            raise PolicyError("cannot take a negative amount")
        remaining = self.available(node) - amount
        if not remaining.is_nonnegative():
            raise PolicyError(
                f"ledger overdraft on {node}: taking {amount} from {self.available(node)}"
            )
        self._available[node] = remaining
        if self._tracer.enabled:
            self._tracer.record_ledger(
                op="take", node=node, cpu=amount.cpu, memory=amount.memory, network=amount.network
            )

    def release(self, node: str, amount: ResourceVector) -> None:
        """Return ``amount`` of reclaimed resources to ``node``."""
        if not amount.is_nonnegative():
            raise PolicyError("cannot release a negative amount")
        self._available[node] = self.available(node) + amount
        if self._tracer.enabled:
            self._tracer.record_ledger(
                op="release", node=node, cpu=amount.cpu, memory=amount.memory, network=amount.network
            )

    def plan_placement(self, node: str, service: str, allocation: ResourceVector) -> None:
        """Reserve a new replica's allocation and mark the node as hosting."""
        self.take(node, allocation)
        self._hosted[node].add(service)
        if self._tracer.enabled:
            self._tracer.record_ledger(
                op="plan-placement",
                node=node,
                service=service,
                cpu=allocation.cpu,
                memory=allocation.memory,
                network=allocation.network,
            )
