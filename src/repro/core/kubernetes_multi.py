"""Kubernetes' memory and multi-metric autoscaling variants.

Section IV-A1: "Recently, Kubernetes has added support to use memory
utilization or a custom metric instead of CPU utilization.  Kubernetes has
also attempted to provide support for multiple metrics, which is currently
in beta.  This support however is limited, as only the metric with the
largest scale is chosen."  (Section II-B makes the same critique: "After
evaluating each metric individually, the autoscaling controller only uses
one of these metrics.")

Both variants are implemented so the critique is testable:

* :class:`KubernetesMemoryHpa` — the HPA formula over memory utilization;
* :class:`KubernetesMultiMetricHpa` — evaluates the desired replica count
  per metric *independently* and applies the **largest** (exactly the beta
  behaviour the paper describes).  Still horizontal-only: even seeing both
  metrics, it can only answer with whole replicas — which is the paper's
  point about why hybrids win on mixed loads.
"""

from __future__ import annotations

from typing import Any

from repro.core.actions import ScalingAction
from repro.core.kubernetes import KubernetesHpa
from repro.core.view import ClusterView, ServiceView
from repro.errors import PolicyError

#: Metrics the multi-metric controller may combine.
SUPPORTED_METRICS = ("cpu", "memory", "network", "disk")


class KubernetesMemoryHpa(KubernetesHpa):
    """The Kubernetes HPA driven by memory utilization."""

    name = "kubernetes-mem"
    metric = "memory"


class KubernetesMultiMetricHpa(KubernetesHpa):
    """The beta multi-metric HPA: per-metric evaluation, largest wins."""

    name = "kubernetes-multi"

    def __init__(
        self,
        metrics: tuple[str, ...] = ("cpu", "memory"),
        **kwargs: Any,
    ):
        super().__init__(**kwargs)
        if not metrics:
            raise PolicyError("need at least one metric")
        unknown = set(metrics) - set(SUPPORTED_METRICS)
        if unknown:
            raise PolicyError(f"unsupported metrics: {sorted(unknown)}")
        self.metrics = tuple(metrics)

    # ------------------------------------------------------------------
    def desired_replicas(self, service: ServiceView) -> int:
        """``max`` over the per-metric desired counts (the beta rule)."""
        desires: list[int] = []
        for metric in self.metrics:
            self.metric = metric
            desires.append(super().desired_replicas(service))
        self.metric = self.metrics[0]
        return max(desires)

    def within_tolerance(self, service: ServiceView) -> bool:
        """Quiet only if *every* metric sits inside the dead band."""
        verdicts: list[bool] = []
        for metric in self.metrics:
            self.metric = metric
            verdicts.append(super().within_tolerance(service))
        self.metric = self.metrics[0]
        return all(verdicts)

    def decide(self, view: ClusterView) -> list[ScalingAction]:
        """Unchanged controller loop; only the two hooks above differ."""
        return super().decide(view)
