"""The null-object discipline shared by every optional instrument.

The simulator carries three opt-in instrumentation layers — decision traces
(:mod:`repro.obs`), streaming telemetry (:mod:`repro.telemetry`), and the
invariant sanitizer (:mod:`repro.sanitizer`).  All three follow the same
zero-overhead-when-off pattern, factored out here so it is written once:

* a **shared null instance** whose hooks are constant-time no-ops and whose
  ``enabled`` attribute is ``False`` — instrumented code guards any
  expensive evidence-building behind ``if instrument.enabled: ...`` and
  otherwise calls hooks unconditionally;
* **conditional wiring**: components that would add work to the hot loop
  (an extra engine actor, a bracketed step path) are only registered when
  the instrument records.  :func:`when_enabled` collapses the
  "instrument-or-``None``" decision to one expression, so an un-instrumented
  run keeps the seed code path bit-for-bit.

Overhead note: with the defaults (``NULL_TRACER``, ``NULL_REGISTRY``,
``NULL_SANITIZER``) the engine hot loop carries only ``is None`` checks —
no timing calls, no snapshots, no per-step allocation.  The decision-trace
layer measured this at -0.3% vs the pre-instrumentation seed
(``docs/observability.md``); the determinism suite pins the stronger
property that null-instrumented runs are *bit-identical* to bare ones.
"""

from __future__ import annotations

from typing import Protocol, TypeVar, runtime_checkable


@runtime_checkable
class Instrument(Protocol):
    """The one attribute every optional instrument must expose."""

    #: ``False`` on no-op implementations: callers may skip building
    #: evidence, and wiring code may skip registration entirely.
    enabled: bool


class NullInstrument:
    """Base class for shared, stateless, disabled null objects.

    Subclasses (``NullTracer``, ``NullRegistry``, ``NullSanitizer``) add
    their protocol's no-op hooks; this base contributes the ``enabled``
    flag and keeps instances slot-free so one shared module-level instance
    serves every run.
    """

    __slots__ = ()

    enabled: bool = False


_InstrumentT = TypeVar("_InstrumentT", bound=Instrument)


def when_enabled(instrument: _InstrumentT | None) -> _InstrumentT | None:
    """``instrument`` if it records, else ``None`` (conditional wiring).

    Collapses the registration decision every instrumented component makes:
    ``engine.add_actor(...)``, ``Monitor(..., telemetry=...)`` and the
    engine's bracketed step paths all take "a recording instrument or
    ``None``" — never a null object — so disabled instruments cost nothing
    on the hot path.
    """
    if instrument is None or not instrument.enabled:
        return None
    return instrument


__all__ = ["Instrument", "NullInstrument", "when_enabled"]
