"""Exception hierarchy for the HyScale reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Each subclass corresponds to one subsystem, mirroring the
package layout described in ``DESIGN.md``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class ClockError(SimulationError):
    """Illegal clock operation (e.g. scheduling an event in the past)."""


class ClusterError(ReproError):
    """Cluster-level invariant violation (unknown node, duplicate id, ...)."""


class PlacementError(ClusterError):
    """No node satisfies a placement request."""


class CapacityError(ClusterError):
    """An allocation would exceed a node's physical capacity."""


class DockerSimError(ReproError):
    """Simulated Docker daemon rejected an operation."""


class ContainerNotFound(DockerSimError):
    """Operation referenced a container id the daemon does not know."""


class ContainerStateError(DockerSimError):
    """Operation invalid for the container's current lifecycle state."""


class NetworkSimError(ReproError):
    """Invalid traffic-control (tc) or interface configuration."""


class PolicyError(ReproError):
    """An autoscaling policy produced or received invalid data."""


class WorkloadError(ReproError):
    """Invalid workload, pattern, or trace specification."""


class ExperimentError(ReproError):
    """An experiment configuration or run failed."""


class ObservabilityError(ReproError):
    """Decision-trace or profiling instrumentation was misused."""


class TelemetryError(ReproError):
    """Streaming-telemetry instruments or exporters were misused."""


class SanitizerError(ReproError):
    """The simulation sanitizer was misused (bad brackets, bad codec input)."""
