"""Self-contained sanitizer validation scenario (``make sanitize``).

Runs one short, fixed-seed experiment three times — bare, sanitized, and
sanitized again — then checks the SimSan contract end to end:

1. the sanitized run reports **zero** invariant violations (conservation,
   ledger consistency, tick aliasing, time monotonicity, event ordering),
2. the sanitized run's summary is **identical** to the bare run's — the
   sanitizer observes, it never perturbs,
3. two same-seed sanitized runs agree with each other (determinism holds
   under instrumentation),
4. the violation codec round-trips a synthetic record through the
   ``repro.san/1`` JSONL schema,
5. the sanitizer-off path costs nothing measurable: the bare run is timed
   against the sanitized run and the overhead ratio is recorded.

Writes a machine-readable report (default ``BENCH_sanitizer_report.json``
— uploaded as a CI artifact next to ``BENCH_telemetry_snapshot.json``).
Exits non-zero on any failed check.

Run directly::

    PYTHONPATH=src python -m repro.sanitizer.check --out BENCH_sanitizer_report.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# A *reference* to the profiler's timer (never a module-level wall-clock
# call): timing here measures harness overhead, not simulated behaviour.
from repro.obs.profiler import DEFAULT_TIMER
from repro.sanitizer.export import (
    parse_san_line,
    render_san_report,
    violation_to_json_line,
)
from repro.sanitizer.records import SanViolation, violation_from_dict, violation_to_dict
from repro.sanitizer.simsan import SimSanitizer

#: Simulated duration of the probe scenario (seconds).
CHECK_DURATION = 120.0


def _run_once(seed: int, sanitizer: SimSanitizer | None = None) -> dict:
    """One probe run (optionally sanitized); returns summary + timing."""
    # Imported here: the check scenario needs the full experiment stack,
    # but `repro.sanitizer` itself must stay importable without it.
    from repro.cluster.microservice import MicroserviceSpec
    from repro.config import ClusterConfig, SimulationConfig
    from repro.experiments.runner import Simulation
    from repro.sanitizer.api import NULL_SANITIZER
    from repro.workloads import CPU_BOUND, MIXED, HighBurstLoad, ServiceLoad

    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=4), seed=seed)
    specs = [
        MicroserviceSpec(name="frontend", max_replicas=6),
        MicroserviceSpec(name="backend", max_replicas=6),
    ]
    loads = [
        ServiceLoad("frontend", MIXED, HighBurstLoad(base=6.0, peak=30.0)),
        ServiceLoad("backend", CPU_BOUND, HighBurstLoad(base=4.0, peak=18.0)),
    ]
    simulation = Simulation.build(
        config=config,
        specs=specs,
        loads=loads,
        policy="hybrid",
        workload_label="sanitizer-check",
        sanitizer=sanitizer if sanitizer is not None else NULL_SANITIZER,
    )
    started = DEFAULT_TIMER()
    summary = simulation.run(CHECK_DURATION)
    elapsed = DEFAULT_TIMER() - started
    return {
        "summary": summary,
        "seconds": elapsed,
        "steps": simulation.engine.clock.step,
        "pending": simulation.engine.events.next_due(),
    }


def _codec_roundtrip() -> bool:
    """A synthetic violation must survive dict and JSONL round-trips."""
    violation = SanViolation(
        now=12.5,
        step=25,
        check="conservation",
        subject="node-1",
        message="cpu allocated 9.000 cores exceeds capacity 8.000 cores",
        detail="containers: frontend-0, backend-2",
    )
    if violation_from_dict(violation_to_dict(violation)) != violation:
        return False
    if parse_san_line(violation_to_json_line(violation)) != violation:
        return False
    # The renderer must mention the subject and the check section.
    rendered = render_san_report((violation,))
    return "node-1" in rendered and "[conservation]" in rendered


def run_check(out: Path) -> int:
    """Run the probes, validate, write the report; returns exit code."""
    bare = _run_once(seed=0)
    sanitizer = SimSanitizer()
    sanitized = _run_once(seed=0, sanitizer=sanitizer)
    second_sanitizer = SimSanitizer()
    sanitized_again = _run_once(seed=0, sanitizer=second_sanitizer)

    checks: dict[str, bool] = {}
    checks["zero_violations"] = len(sanitizer.violations()) == 0
    checks["steps_bracketed"] = sanitizer.steps_checked == sanitized["steps"] > 0
    checks["sanitizer_does_not_perturb"] = (
        sanitized["summary"] == bare["summary"] and sanitized["pending"] == bare["pending"]
    )
    checks["sanitized_run_deterministic"] = (
        sanitized["summary"] == sanitized_again["summary"]
        and len(second_sanitizer.violations()) == 0
    )
    checks["codec_roundtrips"] = _codec_roundtrip()

    off_seconds = bare["seconds"]
    on_seconds = sanitized["seconds"]
    overhead_ratio = (on_seconds / off_seconds) if off_seconds > 0 else float("inf")

    report = {
        "schema": "repro.san-check/1",
        "duration": CHECK_DURATION,
        "steps_checked": sanitizer.steps_checked,
        "violations": len(sanitizer.violations()),
        "off_seconds": round(off_seconds, 6),
        "on_seconds": round(on_seconds, 6),
        "overhead_ratio": round(overhead_ratio, 4),
        "checks": checks,
        "ok": all(checks.values()),
    }
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    for name, passed in sorted(checks.items()):
        print(f"  {'PASS' if passed else 'FAIL'}  {name}")
    if sanitizer.violations():
        print(render_san_report(sanitizer.violations()), end="")
    print(
        f"sanitize: {sanitizer.steps_checked} steps checked, "
        f"{len(sanitizer.violations())} violation(s), "
        f"overhead x{report['overhead_ratio']} -> {out}"
    )
    return 0 if report["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``python -m repro.sanitizer.check``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_sanitizer_report.json"),
        help="report path (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    return run_check(args.out)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
