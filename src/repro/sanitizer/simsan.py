"""SimSan: the recording simulation sanitizer.

In the style of ASAN/TSAN for the discrete-event simulator: opt-in,
bracketed around every engine step, and silent unless an invariant the
paper's results rest on actually breaks.  Three families of checks:

**Conservation** (``check="conservation"``) — after each step, every node
must satisfy the physics the testbed machines impose: the sum of active
containers' CPU requests ≤ cores, memory limits ≤ capacity, shaped network
rates ≤ NIC line rate, measured CPU/egress usage ≤ capacity, and every
active container's HTB class rate must agree with its allocated
``net_rate`` (the tc view and the daemon view of the same number).

**Ledger consistency** (``check="ledger"``) — the :class:`ClusterView`
snapshot the monitor hands to policies (and through it the
``NodeLedger``'s opening balances) must be byte-consistent with the actual
:class:`~repro.cluster.node.Node` state at the instant it was built:
identical capacity and allocation vectors, and every replica view backed
by a live container on the claimed node.

**Tick-aliasing** (``check="aliasing"``) — the sim analog of a race
detector.  Each domain of mutable simulation state has a declared writer
set (which engine phases may change it); the sanitizer snapshots each
domain at the step bracket, diffs after every actor, and flags any actor
that changed a domain it does not own.

Plus two cheap ordering checks: simulated time must advance strictly
monotonically between step brackets (``check="time"``), and after
``fire_due`` no event with ``due <= now`` may remain queued
(``check="events"``).

Violations are recorded as frozen :class:`~repro.sanitizer.SanViolation`
records (never raised mid-run — the sanitizer observes, it does not
perturb), exported via :mod:`repro.sanitizer.export`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.errors import SanitizerError
from repro.sanitizer.records import SanViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.cluster.node import Node
    from repro.core.view import ClusterView

#: Which engine phases may legitimately write each state domain.  The
#: ``"events"`` pseudo-phase covers callbacks fired from the event queue at
#: the end of the step (boot completions, delayed actions).
DOMAIN_WRITERS: Mapping[str, frozenset[str]] = {
    # Machines joining/leaving and their capacities: only fault injection
    # ("dynamic addition and removal of machines").
    "fleet": frozenset({"faults"}),
    # Per-container reservations and liveness: placement/vertical scaling
    # (monitor), OOM kills and lifecycle (cluster), crashes (faults).
    "allocations": frozenset({"faults", "cluster", "monitor", "events"}),
    # Service -> replica membership: scaling and reaping (monitor),
    # terminations (cluster), crash cleanup (faults).
    "services": frozenset({"faults", "cluster", "monitor", "events"}),
}


class SimSanitizer:
    """Records invariant violations for one bound cluster.

    Parameters
    ----------
    tolerance:
        Relative slack for float comparisons against capacities.  The
        monitor's headroom clamps and the placement ledger both admit
        allocations up to a few ulps past capacity; anything beyond
        ``tolerance * max(1, capacity)`` is a real violation.
    max_violations:
        Recording cap — a systemically broken run would otherwise flood
        memory with one record per step.  :attr:`truncated` reports
        whether the cap was hit.
    extra_writers:
        Additional ``domain -> actor names`` grants for experiments that
        register custom actors which legitimately mutate cluster state.
    """

    enabled = True

    def __init__(
        self,
        *,
        tolerance: float = 1e-6,
        max_violations: int = 1000,
        extra_writers: Mapping[str, Iterable[str]] | None = None,
    ) -> None:
        if tolerance < 0:
            raise SanitizerError(f"tolerance must be non-negative, got {tolerance}")
        if max_violations < 1:
            raise SanitizerError(f"max_violations must be positive, got {max_violations}")
        self.tolerance = tolerance
        self.max_violations = max_violations
        self._writers = {
            domain: writers | frozenset(extra_writers.get(domain, ()) if extra_writers else ())
            for domain, writers in DOMAIN_WRITERS.items()
        }
        self._cluster: Cluster | None = None
        self._violations: list[SanViolation] = []
        self._dropped = 0
        self._open = False
        self._step = 0
        self._last_now: float | None = None
        self._baseline: dict[str, tuple] = {}
        #: Completed step brackets (inspected by tests and ``check.py``).
        self.steps_checked = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, *, cluster: "Cluster") -> None:
        """Attach the cluster whose invariants this sanitizer audits."""
        if self._cluster is not None and self._cluster is not cluster:
            raise SanitizerError(
                "sanitizer is already bound to a different cluster; "
                "build one SimSanitizer per simulation"
            )
        self._cluster = cluster

    def _require_cluster(self, hook: str) -> "Cluster":
        if self._cluster is None:
            raise SanitizerError(f"{hook} called before bind(cluster=...)")
        return self._cluster

    # ------------------------------------------------------------------
    # Engine hooks (the step bracket)
    # ------------------------------------------------------------------
    def begin_step(self, *, now: float, step: int) -> None:
        """Open the bracket: monotonic-time check + domain baselines."""
        cluster = self._require_cluster("begin_step")
        if self._open:
            raise SanitizerError(
                f"begin_step at t={now} while the t={self._last_now} bracket is still open"
            )
        self._open = True
        self._step = step
        if self._last_now is not None and now <= self._last_now:
            self._record(
                now=now,
                check="time",
                subject="clock",
                message="simulated time failed to advance monotonically",
                detail=f"previous step ended at t={self._last_now!r}, this step began at t={now!r}",
            )
        self._last_now = now
        self._baseline = self._probe(cluster)

    def after_actor(self, *, name: str, now: float) -> None:
        """Diff every domain; flag changes by an actor outside its writer set."""
        cluster = self._require_cluster("after_actor")
        self._require_open("after_actor")
        self._diff_domains(cluster, phase=name, now=now)

    def end_step(self, *, now: float, next_due: float | None) -> None:
        """Close the bracket: event-phase diff, queue order, conservation."""
        cluster = self._require_cluster("end_step")
        self._require_open("end_step")
        self._diff_domains(cluster, phase="events", now=now)
        if next_due is not None and next_due <= now:
            self._record(
                now=now,
                check="events",
                subject="event-queue",
                message="a due event survived fire_due (queue ordering broken)",
                detail=f"next_due={next_due!r} <= now={now!r}",
            )
        self.check_conservation(now=now)
        self._open = False
        self.steps_checked += 1

    def _require_open(self, hook: str) -> None:
        if not self._open:
            raise SanitizerError(f"{hook} called outside a begin_step/end_step bracket")

    # ------------------------------------------------------------------
    # Tick-aliasing: domain snapshots + write-set diffing
    # ------------------------------------------------------------------
    def _probe(self, cluster: "Cluster") -> dict[str, tuple]:
        """Cheap structural snapshot of every tracked state domain."""
        nodes = sorted(cluster.nodes.items())
        return {
            "fleet": tuple((name, node.capacity) for name, node in nodes),
            "allocations": tuple(
                (
                    name,
                    tuple(
                        (cid, c.cpu_request, c.mem_limit, c.net_rate, c.is_active)
                        for cid, c in sorted(node.containers.items())
                    ),
                )
                for name, node in nodes
            ),
            "services": tuple(
                (name, tuple(c.container_id for c in service.active_replicas()))
                for name, service in sorted(cluster.services.items())
            ),
        }

    def _diff_domains(self, cluster: "Cluster", *, phase: str, now: float) -> None:
        current = self._probe(cluster)
        for domain, snapshot in current.items():
            if snapshot == self._baseline[domain]:
                continue
            if phase not in self._writers[domain]:
                self._record(
                    now=now,
                    check="aliasing",
                    subject=phase,
                    message=f"phase {phase!r} wrote the {domain!r} domain it does not own",
                    detail=f"allowed writers: {sorted(self._writers[domain])}",
                )
            # Re-baseline either way so one mutation is reported once, by
            # the phase that made it.
            self._baseline[domain] = snapshot

    # ------------------------------------------------------------------
    # Conservation
    # ------------------------------------------------------------------
    def check_conservation(self, *, now: float) -> None:
        """Audit every node's resource sums against physical capacity."""
        cluster = self._require_cluster("check_conservation")
        for name, node in sorted(cluster.nodes.items()):
            self._check_node(name, node, now)

    def _slack(self, capacity: float) -> float:
        return self.tolerance * max(1.0, abs(capacity))

    def _check_node(self, name: str, node: "Node", now: float) -> None:
        allocated = node.allocated()
        capacity = node.capacity
        axes = (
            ("cpu", allocated.cpu, capacity.cpu, "cores"),
            ("memory", allocated.memory, capacity.memory, "MiB"),
            ("network", allocated.network, capacity.network, "Mbit/s"),
        )
        for axis, total, cap, unit in axes:
            if total > cap + self._slack(cap):
                self._record(
                    now=now,
                    check="conservation",
                    subject=f"{name}/{axis}",
                    message=f"allocated {axis} exceeds node capacity",
                    detail=f"sum of container requests {total!r} {unit} > capacity {cap!r} {unit}",
                )
        active = node.active_containers()
        cpu_used = sum(c.cpu_usage for c in active)
        if cpu_used > capacity.cpu + self._slack(capacity.cpu):
            self._record(
                now=now,
                check="conservation",
                subject=f"{name}/cpu-usage",
                message="measured CPU usage exceeds the node's cores",
                detail=f"sum of container usage {cpu_used!r} > capacity {capacity.cpu!r} cores",
            )
        egress = sum(c.net_usage for c in active)
        if egress > capacity.network + self._slack(capacity.network):
            self._record(
                now=now,
                check="conservation",
                subject=f"{name}/egress",
                message="aggregate egress exceeds the NIC line rate",
                detail=f"sum of container throughput {egress!r} > capacity "
                f"{capacity.network!r} Mbit/s",
            )
        for container in active:
            cid = container.container_id
            if not node.nic.is_attached(cid):
                self._record(
                    now=now,
                    check="conservation",
                    subject=f"{name}/{cid}",
                    message="active container has no HTB class on the node NIC",
                )
                continue
            shaped = node.nic.rate_of(cid)
            if abs(shaped - container.net_rate) > self._slack(container.net_rate):
                self._record(
                    now=now,
                    check="conservation",
                    subject=f"{name}/{cid}",
                    message="HTB class rate disagrees with the container's net_rate",
                    detail=f"tc class rate {shaped!r} != allocated {container.net_rate!r} Mbit/s",
                )

    # ------------------------------------------------------------------
    # Monitor hook: view/ledger consistency
    # ------------------------------------------------------------------
    def check_view(self, *, now: float, view: "ClusterView") -> None:
        """A freshly built view must mirror live node state exactly.

        The view's per-node ``allocated``/``capacity`` vectors seed the
        policies' :class:`~repro.core.policy.NodeLedger` opening balances;
        any drift here means policies plan against phantom resources.
        Comparison is exact (``==`` on frozen vectors): the view was built
        from the same floats in the same order an instant ago.
        """
        cluster = self._require_cluster("check_view")
        for node_view in view.nodes:
            node = cluster.nodes.get(node_view.name)
            if node is None:
                self._record(
                    now=now,
                    check="ledger",
                    subject=node_view.name,
                    message="view lists a node the cluster does not host",
                )
                continue
            if node_view.capacity != node.capacity:
                self._record(
                    now=now,
                    check="ledger",
                    subject=f"{node_view.name}/capacity",
                    message="view capacity disagrees with the node's capacity",
                    detail=f"view {node_view.capacity} != node {node.capacity}",
                )
            actual = node.allocated()
            if node_view.allocated != actual:
                self._record(
                    now=now,
                    check="ledger",
                    subject=f"{node_view.name}/allocated",
                    message="view allocation disagrees with the node's live allocation",
                    detail=f"view {node_view.allocated} != node {actual}",
                )
        for service in view.services:
            for replica in service.replicas:
                node = cluster.nodes.get(replica.node)
                container = None if node is None else node.containers.get(replica.container_id)
                if container is None or not container.is_active:
                    self._record(
                        now=now,
                        check="ledger",
                        subject=f"{service.name}/{replica.container_id}",
                        message="view replica is not a live container on its claimed node",
                        detail=f"claimed node {replica.node!r}",
                    )

    # ------------------------------------------------------------------
    # Recording + reads
    # ------------------------------------------------------------------
    def _record(
        self, *, now: float, check: str, subject: str, message: str, detail: str = ""
    ) -> None:
        if len(self._violations) >= self.max_violations:
            self._dropped += 1
            return
        self._violations.append(
            SanViolation(
                now=now,
                step=self._step,
                check=check,
                subject=subject,
                message=message,
                detail=detail,
            )
        )

    def violations(self) -> tuple[SanViolation, ...]:
        """Every recorded violation, in discovery order."""
        return tuple(self._violations)

    @property
    def truncated(self) -> bool:
        """True when the :attr:`max_violations` recording cap was hit."""
        return self._dropped > 0

    def __len__(self) -> int:
        return len(self._violations)

    def clear(self) -> None:
        """Drop recorded violations (bracket state is untouched)."""
        self._violations.clear()
        self._dropped = 0
