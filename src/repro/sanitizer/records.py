"""Frozen violation records the sanitizer emits.

A :class:`SanViolation` is sim-timestamped evidence that one invariant
broke: which check fired, at what simulated time and step, against which
subject (a node axis, an actor, the clock), and two human strings — a
one-line message plus optional numeric detail.  Records are frozen and
ordered so reports sort deterministically and exports are a pure function
of the run (the same byte-determinism contract as ``repro.obs`` spans).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

from repro.errors import SanitizerError

#: Check identifiers a violation may carry (the sanitizer's rule catalogue).
CHECKS = (
    "conservation",  # per-node resource sums vs physical capacity
    "ledger",  # ClusterView/NodeLedger snapshot vs actual node state
    "aliasing",  # an actor wrote state owned by another actor mid-step
    "time",  # simulated time failed to advance monotonically
    "events",  # event-queue ordering (a due event survived fire_due)
)


@dataclass(frozen=True, order=True)
class SanViolation:
    """One invariant violation, frozen at the simulated instant it was seen."""

    #: Simulated time (seconds) at which the check fired.
    now: float
    #: Engine step index the violation belongs to.
    step: int
    #: Which check fired — one of :data:`CHECKS`.
    check: str
    #: What broke the invariant: ``node/axis``, an actor name, a container id.
    subject: str
    #: One-line human statement of the violated invariant.
    message: str
    #: Optional numeric evidence (expected vs actual, deterministic text).
    detail: str = ""

    def __post_init__(self) -> None:
        if self.check not in CHECKS:
            raise SanitizerError(f"unknown sanitizer check {self.check!r} (want one of {CHECKS})")


def violation_to_dict(violation: SanViolation) -> dict:
    """Plain-dict form (JSON-ready, insertion order = field order)."""
    return asdict(violation)


def violation_from_dict(payload: dict) -> SanViolation:
    """Rebuild a violation from its dict form, rejecting unknown keys."""
    known = {f.name for f in fields(SanViolation)}
    unknown = set(payload) - known
    if unknown:
        raise SanitizerError(f"unknown violation fields: {sorted(unknown)}")
    try:
        return SanViolation(**payload)
    except TypeError as exc:
        raise SanitizerError(f"malformed violation record: {exc}") from None
