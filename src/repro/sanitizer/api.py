"""The :class:`Sanitizer` contract and its zero-overhead default.

Mirrors the :class:`~repro.obs.Tracer` design: a keyword-only hook
protocol, a shared stateless :class:`NullSanitizer` whose every hook is a
constant-time no-op, and an ``enabled`` flag the engine and monitor use to
skip sanitized code paths entirely.  A run built with
:data:`NULL_SANITIZER` (the default) executes the exact seed hot loop and
is bit-identical to an unsanitized run — the determinism suite pins this.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.instrument import NullInstrument

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.view import ClusterView


@runtime_checkable
class Sanitizer(Protocol):
    """What the engine and monitor require of a simulation sanitizer.

    Any object with these members plugs into
    :meth:`repro.Simulation.build`'s ``sanitizer=`` parameter.  All hooks
    are keyword-only so implementations can evolve without positional
    breakage (the same convention as :class:`~repro.obs.Tracer`).
    """

    #: ``False`` on no-op sanitizers: the engine keeps its unsanitized hot
    #: loop and the monitor skips view checks when this is unset.
    enabled: bool

    def begin_step(self, *, now: float, step: int) -> None:
        """Open the bracket for one engine step (snapshot baselines)."""
        ...  # pragma: no cover - protocol stub

    def after_actor(self, *, name: str, now: float) -> None:
        """One actor finished inside the open step bracket."""
        ...  # pragma: no cover - protocol stub

    def end_step(self, *, now: float, next_due: float | None) -> None:
        """Close the bracket after scheduled events fired."""
        ...  # pragma: no cover - protocol stub

    def check_view(self, *, now: float, view: "ClusterView") -> None:
        """Audit a freshly built monitor view against live cluster state."""
        ...  # pragma: no cover - protocol stub


class NullSanitizer(NullInstrument):
    """The zero-overhead default: every hook is a no-op."""

    __slots__ = ()

    def begin_step(self, *, now: float, step: int) -> None:
        """No-op."""

    def after_actor(self, *, name: str, now: float) -> None:
        """No-op."""

    def end_step(self, *, now: float, next_due: float | None) -> None:
        """No-op."""

    def check_view(self, *, now: float, view: "ClusterView") -> None:
        """No-op."""


#: Shared default instance — NullSanitizer is stateless, so one is enough.
NULL_SANITIZER = NullSanitizer()
