"""SimSan: an opt-in invariant sanitizer for the simulator.

The paper's results (Figs. 6-10) assume the simulated cluster never
violates physical invariants while the scaling algorithms mutate limits
mid-run.  This package checks that assumption at runtime, ASAN/TSAN
style — zero overhead when off, recording frozen violation evidence when
on:

* :class:`Sanitizer` — the hook protocol (engine step brackets + monitor
  view audits), with the shared no-op :data:`NULL_SANITIZER` default;
* :class:`SimSanitizer` — the recording implementation: conservation,
  ledger/view consistency, tick-aliasing write-set tracking, monotonic
  time and event-queue ordering;
* :class:`SanViolation` + the ``repro.san/1`` JSONL codec and the
  human ``render_san_report`` renderer;
* :mod:`repro.sanitizer.check` — the self-test behind ``make sanitize``
  and ``hyscale-repro sanitize``.

Run the whole test suite under the sanitizer with
``pytest --simsan`` (the dedicated CI lane), or pass
``sanitizer=SimSanitizer()`` to :meth:`repro.Simulation.build`.
See ``docs/dev-tooling.md`` for the full check catalogue and the static
SAN/UNIT lint rules that enforce SimSan's preconditions.
"""

from repro.sanitizer.api import NULL_SANITIZER, NullSanitizer, Sanitizer
from repro.sanitizer.export import (
    SAN_SCHEMA,
    parse_san_line,
    read_san_jsonl,
    render_san_report,
    violation_to_json_line,
    violations_to_jsonl,
    write_san_jsonl,
)
from repro.sanitizer.records import SanViolation, violation_from_dict, violation_to_dict
from repro.sanitizer.simsan import DOMAIN_WRITERS, SimSanitizer

__all__ = [
    "Sanitizer",
    "NullSanitizer",
    "NULL_SANITIZER",
    "SimSanitizer",
    "DOMAIN_WRITERS",
    "SanViolation",
    "violation_to_dict",
    "violation_from_dict",
    "SAN_SCHEMA",
    "violation_to_json_line",
    "violations_to_jsonl",
    "write_san_jsonl",
    "parse_san_line",
    "read_san_jsonl",
    "render_san_report",
]
