"""Sanitizer-violation persistence: JSONL out, records back in.

Same canonical encoding as the decision-trace codec
(:mod:`repro.obs.export`): one record per line, keys sorted, compact
separators, a ``schema`` tag on every line.  A violation file is a pure
function of the violations, so two same-seed runs export byte-identical
files — and a clean run exports the empty string.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import SanitizerError
from repro.sanitizer.records import SanViolation, violation_from_dict, violation_to_dict

#: Schema tag embedded in every line; bump when the record shape changes.
SAN_SCHEMA = "repro.san/1"


def violation_to_json_line(violation: SanViolation) -> str:
    """One violation as its canonical single-line JSON encoding (no newline)."""
    payload = violation_to_dict(violation)
    payload["schema"] = SAN_SCHEMA
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def violations_to_jsonl(violations: Iterable[SanViolation]) -> str:
    """A whole report as JSONL text (trailing newline when non-empty)."""
    lines = [violation_to_json_line(v) for v in violations]
    return "\n".join(lines) + "\n" if lines else ""


def write_san_jsonl(violations: Sequence[SanViolation], path: str | Path) -> int:
    """Write a violation file; returns the number of records written."""
    Path(path).write_text(violations_to_jsonl(violations), encoding="utf-8")
    return len(violations)


def parse_san_line(line: str) -> SanViolation:
    """Parse one JSONL line back into a violation record."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise SanitizerError(f"violation line is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise SanitizerError("violation line must be a JSON object")
    schema = payload.pop("schema", SAN_SCHEMA)
    if schema != SAN_SCHEMA:
        raise SanitizerError(f"unsupported sanitizer schema {schema!r} (want {SAN_SCHEMA!r})")
    return violation_from_dict(payload)


def read_san_jsonl(path: str | Path) -> tuple[SanViolation, ...]:
    """Read a JSONL violation file back into records."""
    out: list[SanViolation] = []
    for lineno, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            out.append(parse_san_line(line))
        except SanitizerError as exc:
            raise SanitizerError(f"{path}:{lineno}: {exc}") from None
    return tuple(out)


def render_san_report(violations: Sequence[SanViolation]) -> str:
    """Human "explain"-style rendering of a violation report.

    Groups by check, in catalogue order, each violation on one line with
    its sim timestamp, step, and subject — the same narrative style as
    ``repro.obs.explain`` renders decision traces.
    """
    if not violations:
        return "SimSan: no invariant violations.\n"
    lines = [f"SimSan: {len(violations)} invariant violation(s)"]
    by_check: dict[str, list[SanViolation]] = {}
    for violation in violations:
        by_check.setdefault(violation.check, []).append(violation)
    for check in sorted(by_check):
        group = by_check[check]
        lines.append(f"\n[{check}] {len(group)} violation(s)")
        for v in group:
            lines.append(f"  t={v.now:g} step={v.step} {v.subject}: {v.message}")
            if v.detail:
                lines.append(f"      {v.detail}")
    return "\n".join(lines) + "\n"
