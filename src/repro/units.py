"""Unit conventions and conversion helpers.

The whole library speaks three physical resource units, chosen to match how
the paper reports them:

* **CPU** — fractional cores.  Docker CPU *shares* are the scaled integer
  representation used by the simulated daemon (1024 shares == 1.0 core,
  the Docker default for one core's relative weight).
* **Memory** — MiB (the paper uses MB/MiB interchangeably; we use MiB).
* **Network** — Mbit/s for rates and Mbit for request payload sizes.

Keeping conversions in one module prevents the classic
megabyte-vs-mebibyte and bit-vs-byte drift between subsystems.
"""

from __future__ import annotations

#: Docker's CPU-share scale: 1024 shares correspond to one full core.
SHARES_PER_CORE = 1024

#: Bits per byte, for payload conversions.
BITS_PER_BYTE = 8

#: MiB expressed in bytes.
MIB = 1024 * 1024

#: Mbit expressed in bits.
MBIT = 1000 * 1000


def cores_to_shares(cores: float) -> int:
    """Convert fractional cores to Docker CPU shares (rounded to nearest)."""
    if cores < 0:
        raise ValueError(f"cores must be non-negative, got {cores}")
    return max(2, round(cores * SHARES_PER_CORE)) if cores > 0 else 0


def shares_to_cores(shares: int) -> float:
    """Convert Docker CPU shares back to fractional cores."""
    if shares < 0:
        raise ValueError(f"shares must be non-negative, got {shares}")
    return shares / SHARES_PER_CORE


def mib_to_bytes(mib: float) -> float:
    """Convert MiB to bytes."""
    return mib * MIB


def bytes_to_mib(n_bytes: float) -> float:
    """Convert bytes to MiB."""
    return n_bytes / MIB


def mbit_to_bits(mbit: float) -> float:
    """Convert Mbit to bits."""
    return mbit * MBIT


def mbytes_to_mbits(mbytes: float) -> float:
    """Convert megabytes of payload to megabits on the wire."""
    return mbytes * BITS_PER_BYTE


def mbits_to_mbytes(mbits: float) -> float:
    """Convert megabits on the wire to megabytes of payload."""
    return mbits / BITS_PER_BYTE


#: Relative tolerance for comparing resource quantities (cores, MiB, Mbit/s).
QUANTITY_TOLERANCE = 1e-9


def same_quantity(a: float, b: float, tolerance: float = QUANTITY_TOLERANCE) -> bool:
    """True when two resource quantities are equal within tolerance.

    Resource values (CPU cores, MiB, Mbit/s) are floats produced by
    arithmetic chains — scaling multipliers, headroom clamps, fair-share
    divisions — so direct ``==``/``!=`` comparisons are brittle (and the
    ``SAN002`` lint rule forbids them outside this module).  Tolerance
    scales with magnitude: ``|a - b| <= tolerance * max(1, |a|, |b|)``.
    """
    return abs(a - b) <= tolerance * max(1.0, abs(a), abs(b))


def percent(fraction: float) -> float:
    """Render a 0..1 fraction as a percentage value."""
    return fraction * 100.0


def fraction(pct: float) -> float:
    """Render a percentage value as a 0..1 fraction."""
    return pct / 100.0
