"""Metrics: request accounting, SLA tracking, and run summaries."""

from repro.metrics.collector import MetricsCollector, TimelinePoint
from repro.metrics.costs import CostReport, PricingModel, evaluate_costs
from repro.metrics.events import (
    EventKind,
    ScalingEvent,
    ScalingEventLog,
    decision_summary,
    render_event_log,
)
from repro.metrics.sla import Sla, SlaReport, evaluate_sla, evaluate_tier_sla
from repro.metrics.summary import AppSummary, RunSummary, ServiceSummary

__all__ = [
    "MetricsCollector",
    "TimelinePoint",
    "Sla",
    "SlaReport",
    "evaluate_sla",
    "evaluate_tier_sla",
    "PricingModel",
    "CostReport",
    "evaluate_costs",
    "EventKind",
    "ScalingEvent",
    "ScalingEventLog",
    "decision_summary",
    "render_event_log",
    "AppSummary",
    "RunSummary",
    "ServiceSummary",
]
