"""Run summaries: the numbers the paper's figures plot.

:class:`RunSummary` freezes a finished run into exactly the quantities shown
in Figures 6-8 and 10 — average response time, percentage of requests
failed, and the removal/connection breakdown — plus distributional extras
(percentiles) that make regressions visible in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExperimentError
from repro.metrics.collector import MetricsCollector, TimelinePoint


@dataclass(frozen=True)
class ServiceSummary:
    """Per-service request statistics."""

    service: str
    completed: int
    removal_failures: int
    connection_failures: int
    avg_response_time: float
    p95_response_time: float
    # Appended after p95 with defaults so summaries archived before these
    # fields existed still load through from_dict().
    p50_response_time: float = 0.0
    p99_response_time: float = 0.0

    @property
    def total(self) -> int:
        """All finished requests for this service."""
        return self.completed + self.removal_failures + self.connection_failures

    @property
    def percent_failed(self) -> float:
        """Failed requests as a percentage of all finished requests."""
        if self.total == 0:
            return 0.0
        return 100.0 * (self.removal_failures + self.connection_failures) / self.total


@dataclass(frozen=True)
class AppSummary:
    """Ingress (user-traffic) statistics for an application-graph run.

    Per-tier :class:`ServiceSummary` rows count *all* traffic — including
    the internal calls the graph router fans out — which is the right
    capacity view but would double-count users.  This block counts only
    requests that entered at an ingress tier; their response times are
    end-to-end by construction (a tier settles only after its downstream
    subtree resolves).
    """

    app: str
    ingress_requests: int
    ingress_completed: int
    ingress_removal_failures: int
    ingress_connection_failures: int
    #: Finished internal tier-to-tier calls (the double-count avoided).
    internal_requests: int
    avg_response_time: float
    p50_response_time: float
    p95_response_time: float
    p99_response_time: float
    services: tuple[ServiceSummary, ...] = ()

    @property
    def ingress_failed(self) -> int:
        """Failed ingress requests, both failure classes."""
        return self.ingress_removal_failures + self.ingress_connection_failures

    @property
    def percent_failed(self) -> float:
        """Failed user requests as a percentage of all user requests."""
        if self.ingress_requests == 0:
            return 0.0
        return 100.0 * self.ingress_failed / self.ingress_requests

    @property
    def availability(self) -> float:
        """Fraction of user requests served."""
        if self.ingress_requests == 0:
            return 1.0
        return 1.0 - self.ingress_failed / self.ingress_requests


@dataclass(frozen=True)
class RunSummary:
    """Whole-run statistics for one (algorithm, workload) experiment."""

    algorithm: str
    workload: str
    duration: float

    total_requests: int
    completed: int
    removal_failures: int
    connection_failures: int

    avg_response_time: float
    p50_response_time: float
    p95_response_time: float
    p99_response_time: float

    vertical_scale_ops: int
    horizontal_scale_ups: int
    horizontal_scale_downs: int
    oom_kills: int

    services: tuple[ServiceSummary, ...] = ()
    timeline: tuple[TimelinePoint, ...] = field(default=(), repr=False)
    #: Ingress-only block for application-graph runs; ``None`` for plain
    #: single-service runs (and omitted from :meth:`to_dict`, keeping
    #: archived summaries byte-identical).
    app: AppSummary | None = None

    # ------------------------------------------------------------------
    # The figures' y-axes
    # ------------------------------------------------------------------
    @property
    def failed(self) -> int:
        """Total failed requests."""
        return self.removal_failures + self.connection_failures

    @property
    def percent_failed(self) -> float:
        """Figures 6a/7a/8a: percentage of requests failed."""
        if self.total_requests == 0:
            return 0.0
        return 100.0 * self.failed / self.total_requests

    @property
    def percent_removal_failures(self) -> float:
        """Removal-failure share of all requests, in percent."""
        if self.total_requests == 0:
            return 0.0
        return 100.0 * self.removal_failures / self.total_requests

    @property
    def percent_connection_failures(self) -> float:
        """Connection-failure share of all requests, in percent."""
        if self.total_requests == 0:
            return 0.0
        return 100.0 * self.connection_failures / self.total_requests

    @property
    def availability(self) -> float:
        """Fraction of requests served (the paper reports >= 99.8 % up-time)."""
        if self.total_requests == 0:
            return 1.0
        return 1.0 - self.failed / self.total_requests

    def speedup_over(self, baseline: "RunSummary") -> float:
        """Response-time speedup of *this* run relative to ``baseline``
        (>1 means this run is faster), the paper's headline metric."""
        if self.avg_response_time <= 0:
            raise ExperimentError("cannot compute speedup: zero response time")
        return baseline.avg_response_time / self.avg_response_time

    # ------------------------------------------------------------------
    # User-traffic view (what comparisons should rank on)
    # ------------------------------------------------------------------
    # For single-service runs these equal the run totals; for app runs
    # they read the ingress-only block so internal graph calls are never
    # double-counted as user traffic.
    @property
    def user_requests(self) -> int:
        """Finished user (ingress) requests."""
        return self.app.ingress_requests if self.app is not None else self.total_requests

    @property
    def user_failed(self) -> int:
        """Failed user requests."""
        return self.app.ingress_failed if self.app is not None else self.failed

    @property
    def user_percent_failed(self) -> float:
        """Failed user requests as a percentage of user traffic."""
        return self.app.percent_failed if self.app is not None else self.percent_failed

    @property
    def user_availability(self) -> float:
        """Fraction of user requests served."""
        return self.app.availability if self.app is not None else self.availability

    @property
    def user_avg_response_time(self) -> float:
        """Mean end-to-end response time of user requests."""
        return self.app.avg_response_time if self.app is not None else self.avg_response_time

    @property
    def user_p95_response_time(self) -> float:
        """p95 end-to-end response time of user requests."""
        return self.app.p95_response_time if self.app is not None else self.p95_response_time

    @property
    def user_p99_response_time(self) -> float:
        """p99 end-to-end response time of user requests."""
        return self.app.p99_response_time if self.app is not None else self.p99_response_time

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_collector(
        cls,
        collector: MetricsCollector,
        *,
        algorithm: str,
        workload: str,
        duration: float,
        app: str | None = None,
    ) -> "RunSummary":
        """Freeze a collector into an immutable summary.

        ``app`` names the application when the collector ran with graph
        accounting; the ingress-only :class:`AppSummary` block is built
        from the collector's ingress accumulators in that case.
        """
        times = collector.all_response_times()
        arr = np.asarray(times) if times else np.asarray([0.0])
        services = []
        for name in collector.service_names():
            acc = collector.service_stats(name)
            svc_arr = np.asarray(acc.response_times) if acc.response_times else np.asarray([0.0])
            services.append(
                ServiceSummary(
                    service=name,
                    completed=acc.completed,
                    removal_failures=acc.removal_failures,
                    connection_failures=acc.connection_failures,
                    avg_response_time=float(svc_arr.mean()),
                    p95_response_time=float(np.percentile(svc_arr, 95)),
                    p50_response_time=float(np.percentile(svc_arr, 50)),
                    p99_response_time=float(np.percentile(svc_arr, 99)),
                )
            )
        app_summary: AppSummary | None = None
        if collector.graph_enabled:
            ingress_times = collector.ingress_response_times()
            ingress_arr = np.asarray(ingress_times) if ingress_times else np.asarray([0.0])
            ingress_services = []
            for name in collector.ingress_service_names():
                acc = collector.ingress_stats(name)
                svc_arr = np.asarray(acc.response_times) if acc.response_times else np.asarray([0.0])
                ingress_services.append(
                    ServiceSummary(
                        service=name,
                        completed=acc.completed,
                        removal_failures=acc.removal_failures,
                        connection_failures=acc.connection_failures,
                        avg_response_time=float(svc_arr.mean()),
                        p95_response_time=float(np.percentile(svc_arr, 95)),
                        p50_response_time=float(np.percentile(svc_arr, 50)),
                        p99_response_time=float(np.percentile(svc_arr, 99)),
                    )
                )
            app_summary = AppSummary(
                app=app if app is not None else workload,
                ingress_requests=collector.ingress_requests,
                ingress_completed=collector.ingress_completed,
                ingress_removal_failures=sum(
                    collector.ingress_stats(n).removal_failures
                    for n in collector.ingress_service_names()
                ),
                ingress_connection_failures=sum(
                    collector.ingress_stats(n).connection_failures
                    for n in collector.ingress_service_names()
                ),
                internal_requests=collector.internal_requests,
                avg_response_time=float(ingress_arr.mean()),
                p50_response_time=float(np.percentile(ingress_arr, 50)),
                p95_response_time=float(np.percentile(ingress_arr, 95)),
                p99_response_time=float(np.percentile(ingress_arr, 99)),
                services=tuple(ingress_services),
            )
        return cls(
            algorithm=algorithm,
            workload=workload,
            duration=duration,
            total_requests=collector.total_requests,
            completed=collector.total_completed,
            removal_failures=collector.total_removal_failures,
            connection_failures=collector.total_connection_failures,
            avg_response_time=float(arr.mean()),
            p50_response_time=float(np.percentile(arr, 50)),
            p95_response_time=float(np.percentile(arr, 95)),
            p99_response_time=float(np.percentile(arr, 99)),
            vertical_scale_ops=collector.vertical_scale_ops,
            horizontal_scale_ups=collector.horizontal_scale_ups,
            horizontal_scale_downs=collector.horizontal_scale_downs,
            oom_kills=collector.oom_kills,
            services=tuple(services),
            timeline=tuple(collector.timeline),
            app=app_summary,
        )

    # ------------------------------------------------------------------
    # Serialization (archival / cross-run tooling)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict with every field, including the timeline."""
        from dataclasses import asdict

        payload = asdict(self)
        payload["services"] = [asdict(s) for s in self.services]
        payload["timeline"] = [asdict(p) for p in self.timeline]
        if self.app is None:
            # Omit rather than emit null: summaries archived before app
            # graphs existed stay byte-identical, as do fresh
            # single-service runs.
            del payload["app"]
        return payload

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to JSON text."""
        import json

        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSummary":
        """Rebuild a summary saved with :meth:`to_dict`."""
        data = dict(payload)
        data["services"] = tuple(ServiceSummary(**s) for s in data.get("services", ()))
        data["timeline"] = tuple(TimelinePoint(**p) for p in data.get("timeline", ()))
        app_data = data.get("app")
        if app_data is not None:
            app_data = dict(app_data)
            app_data["services"] = tuple(
                ServiceSummary(**s) for s in app_data.get("services", ())
            )
            data["app"] = AppSummary(**app_data)
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "RunSummary":
        """Rebuild a summary saved with :meth:`to_json`."""
        import json

        return cls.from_dict(json.loads(text))

    def as_row(self) -> dict[str, float | int | str]:
        """One table row, in the shape the benchmark harness prints."""
        return {
            "algorithm": self.algorithm,
            "workload": self.workload,
            "requests": self.total_requests,
            "avg_response_s": round(self.avg_response_time, 3),
            "p95_response_s": round(self.p95_response_time, 3),
            "failed_pct": round(self.percent_failed, 3),
            "removal_pct": round(self.percent_removal_failures, 3),
            "connection_pct": round(self.percent_connection_failures, 3),
            "availability": round(self.availability, 5),
            "scale_ups": self.horizontal_scale_ups,
            "scale_downs": self.horizontal_scale_downs,
            "vertical_ops": self.vertical_scale_ops,
        }
