"""Scaling-decision event log: what the autoscaler did, when, and why.

Figures tell you *how well* an algorithm did; operators also need to see
*what it did* — which services scaled, in which direction, for which reason
(reclaim, acquire, spill, thrash-guard...).  The MONITOR records every
applied action here, and :func:`decision_summary` /
:func:`render_event_log` turn the log into the audit trail an operations
team would read after an incident.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.errors import ExperimentError


class EventKind(enum.Enum):
    """The scaling verbs the platform executes."""

    VERTICAL = "vertical"
    SCALE_UP = "scale-up"
    SCALE_DOWN = "scale-down"
    MIGRATE = "migrate"
    OOM_KILL = "oom-kill"
    ACTION_FAILED = "action-failed"


@dataclass(frozen=True)
class ScalingEvent:
    """One applied (or failed) scaling action."""

    time: float
    kind: EventKind
    service: str
    container_id: str = ""
    #: Policy-provided reason ("reclaim", "acquire", "spill", ...).
    reason: str = ""
    #: Human-readable detail ("cpu 0.50 -> 1.25", target node, error text).
    detail: str = ""


class ScalingEventLog:
    """Append-only, time-ordered record of scaling activity."""

    def __init__(self) -> None:
        self._events: list[ScalingEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def record(self, event: ScalingEvent) -> None:
        """Append one event (must not move backwards in time)."""
        if self._events and event.time < self._events[-1].time - 1e-9:
            raise ExperimentError("events must be recorded in time order")
        self._events.append(event)

    def events(self) -> tuple[ScalingEvent, ...]:
        """All events, in order."""
        return tuple(self._events)

    def for_service(self, service: str) -> tuple[ScalingEvent, ...]:
        """Events touching one service."""
        return tuple(e for e in self._events if e.service == service)

    def between(self, start: float, end: float) -> tuple[ScalingEvent, ...]:
        """Events in the half-open window ``[start, end)``."""
        if end < start:
            raise ExperimentError("need start <= end")
        return tuple(e for e in self._events if start <= e.time < end)


def decision_summary(log: ScalingEventLog) -> dict[str, int]:
    """Count events by ``kind/reason`` — the run's behavioural fingerprint.

    Keys look like ``"vertical/reclaim"``, ``"scale-up/spill"``,
    ``"scale-down/"`` (empty reason kept verbatim).
    """
    counter: Counter[str] = Counter()
    for event in log.events():
        counter[f"{event.kind.value}/{event.reason}"] += 1
    return dict(counter)


def render_event_log(
    log: ScalingEventLog,
    *,
    limit: int | None = None,
    service: str | None = None,
) -> str:
    """The audit trail as aligned text, newest last."""
    events = log.for_service(service) if service is not None else log.events()
    if limit is not None:
        events = events[-limit:]
    if not events:
        return "(no scaling events)"
    lines = []
    for e in events:
        reason = f" [{e.reason}]" if e.reason else ""
        detail = f" {e.detail}" if e.detail else ""
        lines.append(f"t={e.time:8.1f}s  {e.kind.value:<13s} {e.service:<18s}{reason}{detail}")
    return "\n".join(lines)
