"""Service-level agreements and violation accounting.

The paper frames the whole problem economically: tenants "negotiate a price
for a specified level of quality of service, usually defined in terms of
availability and response times", with "the monetary penalty for each
violation" written into the SLA (Section I).  :class:`Sla` captures that
contract and :class:`SlaReport` turns a run's request log into adherence
numbers and penalty totals — the quantities the conclusion claims HyScale
improves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.metrics.collector import MetricsCollector


@dataclass(frozen=True)
class Sla:
    """One tenant's quality-of-service contract."""

    #: A request violates the SLA if it fails or takes longer than this.
    response_time_target: float = 5.0  # seconds
    #: Required fraction of non-failed requests (paper observes >= 99.8 %).
    availability_target: float = 0.998
    #: Monetary penalty charged per violating request.
    penalty_per_violation: float = 0.01

    def __post_init__(self) -> None:
        if self.response_time_target <= 0:
            raise ExperimentError("response_time_target must be positive")
        if not 0 < self.availability_target <= 1:
            raise ExperimentError("availability_target must be in (0, 1]")
        if self.penalty_per_violation < 0:
            raise ExperimentError("penalty_per_violation must be >= 0")


@dataclass(frozen=True)
class SlaReport:
    """Adherence of one run against one SLA."""

    sla: Sla
    total_requests: int
    failed_requests: int
    slow_requests: int
    #: ``True`` when the run finished no requests at all.  The ratio
    #: properties then report their vacuous best-case values (availability
    #: and adherence 1.0, zero violations) — well-defined, but a consumer
    #: deciding "did the service meet its SLA?" should check this flag
    #: rather than celebrate an idle run.
    no_traffic: bool = False

    @property
    def violations(self) -> int:
        """Requests that failed or exceeded the response-time target."""
        return self.failed_requests + self.slow_requests

    @property
    def availability(self) -> float:
        """Fraction of requests that did not fail (1.0 for an idle run)."""
        if self.total_requests == 0:
            return 1.0
        return 1.0 - self.failed_requests / self.total_requests

    @property
    def adherence(self) -> float:
        """Fraction of requests meeting the SLA in full."""
        if self.total_requests == 0:
            return 1.0
        return 1.0 - self.violations / self.total_requests

    @property
    def availability_met(self) -> bool:
        """Did the run meet the contracted availability?"""
        return self.availability >= self.sla.availability_target

    @property
    def total_penalty(self) -> float:
        """Monetary penalty owed for this run."""
        return self.violations * self.sla.penalty_per_violation


def evaluate_sla(collector: MetricsCollector, sla: Sla) -> SlaReport:
    """Score a finished run's metrics against an SLA.

    SLAs are contracts with *users*, so in application-graph runs only
    ingress traffic is scored (end-to-end response times, by
    construction): internal tier-to-tier calls would otherwise
    double-count each user request once per fan-out.  For single-service
    runs every request is ingress and this is the historical behaviour.
    Per-tier adherence is still available via :func:`evaluate_tier_sla`.
    """
    if collector.graph_enabled:
        slow = sum(
            1 for rt in collector.ingress_response_times() if rt > sla.response_time_target
        )
        return SlaReport(
            sla=sla,
            total_requests=collector.ingress_requests,
            failed_requests=collector.ingress_failed,
            slow_requests=slow,
            no_traffic=collector.ingress_requests == 0,
        )
    slow = sum(1 for rt in collector.all_response_times() if rt > sla.response_time_target)
    failed = collector.total_removal_failures + collector.total_connection_failures
    total = collector.total_requests
    return SlaReport(
        sla=sla,
        total_requests=total,
        failed_requests=failed,
        slow_requests=slow,
        no_traffic=total == 0,
    )


def evaluate_tier_sla(collector: MetricsCollector, sla: Sla, service: str) -> SlaReport:
    """Score one tier's traffic (ingress *and* internal) against an SLA.

    The per-tier view an operator scales against — complements
    :func:`evaluate_sla`'s end-to-end user view.
    """
    acc = collector.service_stats(service)
    slow = sum(1 for rt in acc.response_times if rt > sla.response_time_target)
    failed = acc.removal_failures + acc.connection_failures
    return SlaReport(
        sla=sla,
        total_requests=acc.total,
        failed_requests=failed,
        slow_requests=slow,
        no_traffic=acc.total == 0,
    )
