"""Data-centre cost accounting (extension; the paper's economic framing).

Section I motivates the whole problem economically: SLA violations carry
"a monetary penalty for each violation", data centres are "reaching their
physical and financial limitations in terms of ... energy usage and
operating costs", and the conclusion claims HyScale "will allow cloud data
centres to save substantially on power consumption costs and SLA violation
penalties".  The paper leaves a "cost-based aspect" to future work; this
module implements enough of it to *quantify* the conclusion's claim.

Cost model:

* **Energy** — integrated over the run's timeline.  Each machine hosting at
  least one container draws ``idle_watts`` plus a utilization-proportional
  share of ``peak_watts - idle_watts``; empty machines are assumed parked
  (Section I: unused resources "can be reclaimed to conserve power").
* **SLA penalties** — violations (failures and over-target responses) times
  the contracted per-violation penalty (:class:`repro.metrics.sla.Sla`).
* **Machine time** — active-node-hours at an hourly rate, for operators who
  bill by occupancy rather than energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExperimentError
from repro.metrics.collector import MetricsCollector, TimelinePoint
from repro.metrics.sla import Sla, evaluate_sla


@dataclass(frozen=True)
class PricingModel:
    """What a machine-second and a broken promise cost."""

    #: Draw of a powered-but-idle machine, watts (2008-era dual-Xeon box).
    idle_watts: float = 180.0
    #: Draw at full CPU utilization, watts.
    peak_watts: float = 320.0
    #: Electricity price, $ per kWh.
    dollars_per_kwh: float = 0.12
    #: Occupancy price per active machine-hour (amortized capex + housing).
    dollars_per_node_hour: float = 0.08
    #: Cores per machine (to turn aggregate core-usage into utilization).
    node_cpu: float = 4.0

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.peak_watts < self.idle_watts:
            raise ExperimentError("need 0 <= idle_watts <= peak_watts")
        if self.dollars_per_kwh < 0 or self.dollars_per_node_hour < 0:
            raise ExperimentError("prices must be non-negative")
        if self.node_cpu <= 0:
            raise ExperimentError("node_cpu must be positive")

    def power_draw(self, point: TimelinePoint) -> float:
        """Instantaneous cluster draw in watts at one timeline sample."""
        if point.active_nodes <= 0:
            return 0.0
        utilization = min(
            1.0, point.cpu_usage / (point.active_nodes * self.node_cpu)
        )
        dynamic = (self.peak_watts - self.idle_watts) * utilization
        return point.active_nodes * (self.idle_watts + dynamic)


@dataclass(frozen=True)
class CostReport:
    """One run's bill."""

    duration: float  # seconds covered by the timeline
    energy_kwh: float
    node_hours: float
    sla_violations: int

    energy_cost: float
    occupancy_cost: float
    penalty_cost: float

    @property
    def total_cost(self) -> float:
        """Energy + occupancy + SLA penalties, dollars."""
        return self.energy_cost + self.occupancy_cost + self.penalty_cost

    def savings_vs(self, baseline: "CostReport") -> float:
        """Fractional total-cost savings relative to ``baseline`` (+ = cheaper)."""
        if baseline.total_cost <= 0:
            raise ExperimentError("baseline run has zero cost")
        return 1.0 - self.total_cost / baseline.total_cost


def evaluate_costs(
    collector: MetricsCollector,
    sla: Sla,
    pricing: PricingModel | None = None,
) -> CostReport:
    """Price one finished run from its timeline and request log."""
    pricing = pricing or PricingModel()
    timeline = collector.timeline
    if len(timeline) < 2:
        raise ExperimentError("cost accounting needs a sampled timeline (>= 2 points)")

    energy_joules = 0.0
    node_seconds = 0.0
    for before, after in zip(timeline, timeline[1:]):
        dt = after.time - before.time
        energy_joules += pricing.power_draw(before) * dt
        node_seconds += before.active_nodes * dt

    energy_kwh = energy_joules / 3.6e6
    node_hours = node_seconds / 3600.0
    report = evaluate_sla(collector, sla)

    return CostReport(
        duration=timeline[-1].time - timeline[0].time,
        energy_kwh=energy_kwh,
        node_hours=node_hours,
        sla_violations=report.violations,
        energy_cost=energy_kwh * pricing.dollars_per_kwh,
        occupancy_cost=node_hours * pricing.dollars_per_node_hour,
        penalty_cost=report.violations * sla.penalty_per_violation,
    )


def cost_comparison_rows(
    reports: dict[str, CostReport], baseline: str = "kubernetes"
) -> list[list[str]]:
    """Rows for :func:`repro.experiments.report.format_table`."""
    if baseline not in reports:
        raise ExperimentError(f"baseline {baseline!r} missing from reports")
    base = reports[baseline]
    rows = []
    for name in sorted(reports):
        r = reports[name]
        savings = "-" if name == baseline else f"{100 * r.savings_vs(base):+.1f} %"
        rows.append(
            [
                name,
                f"{r.energy_kwh:.3f}",
                f"{r.node_hours:.2f}",
                str(r.sla_violations),
                f"${r.total_cost:.3f}",
                savings,
            ]
        )
    return rows
