"""Request-level and cluster-level metric collection.

The paper's evaluation reports *user-perceived* metrics: average response
times and the percentage of failed requests, split into removal failures and
connection failures (Figures 6-8, 10).  The collector accumulates exactly
those, per service and overall, plus a step-sampled timeline of cluster
state (replica counts, usage) for the trace figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.metrics.events import ScalingEventLog
from repro.workloads.requests import FailureReason, Request, RequestState


@dataclass(frozen=True)
class TimelinePoint:
    """One sampled point of cluster state."""

    time: float
    total_replicas: int
    cpu_usage: float  # cores, cluster-wide
    cpu_allocated: float  # cores, cluster-wide
    mem_usage: float  # MiB
    mem_allocated: float  # MiB
    net_usage: float  # Mbit/s
    inflight: int
    #: Machines hosting at least one active container — the ones that must
    #: stay powered (Section I: idle machines can be reclaimed "to conserve
    #: power").  0 for timelines recorded before cost accounting existed.
    active_nodes: int = 0
    #: Total machines in the cluster at this sample.
    total_nodes: int = 0
    #: Mean response time of requests completed since the previous sample
    #: (0.0 when none completed) — the latency-over-time row.
    window_avg_response: float = 0.0
    #: Requests completed / failed since the previous sample.
    window_completed: int = 0
    window_failed: int = 0


@dataclass
class _ServiceAccumulator:
    """Running tallies for one service."""

    completed: int = 0
    removal_failures: int = 0
    connection_failures: int = 0
    response_times: list[float] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.completed + self.removal_failures + self.connection_failures


class MetricsCollector:
    """Sink for finished requests and scaling events."""

    def __init__(self) -> None:
        self._services: dict[str, _ServiceAccumulator] = {}
        # Ingress-only accumulators (user traffic as opposed to internal
        # graph calls); populated only when graph accounting is enabled so
        # single-service runs pay nothing.
        self._ingress: dict[str, _ServiceAccumulator] = {}
        self._graph_enabled = False
        self._internal_requests = 0
        self.timeline: list[TimelinePoint] = []
        #: Audit trail of every applied scaling action (who/when/why).
        self.events = ScalingEventLog()
        # Scaling-action tallies reported by the monitor.
        self.vertical_scale_ops = 0
        self.horizontal_scale_ups = 0
        self.horizontal_scale_downs = 0
        self.oom_kills = 0
        # Since-last-sample tallies for the timeline's latency row.
        self._window_rt_sum = 0.0
        self._window_completed = 0
        self._window_failed = 0

    # ------------------------------------------------------------------
    # Request accounting
    # ------------------------------------------------------------------
    def enable_graph(self) -> None:
        """Turn on ingress-vs-internal accounting (app runs only).

        Per-tier accumulators then keep counting *all* traffic (the
        capacity view), while the ingress accumulators count only user
        requests — the ones SLA adherence and ``compare_sweep`` report,
        so internal fan-out never double-counts as user traffic.
        """
        self._graph_enabled = True

    def record_request(self, request: Request) -> None:
        """Account one *finished* request."""
        if not request.is_finished:
            raise ExperimentError("only finished requests can be recorded")
        acc = self._services.setdefault(request.service, _ServiceAccumulator())
        ingress_acc: _ServiceAccumulator | None = None
        if self._graph_enabled:
            if request.ingress:
                ingress_acc = self._ingress.setdefault(request.service, _ServiceAccumulator())
            else:
                self._internal_requests += 1
        if request.state is RequestState.SUCCEEDED:
            acc.completed += 1
            acc.response_times.append(request.response_time or 0.0)
            self._window_rt_sum += request.response_time or 0.0
            self._window_completed += 1
            if ingress_acc is not None:
                ingress_acc.completed += 1
                ingress_acc.response_times.append(request.response_time or 0.0)
        elif request.failure_reason is FailureReason.REMOVAL:
            acc.removal_failures += 1
            self._window_failed += 1
            if ingress_acc is not None:
                ingress_acc.removal_failures += 1
        else:
            acc.connection_failures += 1
            self._window_failed += 1
            if ingress_acc is not None:
                ingress_acc.connection_failures += 1

    def record_requests(self, requests: list[Request]) -> None:
        """Account a batch of finished requests."""
        for request in requests:
            self.record_request(request)

    # ------------------------------------------------------------------
    # Scaling events
    # ------------------------------------------------------------------
    def record_vertical(self, count: int = 1) -> None:
        """Count vertical (docker update / tc change) operations."""
        self.vertical_scale_ops += count

    def record_scale_up(self, count: int = 1) -> None:
        """Count replicas added horizontally."""
        self.horizontal_scale_ups += count

    def record_scale_down(self, count: int = 1) -> None:
        """Count replicas removed horizontally."""
        self.horizontal_scale_downs += count

    def record_oom(self, count: int = 1) -> None:
        """Count kernel OOM kills."""
        self.oom_kills += count

    # ------------------------------------------------------------------
    # Timeline
    # ------------------------------------------------------------------
    def drain_window_stats(self) -> tuple[float, int, int]:
        """(mean response, completed, failed) since the last drain."""
        completed = self._window_completed
        failed = self._window_failed
        avg = self._window_rt_sum / completed if completed else 0.0
        self._window_rt_sum = 0.0
        self._window_completed = 0
        self._window_failed = 0
        return avg, completed, failed

    def sample_timeline(self, point: TimelinePoint) -> None:
        """Append one sampled cluster-state point."""
        if self.timeline and point.time < self.timeline[-1].time:
            raise ExperimentError("timeline samples must be time-ordered")
        self.timeline.append(point)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def service_names(self) -> list[str]:
        """Services seen so far, sorted."""
        return sorted(self._services)

    def service_stats(self, service: str) -> _ServiceAccumulator:
        """Raw accumulator for one service."""
        try:
            return self._services[service]
        except KeyError:
            raise ExperimentError(f"no metrics for service {service!r}") from None

    def all_response_times(self) -> list[float]:
        """Response times of every completed request, arbitrary order."""
        out: list[float] = []
        for acc in self._services.values():
            out.extend(acc.response_times)
        return out

    # ------------------------------------------------------------------
    # Ingress (user-traffic) reads — populated only in graph runs
    # ------------------------------------------------------------------
    @property
    def graph_enabled(self) -> bool:
        """True when ingress-vs-internal accounting is on (app runs)."""
        return self._graph_enabled

    @property
    def internal_requests(self) -> int:
        """Finished internal graph calls (never user traffic)."""
        return self._internal_requests

    def ingress_service_names(self) -> list[str]:
        """Ingress tiers seen so far, sorted."""
        return sorted(self._ingress)

    def ingress_stats(self, service: str) -> _ServiceAccumulator:
        """Ingress-only accumulator for one tier."""
        try:
            return self._ingress[service]
        except KeyError:
            raise ExperimentError(f"no ingress metrics for service {service!r}") from None

    def ingress_response_times(self) -> list[float]:
        """End-to-end response times of completed ingress requests."""
        out: list[float] = []
        for acc in self._ingress.values():
            out.extend(acc.response_times)
        return out

    @property
    def ingress_requests(self) -> int:
        """All finished ingress requests (completed + failed)."""
        return sum(acc.total for acc in self._ingress.values())

    @property
    def ingress_completed(self) -> int:
        """Completed ingress requests."""
        return sum(acc.completed for acc in self._ingress.values())

    @property
    def ingress_failed(self) -> int:
        """Failed ingress requests (both failure classes)."""
        return sum(
            acc.removal_failures + acc.connection_failures
            for acc in self._ingress.values()
        )

    @property
    def total_requests(self) -> int:
        """All finished requests seen (completed + failed)."""
        return sum(acc.total for acc in self._services.values())

    @property
    def total_completed(self) -> int:
        """All completed requests."""
        return sum(acc.completed for acc in self._services.values())

    @property
    def total_removal_failures(self) -> int:
        """All removal failures."""
        return sum(acc.removal_failures for acc in self._services.values())

    @property
    def total_connection_failures(self) -> int:
        """All connection failures."""
        return sum(acc.connection_failures for acc in self._services.values())
