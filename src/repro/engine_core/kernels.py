"""Batched kernels over the ClusterState store.

Three per-step phases dominate the scalar profile at scale; each gets a
batched formulation here, each *bit-identical* to the scalar code it
replaces (the parity proofs live in docs/engine.md; the assertions live in
the scalar-vs-array test suite and ``repro.engine_core.check``):

* :func:`quiet_node_step` — the per-node scheduling pass reduced to bulk
  column writes when a node provably has no in-flight work;
* :func:`sample_metrics` — the `_MetricsActor` timeline aggregates as
  order-exact batched reductions (Python left-fold over gathered columns,
  so the float sums match the scalar ``+=`` chain exactly);
* :class:`NodeStatsBuffer` — per-node ``docker stats`` history as shared
  per-step *frames* instead of 50k per-container sample objects, answering
  ``mean_stats`` queries with the exact ``StatsWindow.mean_over`` floats.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.dockersim.stats import StatsSample
from repro.engine_core.store import STATS_COLUMNS, ClusterState
from repro.errors import ContainerNotFound

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (views import us)
    from repro.engine_core.cluster import ArrayCluster
    from repro.engine_core.views import NodeView

#: Row indices into a stats frame matrix (rows follow ``STATS_COLUMNS``).
_USAGE_ROWS = (0, 2, 4, 6)  # cpu_usage, mem_usage, net_usage, disk_usage
_ALLOC_ROWS = (1, 3, 5, 7)  # cpu_request, mem_limit, net_rate, disk_quota


def quiet_node_step(
    store: ClusterState, serving_packed: Any, background_cpu: float, base_memory: float
) -> None:
    """The scalar node step, collapsed, for a provably idle node.

    With no in-flight requests anywhere on the node, no boots, and fair
    share provably granting each serving container exactly its background
    demand, the scalar step writes exactly these five constants per
    serving container — so write them in bulk.
    """
    store.fill("cpu_usage", serving_packed, background_cpu)
    store.fill("mem_usage", serving_packed, base_memory)
    store.fill("net_usage", serving_packed, 0.0)
    store.fill("disk_usage", serving_packed, 0.0)
    store.fill("net_cpu_headroom", serving_packed, 0.0)


def sample_metrics(cluster: "ArrayCluster") -> tuple[float, float, float, float, float, int, int]:
    """The `_MetricsActor` per-sample aggregates, batched.

    Returns ``(cpu_usage, mem_usage, net_usage, cpu_allocated,
    mem_allocated, inflight, active_nodes)`` — the exact floats the scalar
    single-pass loop accumulates.  Float order is preserved: columns are
    gathered per node in container insertion order, concatenated in node
    insertion order, and reduced with Python's left-fold ``sum`` — the same
    addition sequence as the scalar ``+=`` chain.  Integer sums (inflight,
    node counts) are order-free.
    """
    store = cluster.state
    chunks: list[Any] = []
    inflight = 0
    active_nodes = 0
    for node in cluster.nodes.values():
        packed = node._metrics_slots()
        if packed is None:
            # An OOM corpse is present: filter exactly as the scalar loop
            # does (insertion order, active only).
            active = [c for c in node.containers.values() if c.is_active]
            if active:
                active_nodes += 1
                chunks.append(store.pack_slots([c._slot for c in active]))
        elif len(packed):
            active_nodes += 1
            chunks.append(packed)
        # A container carries inflight work only while active (termination
        # empties the list), so the loaded-set sum matches the scalar count.
        for cid in node._loaded:
            inflight += len(node.containers[cid].inflight)

    def total(column: str) -> float:
        values: list[float] = []
        for packed in chunks:
            values.extend(store.take_list(column, packed))
        return float(sum(values))

    return (
        total("cpu_usage"),
        total("mem_usage"),
        total("net_usage"),
        total("cpu_request"),
        total("mem_limit"),
        inflight,
        active_nodes,
    )


class NodeStatsBuffer:
    """Frame-based ``docker stats`` history for one array-backed node.

    The scalar node manager records one :class:`StatsSample` per container
    per step into per-container :class:`~repro.dockersim.stats.StatsWindow`
    deques.  This buffer records one *frame* per step — the node's active
    id tuple plus an 8-column usage/allocation matrix gathered from the
    store — and answers ``mean_stats`` with the exact same floats:

    * sample set: a container's samples are the frames recorded since it
      (re)appeared on this node (``_first_seen`` mirrors the scalar
      window-deletion-on-departure semantics, so a replica migrating away
      and back starts a fresh history);
    * mean: usage fields are averaged over frames with
      ``ts >= latest - window`` in chronological left-fold order (numpy
      elementwise adds in frame order are per-element left folds, matching
      the scalar ``sum(...)/n`` bit for bit); allocation fields come from
      the latest frame, as ``StatsWindow.mean_over`` takes them from the
      latest sample.
    """

    def __init__(self, node: "NodeView", horizon: float):
        self._node = node
        self._store = node._store
        self._horizon = float(horizon)
        #: (timestamp, ids tuple, per-column matrix) per recorded step.
        self._frames: deque[tuple[float, tuple[str, ...], list[Any]]] = deque()
        self._first_seen: dict[str, float] = {}
        self._last_ids: tuple[str, ...] | None = None
        # Per-query memo: (latest_ts, window) -> precomputed window sums.
        self._memo: tuple[Any, ...] | None = None
        self._idx_cache: tuple[tuple[str, ...] | None, dict[str, int]] = (None, {})

    # ------------------------------------------------------------------
    # Recording (the node-manager phase)
    # ------------------------------------------------------------------
    def record(self, now: float) -> None:
        node = self._node
        node.active_containers()  # ensure the id/slot caches are fresh
        ids = node._active_ids
        packed = node._active_packed
        matrix = [self._store.take(column, packed) for column in STATS_COLUMNS]
        self._frames.append((now, ids, matrix))
        if ids is not self._last_ids:
            for cid in ids:
                if cid not in self._first_seen:
                    self._first_seen[cid] = now
            if len(self._first_seen) != len(ids):
                current = set(ids)
                departed = [cid for cid in self._first_seen if cid not in current]
                for cid in departed:
                    del self._first_seen[cid]
            self._last_ids = ids
        cutoff = now - self._horizon
        while self._frames and self._frames[0][0] < cutoff:
            self._frames.popleft()
        self._memo = None

    def tracked_containers(self) -> list[str]:
        """Ids with at least one recorded sample, sorted (scalar parity)."""
        return sorted(self._first_seen)

    # ------------------------------------------------------------------
    # Queries (the monitor phase)
    # ------------------------------------------------------------------
    def _index_of(self, ids: tuple[str, ...], cid: str) -> int:
        cached_ids, index = self._idx_cache
        if cached_ids is not ids:
            index = {name: i for i, name in enumerate(ids)}
            self._idx_cache = (ids, index)
        return index[cid]

    def _window_memo(self, window: float) -> tuple[Any, ...]:
        latest_ts = self._frames[-1][0]
        if self._memo is not None and self._memo[0] == latest_ts and self._memo[1] == window:
            return self._memo
        cutoff = latest_ts - window
        frames = [frame for frame in self._frames if frame[0] >= cutoff]
        first_ts = frames[0][0]
        ids = frames[0][1]
        uniform = all(frame[1] is ids for frame in frames)
        sums: list[Any] | None = None
        if uniform and self._store.numpy is not None:
            numpy = self._store.numpy
            sums = [numpy.array(frames[0][2][row], copy=True) for row in _USAGE_ROWS]
            for frame in frames[1:]:
                for position, row in enumerate(_USAGE_ROWS):
                    sums[position] += frame[2][row]
        self._memo = (latest_ts, window, frames, first_ts, ids if uniform else None, sums)
        return self._memo

    def mean_stats(self, cid: str, window: float) -> StatsSample:
        if cid not in self._first_seen or not self._frames:
            raise ContainerNotFound(f"node manager has no stats for {cid}")
        latest_ts, _, window_frames, first_ts, uniform_ids, sums = self._window_memo(window)
        first_seen = self._first_seen[cid]
        if uniform_ids is not None and sums is not None and first_seen <= first_ts:
            column = self._index_of(uniform_ids, cid)
            n = len(window_frames)
            latest_matrix = window_frames[-1][2]
            return StatsSample(
                timestamp=latest_ts,
                cpu_usage=float(sums[0][column]) / n,
                cpu_request=float(latest_matrix[_ALLOC_ROWS[0]][column]),
                mem_usage=float(sums[1][column]) / n,
                mem_limit=float(latest_matrix[_ALLOC_ROWS[1]][column]),
                net_usage=float(sums[2][column]) / n,
                net_rate=float(latest_matrix[_ALLOC_ROWS[2]][column]),
                disk_usage=float(sums[3][column]) / n,
                disk_quota=float(latest_matrix[_ALLOC_ROWS[3]][column]),
            )
        return self._mean_slow(cid, window_frames, latest_ts, first_seen)

    def _mean_slow(
        self,
        cid: str,
        window_frames: list[tuple[float, tuple[str, ...], list[Any]]],
        latest_ts: float,
        first_seen: float,
    ) -> StatsSample:
        """Exact per-container path for mixed-membership windows."""
        cpu_sum = mem_sum = net_sum = disk_sum = 0.0
        count = 0
        latest_alloc: tuple[float, float, float, float] | None = None
        for ts, ids, matrix in window_frames:
            if ts < first_seen:
                continue
            column = self._index_of(ids, cid)
            cpu_sum += float(matrix[_USAGE_ROWS[0]][column])
            mem_sum += float(matrix[_USAGE_ROWS[1]][column])
            net_sum += float(matrix[_USAGE_ROWS[2]][column])
            disk_sum += float(matrix[_USAGE_ROWS[3]][column])
            latest_alloc = (
                float(matrix[_ALLOC_ROWS[0]][column]),
                float(matrix[_ALLOC_ROWS[1]][column]),
                float(matrix[_ALLOC_ROWS[2]][column]),
                float(matrix[_ALLOC_ROWS[3]][column]),
            )
            count += 1
        if count == 0 or latest_alloc is None:
            raise ContainerNotFound(f"no samples yet for {cid}")
        return StatsSample(
            timestamp=latest_ts,
            cpu_usage=cpu_sum / count,
            cpu_request=latest_alloc[0],
            mem_usage=mem_sum / count,
            mem_limit=latest_alloc[1],
            net_usage=net_sum / count,
            net_rate=latest_alloc[2],
            disk_usage=disk_sum / count,
            disk_quota=latest_alloc[3],
        )
