"""The engine-backend registry: one place where backend names become clusters.

Mirrors :mod:`repro.core.registry` (the policy-name registry): the CLI's
``--engine`` flag, :meth:`Simulation.build`'s ``backend=`` knob, and
:class:`~repro.experiments.spec.RunSpec` all resolve names here, and
:func:`register_backend` lets extension code plug in alternative engines
under their own names.

A backend is simply the :class:`~repro.cluster.cluster.Cluster` class the
simulation is wired over — everything else (daemons, node managers, the
monitor, policies) is backend-agnostic because array clusters present the
exact object API through views.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.engine_core.cluster import ArrayCluster
from repro.errors import ExperimentError

#: The default backend: the scalar object engine, byte-untouched.
DEFAULT_BACKEND = "object"


class _BackendRegistry:
    """Name -> cluster-class table, populated with the built-ins.

    The table lives on an instance (not a bare module dict) so the lookup
    paths that run inside sweep workers carry no module-level mutable
    state; like the policy registry, it is fully populated at import time
    and only read afterwards, so every worker resolves identically.
    """

    def __init__(self) -> None:
        self._entries: dict[str, type[Cluster]] = {
            "object": Cluster,
            "array": ArrayCluster,
        }

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def add(self, name: str, cluster_cls: type[Cluster], *, replace: bool) -> None:
        if not name:
            raise ExperimentError("backend name must be non-empty")
        if not (isinstance(cluster_cls, type) and issubclass(cluster_cls, Cluster)):
            raise ExperimentError(f"backend {name!r} must be a Cluster subclass")
        if name in self._entries and not replace:
            raise ExperimentError(f"backend {name!r} is already registered")
        self._entries[name] = cluster_cls

    def resolve(self, backend: str) -> type[Cluster]:
        try:
            return self._entries[backend]
        except KeyError:
            raise ExperimentError(
                f"unknown engine backend {backend!r}; known: {self.names()}"
            ) from None


_REGISTRY = _BackendRegistry()


def registered_backends() -> tuple[str, ...]:
    """Every resolvable backend name, sorted."""
    return _REGISTRY.names()


def register_backend(name: str, cluster_cls: type[Cluster], *, replace: bool = False) -> None:
    """Add an engine backend under ``name``.

    Raises :class:`~repro.errors.ExperimentError` if the name is taken and
    ``replace`` is not set, or if ``cluster_cls`` is not a ``Cluster``.
    """
    _REGISTRY.add(name, cluster_cls, replace=replace)


def resolve_backend(backend: str) -> type[Cluster]:
    """Coerce a backend name to its cluster class."""
    return _REGISTRY.resolve(backend)
