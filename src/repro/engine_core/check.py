"""Self-contained engine-backend validation (``make engine-bench``).

Checks the two halves of the engine-core contract end to end:

1. **Parity** — at the paper's scale (24 worker nodes) every registered
   autoscaling policy produces **byte-identical** results on the array
   backend and the scalar object backend: same summary dict, same
   scaling-event stream, same timeline, same decision-trace JSONL, same
   telemetry exports.  This is asserted, not sampled: the array engine is
   only allowed to be a faster spelling of the same simulation.
2. **Scale** — a datacenter-shaped fleet (~50 containers per node, one
   hot service under bursty load) is stepped on both backends at 24, 200
   and 1,000 nodes; steps/sec and simulated-seconds-per-wall-second are
   recorded for each, summaries are compared at every scale, and the
   acceptance criterion — array >= 5x object steps/sec at 1,000 nodes
   with >= 50,000 containers — is asserted.

Writes a machine-readable report (default ``BENCH_engine_scale.json`` —
uploaded as a CI artifact next to the other BENCH files).  Exits non-zero
on any failed check.

Run directly::

    PYTHONPATH=src python -m repro.engine_core.check --out BENCH_engine_scale.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cluster import MicroserviceSpec
from repro.cluster.node import Node
from repro.cluster.placement import PlacementStrategy
from repro.cluster.resources import ResourceVector
from repro.config import ClusterConfig, SimulationConfig
from repro.core.registry import registered_policies
from repro.experiments.runner import Simulation
from repro.metrics.sla import Sla
from repro.obs import DecisionTracer, spans_to_jsonl
# A *reference* to the profiler's timer (never a module-level wall-clock
# call): timing here measures engine throughput, not simulated behaviour.
from repro.obs.profiler import DEFAULT_TIMER
from repro.telemetry import MetricRegistry, SloTracker, render_openmetrics, snapshot_to_jsonl
from repro.workloads import CPU_BOUND, HighBurstLoad, ServiceLoad

#: Paper-scale parity probe: worker-node count and simulated duration.
PARITY_NODES = 24
PARITY_DURATION = 60.0

#: Scale-bench fleet shape: (worker nodes, fill services, replicas each).
SCALES = (
    (24, 12, 100),
    (200, 20, 500),
    (1000, 100, 500),
)

#: Untimed sim-seconds before the measured window (boots finish at 2 s).
WARMUP_DURATION = 5.0

#: Timed sim-seconds per scale point (largest fleet gets the shortest
#: window: the object engine's per-step cost grows with container count).
BENCH_DURATIONS = {24: 60.0, 200: 30.0, 1000: 10.0}

#: Acceptance criteria at the largest scale point.
SPEEDUP_THRESHOLD = 5.0
CONTAINER_FLOOR = 50_000


class _RoundRobinPlacement(PlacementStrategy):
    """O(1)-amortized placement for the scale bench.

    The shipped strategies rank the full feasible set on every decision —
    O(nodes x containers) per replica, which swamps a 50,000-replica
    deployment.  The bench only needs *a* deterministic spread, so this
    strategy walks the node list with a cursor and takes the first node
    that fits.  Both backends use the same instance sequence, so the
    placement stream is identical by construction.
    """

    def __init__(self) -> None:
        self._cursor = 0

    def choose(
        self,
        nodes: list[Node],
        request: ResourceVector,
        *,
        exclude_service: str | None = None,
    ) -> Node | None:
        count = len(nodes)
        for probe in range(count):
            node = nodes[(self._cursor + probe) % count]
            if node.can_fit(request):
                self._cursor = (self._cursor + probe + 1) % count
                return node
        return None

    def rank(self, candidates: list[Node], request: ResourceVector) -> Node:
        return candidates[0]


# ----------------------------------------------------------------------
# Parity probe (the determinism contract between backends)
# ----------------------------------------------------------------------
def _parity_fingerprint(policy: str, backend: str) -> tuple:
    """One fully observed run; returns every byte-comparable artefact."""
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=PARITY_NODES), seed=7)
    specs = [
        MicroserviceSpec(
            name=f"svc-{i}", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, max_replicas=8
        )
        for i in range(2)
    ]
    loads = [
        ServiceLoad(
            service=spec.name,
            profile=CPU_BOUND,
            pattern=HighBurstLoad(base=4.0, peak=14.0, period=40.0, duty=0.4),
        )
        for spec in specs
    ]
    tracer = DecisionTracer()
    registry = MetricRegistry()
    slo = SloTracker(Sla(response_time_target=5.0, availability_target=0.95))
    simulation = Simulation.build(
        config=config,
        specs=specs,
        loads=loads,
        policy=policy,
        workload_label="engine-parity",
        tracer=tracer,
        telemetry=registry,
        slo=slo,
        backend=backend,
    )
    summary = simulation.run(PARITY_DURATION)
    now = simulation.engine.clock.now
    return (
        summary.to_dict(),
        list(simulation.collector.events.events()),
        list(simulation.collector.timeline),
        spans_to_jsonl(tracer.spans()),
        render_openmetrics(registry),
        snapshot_to_jsonl(registry, now=now, alerts=slo.alerts()),
    )


_ARTEFACTS = ("summary", "events", "timeline", "trace", "openmetrics", "snapshot")


def _check_parity(checks: dict[str, bool]) -> list[str]:
    """Every policy, both backends, byte-compared artefact by artefact."""
    mismatches: list[str] = []
    for policy in registered_policies():
        reference = _parity_fingerprint(policy, "object")
        candidate = _parity_fingerprint(policy, "array")
        bad = [
            name for name, ref, got in zip(_ARTEFACTS, reference, candidate) if ref != got
        ]
        checks[f"parity_{policy}"] = not bad
        mismatches.extend(f"{policy}:{name}" for name in bad)
    return mismatches


# ----------------------------------------------------------------------
# Scale bench (steps/sec at datacenter fleet sizes)
# ----------------------------------------------------------------------
def _scale_simulation(backend: str, nodes: int, fill_services: int, replicas: int) -> Simulation:
    config = SimulationConfig(cluster=ClusterConfig(worker_nodes=nodes), seed=7)
    specs = [
        MicroserviceSpec(
            name="hot", cpu_request=0.5, mem_limit=512.0, net_rate=50.0, max_replicas=16
        )
    ]
    loads = [
        ServiceLoad(
            service="hot",
            profile=CPU_BOUND,
            pattern=HighBurstLoad(base=4.0, peak=14.0, period=40.0, duty=0.4),
        )
    ]
    # ~50 quiet containers per node: sized so a node's worth fits in the
    # default 4-core / 8 GiB capacity with headroom for the hot service.
    for i in range(fill_services):
        specs.append(
            MicroserviceSpec(
                name=f"fill-{i:03d}",
                cpu_request=0.05,
                mem_limit=128.0,
                net_rate=1.0,
                min_replicas=replicas,
                max_replicas=replicas,
            )
        )
    return Simulation.build(
        config=config,
        specs=specs,
        loads=loads,
        policy="hybrid",
        workload_label="engine-scale",
        placement=_RoundRobinPlacement(),
        backend=backend,
    )


def _bench_scale(nodes: int, fill_services: int, replicas: int) -> dict:
    duration = BENCH_DURATIONS[nodes]
    point: dict = {"nodes": nodes, "bench_duration": duration}
    summaries = {}
    for backend in ("object", "array"):
        simulation = _scale_simulation(backend, nodes, fill_services, replicas)
        simulation.run(WARMUP_DURATION)
        started = DEFAULT_TIMER()
        summary = simulation.run(duration)
        wall = DEFAULT_TIMER() - started
        steps = duration / simulation.engine.clock.dt
        containers = sum(len(n.containers) for n in simulation.cluster.nodes.values())
        summaries[backend] = summary.to_dict()
        point[backend] = {
            "wall_seconds": round(wall, 6),
            "steps_per_second": round(steps / wall, 4) if wall > 0 else None,
            "sim_seconds_per_wall_second": round(duration / wall, 4) if wall > 0 else None,
            "containers": containers,
        }
    point["speedup"] = (
        round(point["array"]["steps_per_second"] / point["object"]["steps_per_second"], 4)
        if point["object"]["steps_per_second"]
        else None
    )
    point["summaries_identical"] = summaries["object"] == summaries["array"]
    return point


def run_check(out: Path) -> int:
    """Run parity + scale probes, validate, write the report."""
    checks: dict[str, bool] = {}

    mismatches = _check_parity(checks)

    scale_points = []
    for nodes, fill_services, replicas in SCALES:
        point = _bench_scale(nodes, fill_services, replicas)
        checks[f"scale_{point['nodes']}_summaries_identical"] = point["summaries_identical"]
        scale_points.append(point)

    top = scale_points[-1]
    checks["scale_1000_container_floor"] = top["array"]["containers"] >= CONTAINER_FLOOR
    checks["scale_1000_speedup_at_least_5x"] = (
        top["speedup"] is not None and top["speedup"] >= SPEEDUP_THRESHOLD
    )

    report = {
        "schema": "repro.engine-check/1",
        "parity_nodes": PARITY_NODES,
        "parity_duration": PARITY_DURATION,
        "policies": list(registered_policies()),
        "parity_mismatches": mismatches,
        "scales": scale_points,
        "speedup_threshold": SPEEDUP_THRESHOLD,
        "container_floor": CONTAINER_FLOOR,
        "checks": checks,
        "ok": all(checks.values()),
    }
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    for name, passed in sorted(checks.items()):
        print(f"  {'PASS' if passed else 'FAIL'}  {name}")
    print(
        f"engine-bench: {len(registered_policies())} policies bit-identical at "
        f"{PARITY_NODES} nodes, x{top['speedup']} at {top['nodes']} nodes "
        f"({top['array']['containers']} containers) -> {out}"
    )
    return 0 if report["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``python -m repro.engine_core.check``."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_engine_scale.json"),
        help="report path (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    return run_check(args.out)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
