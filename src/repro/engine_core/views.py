"""Object-API views over the array store.

:class:`ContainerView` and :class:`NodeView` subclass the plain
:class:`~repro.cluster.container.Container` and
:class:`~repro.cluster.node.Node`, so every consumer of the object API —
policies, the monitor, SimSan, the tracer, telemetry, tests — works
unchanged.  What changes is where the hot numbers live:

* a container view's allocation/usage fields are *properties* over one slot
  of the cluster's :class:`~repro.engine_core.store.ClusterState`, so
  batched kernels and scalar code read and write the same storage;
* a node view maintains O(1) bookkeeping (pending/OOM/inflight counters,
  cached sorted container lists, packed slot arrays) that lets the per-step
  schedulers skip entire nodes with no in-flight work — the *quiet-node*
  fast path, which is where datacenter-scale runs spend almost all steps.

Write discipline: always mutate container state through the view (or
through batched kernels over packed slots) — never by caching a raw column
and writing around the view, which would bypass the node's counters.  See
``docs/engine.md``.
"""

from __future__ import annotations

from typing import Any

from repro.cluster.container import ACTIVE_STATES, Container, ContainerState
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.config import OverheadModel
from repro.engine_core.kernels import NodeStatsBuffer, quiet_node_step
from repro.engine_core.store import ClusterState
from repro.errors import ClusterError
from repro.workloads.requests import Request


def _column_property(column: str) -> property:
    """A data descriptor routing one hot field to a store column."""

    def getter(self: "ContainerView") -> float:
        return self._store.get(column, self._slot)

    def setter(self: "ContainerView", value: float) -> None:
        self._store.put(column, self._slot, value)

    return property(getter, setter)


class ContainerView(Container):
    """A container whose hot numeric fields live in the cluster store.

    The view must be constructed with its store slot *before* the base
    initializer runs: the property descriptors below shadow the plain
    attribute assignments in ``Container.__init__``, so every write lands
    in the store from the very first assignment.
    """

    def __init__(self, store: ClusterState, slot: int, **kwargs: Any):
        self._store = store
        self._slot = slot
        self._host: NodeView | None = None
        self._idle_risky = False
        self._state_value: ContainerState | None = None
        super().__init__(**kwargs)

    # Hot fields, one store column each.
    cpu_request = _column_property("cpu_request")
    net_rate = _column_property("net_rate")
    disk_quota = _column_property("disk_quota")
    cpu_usage = _column_property("cpu_usage")
    mem_usage = _column_property("mem_usage")
    net_usage = _column_property("net_usage")
    disk_usage = _column_property("disk_usage")
    _net_cpu_headroom = _column_property("net_cpu_headroom")

    @property
    def mem_limit(self) -> float:
        return self._store.get("mem_limit", self._slot)

    @mem_limit.setter
    def mem_limit(self, value: float) -> None:
        self._store.put("mem_limit", self._slot, value)
        # Track whether an *idle* working set (base memory alone) would trip
        # the OOM threshold — the one per-container predicate the quiet-node
        # fast path needs (same comparison as ``over_oom_threshold``).
        risky = (
            self.overheads.container_base_memory
            > self.overheads.oom_factor * self._store.get("mem_limit", self._slot)
        )
        if risky != self._idle_risky:
            self._idle_risky = risky
            if self._host is not None and self.state in ACTIVE_STATES:
                self._host._idle_oom_risk += 1 if risky else -1

    @property
    def state(self) -> ContainerState:
        return self._state_value  # type: ignore[return-value]

    @state.setter
    def state(self, value: ContainerState) -> None:
        old = self._state_value
        self._state_value = value
        if self._host is not None and old is not value:
            self._host._on_state_change(self, old, value)

    # ------------------------------------------------------------------
    # Inflight bookkeeping: keep the host's loaded-set exact so a node
    # knows in O(1) whether any hosted container has in-flight requests.
    # ------------------------------------------------------------------
    def accept(self, request: Request, now: float, overhead_factor: float = 1.0) -> None:
        super().accept(request, now, overhead_factor=overhead_factor)
        if self._host is not None:
            self._host._loaded[self.container_id] = None

    def settle_requests(self, now: float) -> None:
        super().settle_requests(now)
        if not self.inflight and self._host is not None:
            self._host._loaded.pop(self.container_id, None)

    def terminate(self, now: float, *, oom: bool = False) -> list[Request]:
        casualties = super().terminate(now, oom=oom)
        if self._host is not None:
            self._host._loaded.pop(self.container_id, None)
        return casualties


class NodeView(Node):
    """A node that schedules its containers over the array store."""

    def __init__(
        self,
        name: str,
        capacity: ResourceVector,
        overheads: OverheadModel | None = None,
        disk_capacity: float = 150.0,
        *,
        store: ClusterState,
    ):
        self._store = store
        # O(1) step bookkeeping (maintained by views and overrides below).
        self._n_pending = 0
        self._n_oom = 0
        self._idle_oom_risk = 0
        self._loaded: dict[str, None] = {}  # container ids with inflight work
        # Sorted-list caches (rebuilt lazily after any membership/state change).
        self._dirty = True
        self._active_cache: list[Container] = []
        self._serving_cache: list[Container] = []
        self._serving_packed: Any = None
        self._active_ids: tuple[str, ...] = ()
        self._active_packed: Any = None
        # Insertion-order slot list (the `_MetricsActor` iteration order).
        self._ins_slots: list[int] = []
        self._ins_packed: Any = None
        self._stats_buffer: NodeStatsBuffer | None = None
        super().__init__(name, capacity, overheads, disk_capacity)
        self._bg = self.overheads.container_background_cpu
        self._base_mem = self.overheads.container_base_memory
        self._half_cpu = 0.5 * capacity.cpu

    # ------------------------------------------------------------------
    # Cached sorted views (same snapshot semantics as the base class:
    # callers iterate the list object current at call time).
    # ------------------------------------------------------------------
    def _refresh_caches(self) -> None:
        items = sorted(self.containers.items())
        self._active_cache = [c for _, c in items if c.is_active]
        self._serving_cache = [c for _, c in items if c.is_serving]
        self._serving_packed = self._store.pack_slots(
            [c._slot for c in self._serving_cache]  # type: ignore[attr-defined]
        )
        self._active_ids = tuple(c.container_id for c in self._active_cache)
        self._active_packed = self._store.pack_slots(
            [c._slot for c in self._active_cache]  # type: ignore[attr-defined]
        )
        self._dirty = False

    def active_containers(self) -> list[Container]:
        if self._dirty:
            self._refresh_caches()
        return self._active_cache

    def serving_containers(self) -> list[Container]:
        if self._dirty:
            self._refresh_caches()
        return self._serving_cache

    # ------------------------------------------------------------------
    # Membership management
    # ------------------------------------------------------------------
    def make_container(
        self,
        service: str,
        replica_index: int,
        *,
        cpu_request: float,
        mem_limit: float,
        net_rate: float,
        created_at: float = 0.0,
        boot_delay: float = 0.0,
        max_concurrency: int = 16,
        disk_quota: float = 50.0,
        container_id: str | None = None,
    ) -> Container:
        return ContainerView(
            self._store,
            self._store.alloc(),
            service=service,
            replica_index=replica_index,
            cpu_request=cpu_request,
            mem_limit=mem_limit,
            net_rate=net_rate,
            created_at=created_at,
            boot_delay=boot_delay,
            max_concurrency=max_concurrency,
            disk_quota=disk_quota,
            overheads=self.overheads,
            container_id=container_id,
        )

    def add_container(self, container: Container, *, enforce_capacity: bool = True) -> None:
        if not isinstance(container, ContainerView):
            raise ClusterError(
                f"array-backed node {self.name} requires containers built by "
                "make_container (got a plain Container)"
            )
        if container._store is not self._store:
            raise ClusterError(
                f"container {container.container_id} belongs to a different cluster store"
            )
        super().add_container(container, enforce_capacity=enforce_capacity)
        container._host = self
        state = container.state
        if state is ContainerState.PENDING:
            self._n_pending += 1
        elif state is ContainerState.OOM_KILLED:  # pragma: no cover - defensive
            self._n_oom += 1
        if state in ACTIVE_STATES and container._idle_risky:
            self._idle_oom_risk += 1
        if container.inflight:
            self._loaded[container.container_id] = None
        self._ins_slots.append(container._slot)
        self._ins_packed = None
        self._dirty = True

    def _unregister(self, container: ContainerView) -> None:
        state = container.state
        if state is ContainerState.PENDING:
            self._n_pending -= 1
        elif state is ContainerState.OOM_KILLED:
            self._n_oom -= 1
        if state in ACTIVE_STATES and container._idle_risky:
            self._idle_oom_risk -= 1
        self._loaded.pop(container.container_id, None)
        self._ins_slots = [
            c._slot for c in self.containers.values()  # type: ignore[attr-defined]
        ]
        self._ins_packed = None
        container._host = None
        self._dirty = True

    def remove_container(self, container_id: str, now: float, *, oom: bool = False) -> Container:
        container = super().remove_container(container_id, now, oom=oom)
        self._unregister(container)  # type: ignore[arg-type]
        return container

    def detach_container(self, container_id: str) -> Container:
        container = super().detach_container(container_id)
        self._unregister(container)  # type: ignore[arg-type]
        return container

    def _on_state_change(
        self, container: ContainerView, old: ContainerState | None, new: ContainerState
    ) -> None:
        """View callback: keep the counters exact across lifecycle flips."""
        was_active = old in ACTIVE_STATES
        now_active = new in ACTIVE_STATES
        if old is ContainerState.PENDING:
            self._n_pending -= 1
        if new is ContainerState.PENDING:
            self._n_pending += 1
        if old is ContainerState.OOM_KILLED:  # pragma: no cover - defensive
            self._n_oom -= 1
        if new is ContainerState.OOM_KILLED:
            self._n_oom += 1
        if container._idle_risky and was_active != now_active:
            self._idle_oom_risk += 1 if now_active else -1
        self._dirty = True

    # ------------------------------------------------------------------
    # Fast-path hooks
    # ------------------------------------------------------------------
    def maybe_oom_kills(self) -> bool:
        return self._n_oom > 0

    def stats_buffer(self, horizon: float) -> NodeStatsBuffer:
        if self._stats_buffer is None:
            self._stats_buffer = NodeStatsBuffer(self, horizon)
        return self._stats_buffer

    def _metrics_slots(self) -> Any:
        """Packed insertion-order active slots, or ``None`` with corpses.

        With no OOM corpse present every hosted container is active, so the
        insertion-order slot list *is* the `_MetricsActor` iteration order;
        a corpse forces the caller back to the exact per-object filter.
        """
        if self._n_oom:
            return None
        if self._ins_packed is None:
            self._ins_packed = self._store.pack_slots(self._ins_slots)
        return self._ins_packed

    def step(self, now: float, dt: float) -> None:
        """One step: the quiet-node kernel when provably idle, else scalar.

        A node is *quiet* when nothing it hosts can change this step beyond
        the idle-usage refresh: no in-flight requests anywhere (so the CPU /
        disk / network phases have zero useful demand and settlement is a
        no-op), no boots in progress, no idle OOM risk, and enough CPU that
        fair share provably grants every serving container exactly its
        background demand.  Under those conditions the scalar step reduces
        to constant writes per serving container — done in bulk here, bit
        for bit identical (see docs/engine.md for the derivation).
        """
        if not self._loaded and self._n_pending == 0 and self._idle_oom_risk == 0:
            if self._dirty:
                self._refresh_caches()
            n = len(self._serving_cache)
            # The half-capacity margin guarantees progressive filling grants
            # every claimant exactly its (background) demand; the 64-claimant
            # bound keeps that within fair share's max_rounds (one claimant
            # is provably satisfied per round under the margin).
            if n * self._bg <= self._half_cpu and (self._bg == 0.0 or n <= 64):
                self.last_oom_kills = []
                quiet_node_step(self._store, self._serving_packed, self._bg, self._base_mem)
                return
        super().step(now, dt)
