"""The struct-of-arrays cluster state store.

One :class:`ClusterState` instance backs one array-backed cluster: every
container the cluster ever hosts owns one *slot* (an integer index), and
each hot numeric field lives in its own growable column.  Views
(:mod:`repro.engine_core.views`) read and write single elements through
properties; kernels (:mod:`repro.engine_core.kernels`) read and write whole
slot batches.

The store is dependency-optional: columns are numpy ``float64`` arrays when
numpy imports and plain Python lists otherwise.  Element reads always
return built-in ``float`` (a ``np.float64`` leaking into a summary dict or
JSONL line would break byte-determinism against the object backend).

Slots are append-only: a removed container's slot is never reused, so a
slot index taken at any point stays valid for the life of the run (the
decision tracer and telemetry may hold views across scaling actions).
"""

from __future__ import annotations

from typing import Any

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None  # type: ignore[assignment]


#: Hot per-container fields, one column each.  Allocation fields are written
#: by ``docker run``/``docker update``; usage fields by the per-step
#: schedulers; ``net_cpu_headroom`` couples the compute and network phases.
COLUMNS = (
    "cpu_request",
    "mem_limit",
    "net_rate",
    "disk_quota",
    "cpu_usage",
    "mem_usage",
    "net_usage",
    "disk_usage",
    "net_cpu_headroom",
)

#: Columns sampled by ``docker stats`` (node-manager frame order — must
#: match :class:`repro.dockersim.stats.StatsSample` field semantics).
STATS_COLUMNS = (
    "cpu_usage",
    "cpu_request",
    "mem_usage",
    "mem_limit",
    "net_usage",
    "net_rate",
    "disk_usage",
    "disk_quota",
)


class ClusterState:
    """Growable struct-of-arrays storage for one cluster's containers."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            capacity = 1
        self.numpy = _np  # None on numpy-free installs
        self.n = 0
        self._capacity = capacity
        self.columns: dict[str, Any] = {name: self._new_column(capacity) for name in COLUMNS}

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------
    def alloc(self) -> int:
        """Claim the next slot (append-only; never reused)."""
        if self.n >= self._capacity:
            self._grow()
        slot = self.n
        self.n += 1
        return slot

    def _new_column(self, size: int) -> Any:
        if self.numpy is not None:
            return self.numpy.zeros(size, dtype=self.numpy.float64)
        return [0.0] * size

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        for name, column in self.columns.items():
            if self.numpy is not None:
                grown = self.numpy.zeros(new_capacity, dtype=self.numpy.float64)
                grown[: self._capacity] = column
                self.columns[name] = grown
            else:
                column.extend([0.0] * (new_capacity - self._capacity))
        self._capacity = new_capacity

    # ------------------------------------------------------------------
    # Element access (views)
    # ------------------------------------------------------------------
    def get(self, column: str, slot: int) -> float:
        """One element, always as a built-in ``float``."""
        return float(self.columns[column][slot])

    def put(self, column: str, slot: int, value: float) -> None:
        """Write one element."""
        self.columns[column][slot] = float(value)

    # ------------------------------------------------------------------
    # Batch access (kernels)
    # ------------------------------------------------------------------
    def pack_slots(self, slots: list[int]) -> Any:
        """An index object for batch ops over ``slots`` (numpy: intp array)."""
        if self.numpy is not None:
            return self.numpy.asarray(slots, dtype=self.numpy.intp)
        return list(slots)

    def fill(self, column: str, packed: Any, value: float) -> None:
        """Write ``value`` into every slot of a packed batch."""
        col = self.columns[column]
        if self.numpy is not None:
            col[packed] = value
        else:
            for slot in packed:
                col[slot] = value

    def take(self, column: str, packed: Any) -> Any:
        """Copy a batch out of a column (numpy array or Python list)."""
        col = self.columns[column]
        if self.numpy is not None:
            return col[packed]
        return [col[slot] for slot in packed]

    def take_list(self, column: str, packed: Any) -> list[float]:
        """Copy a batch out as built-in floats (for order-exact reductions)."""
        col = self.columns[column]
        if self.numpy is not None:
            return col[packed].tolist()
        return [col[slot] for slot in packed]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        backing = "numpy" if self.numpy is not None else "list"
        return f"ClusterState(slots={self.n}, backing={backing})"
