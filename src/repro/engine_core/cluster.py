"""The array-backed cluster: object bookkeeping over a ClusterState store.

:class:`ArrayCluster` is a drop-in :class:`~repro.cluster.cluster.Cluster`
whose nodes are :class:`~repro.engine_core.views.NodeView` instances sharing
one cluster-wide :class:`~repro.engine_core.store.ClusterState`.  Slots are
cluster-scoped, so live migration between array nodes moves a view without
copying state.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.config import OverheadModel
from repro.engine_core.kernels import sample_metrics
from repro.engine_core.store import ClusterState
from repro.engine_core.views import NodeView
from repro.workloads.requests import Request


class ArrayCluster(Cluster):
    """A cluster whose hot container state lives in one array store."""

    def __init__(self, overheads: OverheadModel | None = None):
        super().__init__(overheads)
        self.state = ClusterState()
        self._sorted_cache: list[Node] | None = None

    def make_node(self, name: str, capacity: ResourceVector, *, disk_capacity: float) -> Node:
        return NodeView(
            name, capacity, self.overheads, disk_capacity=disk_capacity, store=self.state
        )

    # ------------------------------------------------------------------
    # Cached deterministic iteration (fleet membership changes rarely).
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        super().add_node(node)
        self._sorted_cache = None

    def remove_node(self, name: str, now: float) -> list[Request]:
        casualties = super().remove_node(name, now)
        self._sorted_cache = None
        return casualties

    def sorted_nodes(self) -> list[Node]:
        if self._sorted_cache is None:
            self._sorted_cache = [self.nodes[name] for name in sorted(self.nodes)]
        return self._sorted_cache

    # ------------------------------------------------------------------
    # Batched kernels
    # ------------------------------------------------------------------
    def metrics_totals(self) -> tuple[float, float, float, float, float, int, int]:
        return sample_metrics(self)
