"""Array-backed engine core: the ClusterState store, views, and kernels.

The scalar engine steps every container as a Python object; that caps
practical runs at tens of nodes.  This package keeps the *object API*
(:class:`~repro.cluster.cluster.Cluster`, :class:`~repro.cluster.node.Node`,
:class:`~repro.cluster.container.Container`) intact but re-homes the hot
numeric state in a struct-of-arrays :class:`ClusterState` store:

* :class:`ClusterState` — one growable column per hot field (allocations,
  measured usage, CPU headroom), numpy-backed when numpy imports and plain
  Python lists otherwise (dependency-optional);
* :class:`ContainerView` / :class:`NodeView` — drop-in subclasses whose hot
  fields are properties over store slots, so policies, SimSan, the tracer,
  telemetry, and every existing test read and write the same API;
* :mod:`~repro.engine_core.kernels` — batched per-step kernels for the top
  PhaseProfiler phases (quiet-node scheduling, ``_MetricsActor`` sampling,
  node-manager stats windows);
* :mod:`~repro.engine_core.backend` — the ``"object" | "array"`` backend
  registry threaded through ``Simulation.build`` / ``RunSpec`` /
  ``hyscale-repro run --engine``.

The array backend is bit-identical to the scalar path (asserted at paper
scale for all registered policies by :mod:`repro.engine_core.check` and the
scalar-vs-array test suite); the object backend stays the default.  See
``docs/engine.md``.
"""

from repro.engine_core.backend import (
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.engine_core.cluster import ArrayCluster
from repro.engine_core.store import ClusterState
from repro.engine_core.views import ContainerView, NodeView

__all__ = [
    "ArrayCluster",
    "ClusterState",
    "ContainerView",
    "NodeView",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]
