"""Shared NIC with HTB shaping and tx-queue contention.

This is the mechanism behind the paper's Figure 3: with traffic shaped by
``tc``, *vertical* network scaling changes nothing (the shaper is fair), but
*horizontal* scaling across machines relieves contention on each machine's
transmit queues, cutting execution time until the gain tapers off around
8 replicas.

We model that with a saturating per-class penalty: a class shaped to ``r``
Mbit/s loses a fraction ``pmax * r / (r + r_half)`` of its throughput to
queueing (one fat class queues heavily; many thin classes on separate NICs
barely queue).  An additional penalty applies when the whole link is
oversubscribed.  Constants live in
:class:`~repro.config.OverheadModel` and are calibrated in
``benchmarks/test_fig3_network_scaling.py``.
"""

from __future__ import annotations

from repro.config import OverheadModel
from repro.errors import NetworkSimError
from repro.netsim.iptables import IptablesTable
from repro.netsim.tc import HtbQdisc


def _htb_class_id(container_id: str) -> str:
    """The ``tc`` class handle for a container (``1:<container>``)."""
    return f"1:{container_id}"


class NetworkInterface:
    """One machine's egress NIC: iptables marking + HTB + tx queues."""

    def __init__(self, capacity: float, overheads: OverheadModel | None = None):
        if capacity <= 0:
            raise NetworkSimError(f"NIC capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self.overheads = overheads or OverheadModel()
        self.qdisc = HtbQdisc(capacity)
        self.iptables = IptablesTable()
        #: Mbit/s actually transmitted per class last step (diagnostics).
        self.last_throughput: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Attachment (mirrors `iptables -A` + `tc class add`)
    # ------------------------------------------------------------------
    def attach(self, container_id: str, rate: float, ceil: float | None = None) -> None:
        """Create an HTB class for the container and mark its traffic."""
        class_id = _htb_class_id(container_id)
        self.qdisc.add_class(class_id, rate, ceil)
        self.iptables.add_rule(container_id, class_id)

    def detach(self, container_id: str) -> None:
        """Tear down the container's class and mark rule."""
        class_id = self.iptables.class_of(container_id)
        self.iptables.delete_rule(container_id)
        self.qdisc.del_class(class_id)

    def reshape(self, container_id: str, rate: float, ceil: float | None = None) -> None:
        """Change the container's guaranteed rate (vertical network scaling)."""
        class_id = self.iptables.class_of(container_id)
        self.qdisc.change_class(class_id, rate=rate, ceil=ceil)

    def is_attached(self, container_id: str) -> bool:
        """True if the container has a shaping class on this NIC."""
        return self.iptables.has_rule(container_id)

    def rate_of(self, container_id: str) -> float:
        """Guaranteed HTB rate of the container's class, Mbit/s.

        The tc-side view of the container's ``net_rate`` allocation; the
        sanitizer cross-checks the two stay in sync through reshapes.
        """
        return self.qdisc.get_class(self.iptables.class_of(container_id)).rate

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def class_penalty(self, granted_rate: float, class_rate: float, oversubscription: float) -> float:
        """Fraction of throughput lost to tx queueing for one class.

        Two factors multiply the saturating ``pmax * g / (g + r_half)`` term:

        * how *fat* the class is (``granted_rate``) — one class pushing
          100 Mbit/s queues much harder than eight classes pushing 12.5
          (Figure 3's mechanism), and
        * how *saturated* it is (``granted/rate``) — a class flowing well
          under its shaped rate barely queues at all.

        ``oversubscription`` is ``max(0, total_offered/capacity - 1)`` and
        adds link-level queueing on top.
        """
        o = self.overheads
        saturating = o.txq_penalty_max * granted_rate / (granted_rate + o.txq_penalty_half_rate)
        utilization = min(1.0, granted_rate / class_rate) if class_rate > 0 else 1.0
        oversub = o.txq_oversub_penalty * oversubscription
        # Cubic in utilization: queueing is negligible while a class flows
        # well under its shaped rate and bites hard only near saturation.
        return min(0.95, saturating * utilization**3 + oversub)

    def transmit(self, offered: dict[str, float]) -> dict[str, float]:
        """Push per-container offered loads (Mbit/s) through the NIC.

        Returns effective per-container throughput (Mbit/s) after HTB
        shaping and tx-queue contention.  Total effective throughput never
        exceeds link capacity.
        """
        by_class: dict[str, float] = {}
        class_to_container: dict[str, str] = {}
        for container_id, load in offered.items():
            if load < 0:
                raise NetworkSimError(f"offered load for {container_id!r} must be >= 0")
            class_id = self.iptables.class_of(container_id)
            by_class[class_id] = load
            class_to_container[class_id] = container_id

        grants = self.qdisc.allocate(by_class)
        # Oversubscription is computed on *admitted* traffic (each class's
        # offered load capped at its ceiling): a deep application backlog
        # does not multiply kernel queue pressure — only what the shaper
        # actually admits contends for the tx ring.
        admitted = sum(
            min(load, self.qdisc.get_class(cid).ceil) for cid, load in by_class.items()
        )
        oversubscription = max(0.0, admitted / self.capacity - 1.0)

        result: dict[str, float] = {}
        self.last_throughput = {}
        for class_id, granted in grants.items():
            penalty = self.class_penalty(granted, self.qdisc.get_class(class_id).rate, oversubscription)
            effective = granted * (1.0 - penalty)
            container_id = class_to_container[class_id]
            result[container_id] = effective
            self.last_throughput[class_id] = effective
        return result
