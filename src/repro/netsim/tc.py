"""Linux traffic-control primitives: token buckets and HTB.

The paper shapes container egress with ``tc`` hierarchical token bucket
(HTB) filters plus ``iptables`` marks (Sections III-C and II-D).  We model
the two HTB properties the experiments rely on:

* each class is **guaranteed** its configured ``rate`` when it has demand;
* spare capacity is **borrowed** up to each class's ``ceil``, split in
  proportion to class rate (HTB lends in proportion to quantum, which
  defaults to rate / r2q).

Granting is work-conserving and never exceeds link capacity — both are
property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.fairshare import weighted_fair_share
from repro.errors import NetworkSimError


class TokenBucket:
    """Classic token bucket: sustained ``rate`` with burst absorption.

    Used for per-class conformance accounting.  ``rate`` is in Mbit/s and
    ``burst`` in Mbit.
    """

    def __init__(self, rate: float, burst: float | None = None):
        if rate < 0:
            raise NetworkSimError(f"rate must be non-negative, got {rate}")
        self.rate = float(rate)
        # Default burst: 100 ms worth of traffic, floor of 1 Mbit — roughly
        # tc's heuristic of sizing bursts to timer resolution.
        self.burst = float(burst) if burst is not None else max(1.0, rate * 0.1)
        if self.burst <= 0:
            raise NetworkSimError(f"burst must be positive, got {self.burst}")
        self.tokens = self.burst

    def refill(self, dt: float) -> None:
        """Accrue ``rate * dt`` tokens, capped at the burst size."""
        if dt < 0:
            raise NetworkSimError("dt must be non-negative")
        self.tokens = min(self.burst, self.tokens + self.rate * dt)

    def consume(self, amount: float) -> float:
        """Drain up to ``amount`` Mbit of tokens; return what was granted."""
        if amount < 0:
            raise NetworkSimError("amount must be non-negative")
        granted = min(amount, self.tokens)
        self.tokens -= granted
        return granted

    def set_rate(self, rate: float) -> None:
        """Reconfigure the sustained rate (``tc class change``)."""
        if rate < 0:
            raise NetworkSimError(f"rate must be non-negative, got {rate}")
        self.rate = float(rate)
        self.burst = max(1.0, rate * 0.1)
        self.tokens = min(self.tokens, self.burst)


@dataclass
class HtbClass:
    """One HTB leaf class: guaranteed ``rate``, borrow ceiling ``ceil``."""

    class_id: str
    rate: float  # Mbit/s guaranteed
    ceil: float  # Mbit/s maximum after borrowing

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise NetworkSimError(f"class {self.class_id}: rate must be >= 0")
        if self.ceil < self.rate:
            raise NetworkSimError(f"class {self.class_id}: ceil must be >= rate")


class HtbQdisc:
    """A single-level HTB hierarchy on one link.

    Parameters
    ----------
    capacity:
        Link capacity in Mbit/s (the root class rate).
    """

    def __init__(self, capacity: float):
        if capacity <= 0:
            raise NetworkSimError(f"capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self._classes: dict[str, HtbClass] = {}

    # ------------------------------------------------------------------
    # Class management ("tc class add / change / del")
    # ------------------------------------------------------------------
    def add_class(self, class_id: str, rate: float, ceil: float | None = None) -> HtbClass:
        """Create a leaf class; ``ceil`` defaults to link capacity."""
        if class_id in self._classes:
            raise NetworkSimError(f"class {class_id!r} already exists")
        cls = HtbClass(class_id, rate, self.capacity if ceil is None else ceil)
        self._classes[class_id] = cls
        return cls

    def change_class(self, class_id: str, rate: float | None = None, ceil: float | None = None) -> HtbClass:
        """Reconfigure an existing class."""
        cls = self.get_class(class_id)
        new_rate = cls.rate if rate is None else rate
        new_ceil = cls.ceil if ceil is None else ceil
        updated = HtbClass(class_id, new_rate, new_ceil)
        self._classes[class_id] = updated
        return updated

    def del_class(self, class_id: str) -> None:
        """Remove a leaf class."""
        if class_id not in self._classes:
            raise NetworkSimError(f"class {class_id!r} does not exist")
        del self._classes[class_id]

    def get_class(self, class_id: str) -> HtbClass:
        """Look up a class by id."""
        try:
            return self._classes[class_id]
        except KeyError:
            raise NetworkSimError(f"class {class_id!r} does not exist") from None

    @property
    def class_ids(self) -> list[str]:
        """All configured class ids (sorted for determinism)."""
        return sorted(self._classes)

    def total_guaranteed(self) -> float:
        """Sum of configured class rates (may exceed capacity: oversubscription)."""
        return sum(c.rate for c in self._classes.values())

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def allocate(self, offered: dict[str, float]) -> dict[str, float]:
        """Split link capacity among classes given offered loads (Mbit/s).

        Two HTB phases:

        1. every class is granted ``min(offered, rate)`` — scaled down
           proportionally if the guarantees alone exceed capacity
           (oversubscribed link);
        2. leftover capacity is lent to classes still below both their
           offered load and their ceiling, in proportion to class rate.

        Returns per-class grants; ids absent from ``offered`` get 0.
        """
        for cid, load in offered.items():
            if load < 0:
                raise NetworkSimError(f"offered load for {cid!r} must be >= 0")
            if cid not in self._classes:
                raise NetworkSimError(f"offered load for unknown class {cid!r}")

        grants: dict[str, float] = {}
        ids = [cid for cid in self.class_ids if offered.get(cid, 0.0) > 0]
        if not ids:
            return {cid: 0.0 for cid in offered}

        # Phase 1: guarantees.
        wanted = {cid: min(offered[cid], self._classes[cid].rate) for cid in ids}
        total_wanted = sum(wanted.values())
        scale = min(1.0, self.capacity / total_wanted) if total_wanted > 0 else 1.0
        for cid in ids:
            grants[cid] = wanted[cid] * scale

        # Phase 2: borrowing, weighted by class rate (zero-rate classes get
        # a tiny weight so they can still borrow, like HTB's minimum quantum).
        leftover = self.capacity - sum(grants.values())
        if leftover > 1e-12:
            demands = []
            weights = []
            for cid in ids:
                cls = self._classes[cid]
                headroom = max(0.0, min(offered[cid], cls.ceil) - grants[cid])
                demands.append(headroom)
                weights.append(max(cls.rate, 1e-6))
            borrowed = weighted_fair_share(leftover, demands, weights)
            for cid, extra in zip(ids, borrowed):
                grants[cid] += extra

        for cid in offered:
            grants.setdefault(cid, 0.0)
        return grants
