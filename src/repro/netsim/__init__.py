"""Simulated traffic control: token buckets, HTB classes, iptables marking,
and a shared NIC with the tx-queue contention model from Section III-C."""

from repro.netsim.iptables import IptablesTable, MarkRule
from repro.netsim.interface import NetworkInterface
from repro.netsim.tc import HtbClass, HtbQdisc, TokenBucket

__all__ = [
    "TokenBucket",
    "HtbClass",
    "HtbQdisc",
    "MarkRule",
    "IptablesTable",
    "NetworkInterface",
]
