"""Minimal iptables mangle-table model.

Containers cannot be attached to ``tc`` classes directly; the paper (like
NBWGuard) marks each container's packets in the iptables mangle table and
lets a tc filter map marks to HTB classes.  We reproduce that indirection:
:class:`MarkRule` associates a container with a firewall mark, and
:class:`IptablesTable` resolves container ids to the HTB class carrying that
mark.  Keeping the hop explicit means the node's data path mirrors the real
deployment (container -> mark -> class) and tests can assert on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkSimError


@dataclass(frozen=True)
class MarkRule:
    """``-A OUTPUT -m owner --owner <container> -j MARK --set-mark <mark>``"""

    container_id: str
    mark: int

    def __post_init__(self) -> None:
        if self.mark <= 0:
            raise NetworkSimError("firewall marks must be positive integers")


class IptablesTable:
    """Mangle table mapping container traffic to firewall marks."""

    def __init__(self) -> None:
        self._rules: dict[str, MarkRule] = {}  # container_id -> rule
        self._classes: dict[int, str] = {}  # mark -> tc class id
        self._next_mark = 1

    # ------------------------------------------------------------------
    # Rule management
    # ------------------------------------------------------------------
    def add_rule(self, container_id: str, class_id: str) -> MarkRule:
        """Mark ``container_id``'s packets and bind the mark to a tc class."""
        if container_id in self._rules:
            raise NetworkSimError(f"container {container_id!r} already has a mark rule")
        rule = MarkRule(container_id, self._next_mark)
        self._next_mark += 1
        self._rules[container_id] = rule
        self._classes[rule.mark] = class_id
        return rule

    def delete_rule(self, container_id: str) -> None:
        """Remove the mark rule and its class binding."""
        rule = self._rules.pop(container_id, None)
        if rule is None:
            raise NetworkSimError(f"no mark rule for container {container_id!r}")
        del self._classes[rule.mark]

    def has_rule(self, container_id: str) -> bool:
        """True if the container's packets are being marked."""
        return container_id in self._rules

    # ------------------------------------------------------------------
    # Resolution (the tc filter's job)
    # ------------------------------------------------------------------
    def mark_of(self, container_id: str) -> int:
        """Firewall mark applied to the container's packets."""
        try:
            return self._rules[container_id].mark
        except KeyError:
            raise NetworkSimError(f"no mark rule for container {container_id!r}") from None

    def class_of(self, container_id: str) -> str:
        """HTB class the container's (marked) traffic drains into."""
        return self._classes[self.mark_of(container_id)]

    def rules(self) -> list[MarkRule]:
        """All rules, ordered by mark (insertion order)."""
        return sorted(self._rules.values(), key=lambda r: r.mark)
