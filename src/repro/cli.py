"""Command-line interface: run any paper experiment from a shell.

Mirrors the paper's platform knob that algorithms "can be specified at
initialization or through the command-line interface" (Section V-C).

Examples::

    hyscale-repro list
    hyscale-repro run cpu --burst high --algorithms kubernetes hybrid
    hyscale-repro run mixed --costs --events 10 --timeline
    hyscale-repro run bitbrains --json runs.json && hyscale-repro inspect runs.json
    hyscale-repro run cpu --algorithms hybrid --trace-out t.jsonl
    hyscale-repro explain t.jsonl --actions-only # why did each action fire?
    hyscale-repro profile --workload cpu --json BENCH_phase_profile.json
    hyscale-repro reproduce --jobs 4 --cache-dir .sweep-cache  # parallel + resumable
    hyscale-repro section3 --which network
    hyscale-repro trace --vms 50 --duration 600
    hyscale-repro lint                           # determinism & invariant linter
    hyscale-repro analyze                        # FlowLint interprocedural analysis
    hyscale-repro sanitize                       # SimSan runtime-invariant probe
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.compare import compare_runs
from repro.experiments.configs import (
    ALGORITHMS,
    BURSTS,
    EXTENSION_ALGORITHMS,
    WORKLOAD_FACTORIES,
    ExperimentSpec,
)
from repro.experiments.report import (
    memory_table,
    scaling_curve_table,
    trace_series_table,
)
from repro.experiments.section3 import (
    cpu_scaling_curve,
    memory_scaling_table,
    network_scaling_curve,
)
from repro.engine_core.backend import registered_backends
from repro.experiments.spec import SEED_MODES, RunSpec
from repro.platform.routing import DEFAULT_ROUTING, registered_routings
from repro.telemetry.sampling import registered_sampling_policies
from repro.workloads.bitbrains import generate_bitbrains_trace
from repro.workloads.registry import registered_apps, resolve_app, resolve_workload

#: Workload name -> (factory, takes_burst); a view over the canonical
#: :mod:`repro.workloads.registry` (kept under its historic CLI name).
WORKLOADS = WORKLOAD_FACTORIES

#: Every runnable algorithm: the paper's four plus extensions.
ALL_POLICY_NAMES = ALGORITHMS + EXTENSION_ALGORITHMS


def _build_spec(
    workload: str | None, burst: str, seed: int, app: str | None = None
) -> ExperimentSpec:
    if app is not None:
        return resolve_app(app)(burst, seed=seed)
    assert workload is not None  # argparse/_cmd_run guarantee one of the two
    factory, takes_burst = resolve_workload(workload)
    return factory(burst, seed=seed) if takes_burst else factory(seed=seed)


def _cmd_list(_: argparse.Namespace) -> int:
    print("workloads :", ", ".join(sorted(WORKLOADS)))
    print("apps      :", ", ".join(registered_apps()))
    print("bursts    :", ", ".join(BURSTS))
    print("algorithms:", ", ".join(ALGORITHMS), "(+ extensions:", ", ".join(EXTENSION_ALGORITHMS) + ")")
    print("routing   :", ", ".join(registered_routings()))
    return 0


def _trace_path(base: str, algorithm: str, multiple: bool) -> str:
    """Per-algorithm trace file: ``t.jsonl`` -> ``t.hybrid.jsonl`` when the
    run covers several algorithms, unchanged for a single one."""
    if not multiple:
        return base
    root, dot, ext = base.rpartition(".")
    if not dot:
        return f"{base}.{algorithm}"
    return f"{root}.{algorithm}.{ext}"


def _run_progress(shard: RunSpec, status: str) -> None:
    """Shard progress for ``run``/sweep paths, mirroring the serial banner."""
    if status == "running":
        print(f"running {shard.label} under {shard.policy} ...", file=sys.stderr)
    elif status == "cached":
        print(f"running {shard.label} under {shard.policy} ... (cached)", file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    if (args.workload is None) == (args.app is None):
        print("error: pass exactly one of a workload name or --app", file=sys.stderr)
        return 2
    spec = _build_spec(args.workload, args.burst, args.seed, app=args.app)
    summaries = {}
    cost_reports = {}
    event_logs = {}
    wants_metrics = bool(args.metrics_out or args.openmetrics_out)
    wants_sampling = args.sampling != "full"
    # A non-default engine backend rides the serial in-process path: the
    # sweep executor's shard cache is keyed on results, which backends never
    # change, so fanning out non-default engines would only launder cache
    # entries produced by a different code path.  Sampling policies are the
    # same kind of observation-only knob and need the live controller.
    # Non-default routing rides it for the same reason (a front-LB knob the
    # sweep codec treats as identity, so it must be wired in-process).
    needs_simulation = (
        args.costs or args.events > 0 or args.trace_out or wants_metrics
        or args.engine != "object" or wants_sampling
        or args.routing != DEFAULT_ROUTING
    )
    multiple = len(args.algorithms) > 1
    if needs_simulation:
        # Observation plumbing (traces, cost ledgers, live registries)
        # needs the Simulation object in-process, so this path stays
        # serial; the plain comparison path below fans out.
        for algorithm in args.algorithms:
            print(f"running {spec.label} under {algorithm} ...", file=sys.stderr)
            from repro.experiments.runner import Simulation
            from repro.obs import NULL_TRACER, DecisionTracer, write_trace_jsonl

            tracer = DecisionTracer() if args.trace_out else NULL_TRACER
            registry = slo = None
            if wants_metrics or wants_sampling:
                # Sampling decides what the live registry collects, so it
                # needs a recording registry even without export flags.
                from repro.telemetry import MetricRegistry

                registry = MetricRegistry()
            if wants_metrics:
                from repro.metrics import Sla
                from repro.telemetry import SloTracker

                slo = SloTracker(Sla(response_time_target=args.sla_target))
            simulation = Simulation.build(
                config=spec.config,
                specs=list(spec.specs),
                loads=list(spec.loads),
                policy=algorithm,
                workload_label=spec.label,
                app=spec.app,
                routing=args.routing,
                tracer=tracer,
                backend=args.engine,
                **({"telemetry": registry, "slo": slo} if registry is not None else {}),
                **({"sampling": args.sampling} if wants_sampling else {}),
            )
            summaries[algorithm] = simulation.run(spec.duration)
            if wants_sampling:
                controller = simulation.telemetry.sampling
                budget = controller.budget
                print(
                    f"sampling {args.sampling}: observed {budget.nodes_observed} "
                    f"node passes, skipped {budget.nodes_skipped}, simulated "
                    f"collection cost {budget.collection_cost_seconds:.3f}s "
                    f"(staleness bound {controller.max_staleness():.0f}s)",
                    file=sys.stderr,
                )
            if args.trace_out:
                path = _trace_path(args.trace_out, algorithm, multiple)
                count = write_trace_jsonl(tracer.spans(), path)
                print(f"wrote {count} decision spans to {path}", file=sys.stderr)
            if registry is not None and slo is not None:
                now = simulation.engine.clock.now
                if args.metrics_out:
                    from repro.telemetry import write_snapshot_jsonl

                    path = _trace_path(args.metrics_out, algorithm, multiple)
                    count = write_snapshot_jsonl(registry, path, now=now, alerts=slo.alerts())
                    print(f"wrote {count} metric snapshot lines to {path}", file=sys.stderr)
                if args.openmetrics_out:
                    from repro.telemetry import write_openmetrics

                    path = _trace_path(args.openmetrics_out, algorithm, multiple)
                    count = write_openmetrics(registry, path)
                    print(f"wrote {count} OpenMetrics samples to {path}", file=sys.stderr)
                fired = [a for a in slo.alerts() if a.state == "firing"]
                if fired:
                    print(
                        f"SLO: {len(fired)} burn-rate alert(s) fired "
                        f"({', '.join(sorted({f'{a.service}/{a.window}' for a in fired}))})",
                        file=sys.stderr,
                    )
            if args.costs:
                from repro.metrics import Sla
                from repro.metrics.costs import evaluate_costs

                sla = Sla(response_time_target=args.sla_target)
                cost_reports[algorithm] = evaluate_costs(simulation.collector, sla)
            if args.events > 0:
                event_logs[algorithm] = simulation.collector.events
    else:
        sweep = spec.to_sweep(tuple(args.algorithms), seed_mode=args.seed_mode)
        result = sweep.run(
            parallel=args.jobs, cache_dir=args.cache_dir, progress=_run_progress
        )
        summaries = dict(zip(args.algorithms, result.summaries))
    # When the requested baseline was not among the runs (e.g. a single
    # non-baseline algorithm), fall back to the first run so the table
    # still renders.
    baseline = args.baseline if args.baseline in summaries else args.algorithms[0]
    report = compare_runs(spec.label, summaries, baseline=baseline)
    print(report.to_table())
    if len(summaries) > 1:
        print()
        for name, speedup in sorted(report.speedups().items()):
            if name != baseline:
                print(f"speedup of {name} over {baseline}: {speedup:.2f}x")
    if cost_reports:
        from repro.experiments.report import format_table
        from repro.metrics.costs import cost_comparison_rows

        print()
        print(f"run cost (SLA target {args.sla_target:.1f}s)")
        print(
            format_table(
                ["algorithm", "kWh", "node-h", "violations", "total", "savings"],
                cost_comparison_rows(cost_reports, baseline=baseline),
            )
        )
    if event_logs:
        from repro.metrics.events import decision_summary, render_event_log

        for name in sorted(event_logs):
            log = event_logs[name]
            print()
            print(f"--- scaling events: {name} (last {args.events}) ---")
            print(render_event_log(log, limit=args.events))
            print("decision mix:", decision_summary(log))
    if args.json:
        import json

        payload = {name: summary.to_dict() for name, summary in summaries.items()}
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if args.timeline:
        from repro.analysis.timeline import allocation_efficiency, render_timeline

        for name in sorted(summaries):
            summary = summaries[name]
            if len(summary.timeline) >= 2:
                print()
                print(f"--- {name} ---")
                print(render_timeline(list(summary.timeline)))
                print(f"allocation efficiency: {allocation_efficiency(summary.timeline):.2f}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Run one workload live, printing a dashboard frame per interval."""
    from repro.experiments.runner import Simulation
    from repro.metrics import Sla
    from repro.telemetry import MetricRegistry, SloTracker, run_top

    spec = _build_spec(args.workload, args.burst, args.seed)
    registry = MetricRegistry()
    slo = SloTracker(Sla(response_time_target=args.sla_target))
    simulation = Simulation.build(
        config=spec.config,
        specs=list(spec.specs),
        loads=list(spec.loads),
        policy=args.algorithm,
        workload_label=spec.label,
        telemetry=registry,
        slo=slo,
        timeline_every=min(5.0, args.interval),
        sampling=args.sampling,
    )
    duration = args.duration if args.duration is not None else spec.duration
    try:
        frames = run_top(
            simulation,
            duration=duration,
            interval=args.interval,
            stream=sys.stdout,
            title=f"{spec.label} / {args.algorithm}",
            clear=args.clear and sys.stdout.isatty(),
            max_nodes=args.nodes,
        )
        print(f"{frames} frame(s), t={simulation.engine.clock.now:.1f}s", file=sys.stderr)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) went away: exit quietly.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
    return 0


def _cmd_section3(args: argparse.Namespace) -> int:
    if args.which in ("cpu", "all"):
        print(scaling_curve_table(cpu_scaling_curve(), title="Figure 2: CPU horizontal scaling"))
        print()
    if args.which in ("memory", "all"):
        print(memory_table(memory_scaling_table(), title="Section III-B: memory scaling"))
        print()
    if args.which in ("network", "all"):
        print(
            scaling_curve_table(
                network_scaling_curve(), title="Figure 3: network horizontal scaling (100 Mbit/s total)"
            )
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = generate_bitbrains_trace(
        n_vms=args.vms, duration=args.duration, interval=args.interval, seed=args.seed
    )
    print(
        trace_series_table(
            list(trace.times()),
            list(trace.aggregate_cpu()),
            list(trace.aggregate_mem()),
            stride=args.stride,
            title=f"Figure 9: synthetic Bitbrains Rnd aggregate ({trace.n_vms} VMs)",
        )
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.timeline import allocation_efficiency, render_timeline
    from repro.metrics.summary import RunSummary

    with open(args.path) as handle:
        payload = json.load(handle)
    summaries = {name: RunSummary.from_dict(data) for name, data in payload.items()}
    workload = next(iter(summaries.values())).workload if summaries else "?"
    baseline = "kubernetes" if "kubernetes" in summaries else next(iter(sorted(summaries)), None)
    if baseline is None:
        print("(empty dump)")
        return 1
    report = compare_runs(workload, summaries, baseline=baseline)
    print(report.to_table())
    if args.timeline:
        for name in sorted(summaries):
            summary = summaries[name]
            if len(summary.timeline) >= 2:
                print()
                print(f"--- {name} ---")
                print(render_timeline(list(summary.timeline)))
                print(f"allocation efficiency: {allocation_efficiency(summary.timeline):.2f}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.errors import ObservabilityError
    from repro.obs import read_trace_jsonl, render_explain

    try:
        spans = read_trace_jsonl(args.path)
    except (OSError, ObservabilityError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        print(
            render_explain(
                spans,
                limit=args.limit,
                service=args.service,
                actions_only=args.actions_only,
            )
        )
    except BrokenPipeError:
        # Reader (head, less) closed the pipe mid-render: not an error.
        sys.stderr.close()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.experiments.runner import Simulation
    from repro.obs import PhaseProfiler

    spec = _build_spec(args.workload, args.burst, args.seed)
    duration = args.duration if args.duration is not None else spec.duration
    profiler = PhaseProfiler()
    print(f"profiling {spec.label} under {args.algorithm} ...", file=sys.stderr)
    simulation = Simulation.build(
        config=spec.config,
        specs=list(spec.specs),
        loads=list(spec.loads),
        policy=args.algorithm,
        workload_label=spec.label,
        profiler=profiler,
    )
    simulation.run(duration)
    print(profiler.render())
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(profiler.to_json())
            handle.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint import main as lint_main

    argv = list(args.paths)
    if args.format != "text":
        argv += ["--format", args.format]
    if args.root is not None:
        argv += ["--root", args.root]
    if args.list_rules:
        argv += ["--list-rules"]
    if args.flow:
        argv += ["--flow"]
    return lint_main(argv)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.devtools.flow.analyze import main as analyze_main

    argv = list(args.paths)
    if args.format != "text":
        argv += ["--format", args.format]
    if args.root is not None:
        argv += ["--root", args.root]
    if args.report is not None:
        argv += ["--report", args.report]
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv += ["--write-baseline"]
    if args.list_rules:
        argv += ["--list-rules"]
    return analyze_main(argv)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.sanitizer.check import run_check

    return run_check(Path(args.out))


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.suite import render_reproduction, reproduce_evaluation

    figures = tuple(args.figures) if args.figures else None
    result = reproduce_evaluation(
        seed=args.seed,
        figures=figures,
        progress=lambda msg: print(f"running {msg} ...", file=sys.stderr),
        jobs=args.jobs,
        cache_dir=args.cache_dir,
    )
    print(render_reproduction(result))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument schema (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="hyscale-repro",
        description="Reproduce the HyScale (ICDCS 2019) experiments on the cluster simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads, bursts, and algorithms").set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="run one evaluation workload under one or more algorithms")
    run.add_argument("workload", nargs="?", choices=sorted(WORKLOADS), default=None)
    run.add_argument(
        "--app",
        choices=registered_apps(),
        default=None,
        help="run a registered application graph instead of a single-service "
        "workload (mutually exclusive with the workload positional; "
        "see docs/app_graphs.md)",
    )
    run.add_argument("--burst", choices=BURSTS, default="low")
    run.add_argument("--algorithms", nargs="+", choices=ALL_POLICY_NAMES, default=list(ALGORITHMS))
    run.add_argument("--baseline", choices=ALL_POLICY_NAMES, default="kubernetes")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--costs",
        action="store_true",
        help="also price each run (energy + occupancy + SLA penalties)",
    )
    run.add_argument(
        "--events",
        type=int,
        default=0,
        metavar="N",
        help="print the last N scaling events of each run (the audit trail)",
    )
    run.add_argument(
        "--timeline",
        action="store_true",
        help="render each run's cluster timeline as text sparklines",
    )
    run.add_argument(
        "--json",
        metavar="PATH",
        help="dump every run's full summary (incl. timeline) as JSON",
    )
    run.add_argument(
        "--sla-target",
        type=float,
        default=8.0,
        help="response-time SLA target in seconds for --costs (default 8.0)",
    )
    run.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="record every scaling decision and write a JSONL trace "
        "(per-algorithm suffix when several algorithms run)",
    )
    run.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="stream telemetry during the run and write the final JSONL "
        "metric snapshot (per-algorithm suffix when several algorithms run)",
    )
    run.add_argument(
        "--openmetrics-out",
        metavar="PATH",
        default=None,
        help="stream telemetry during the run and write the final OpenMetrics "
        "exposition text (per-algorithm suffix when several algorithms run)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the sweep (default 1; results are "
        "byte-identical for any N)",
    )
    run.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed shard cache; completed runs are reused "
        "on the next invocation (resumable sweeps)",
    )
    run.add_argument(
        "--seed-mode",
        choices=SEED_MODES,
        default="shared",
        help="'shared' replays the identical arrival sequence under every "
        "algorithm (the paper's method, default); 'per_shard' derives an "
        "independent stream per (workload, algorithm) shard",
    )
    run.add_argument(
        "--engine",
        choices=registered_backends(),
        default="object",
        help="engine backend: 'object' is the scalar reference engine, "
        "'array' keeps container state in a struct-of-arrays store "
        "(bit-identical results, faster at scale; see docs/engine.md)",
    )
    run.add_argument(
        "--sampling",
        choices=registered_sampling_policies(),
        default="full",
        help="telemetry sampling policy: 'full' collects every node every "
        "interval (default, byte-identical to earlier releases); 'adaptive' "
        "and 'threshold-aware' decay quiet nodes' cadence and charge an "
        "observation-cost budget (observation-only; see docs/telemetry.md)",
    )
    run.add_argument(
        "--routing",
        choices=registered_routings(),
        default=DEFAULT_ROUTING,
        help="front load-balancer routing policy, and the default for "
        "application-graph edges that do not pin their own "
        "(default %(default)s; see docs/app_graphs.md)",
    )
    run.set_defaults(func=_cmd_run)

    top = sub.add_parser(
        "top", help="run one workload with live telemetry and print a top-style dashboard"
    )
    top.add_argument("workload", choices=sorted(WORKLOADS))
    top.add_argument("--burst", choices=BURSTS, default="low")
    top.add_argument("--algorithm", choices=ALL_POLICY_NAMES, default="hybrid")
    top.add_argument("--seed", type=int, default=0)
    top.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds to run (default: the workload's full duration)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=30.0,
        help="simulated seconds between dashboard frames (default 30)",
    )
    top.add_argument(
        "--sla-target",
        type=float,
        default=8.0,
        help="response-time SLA target in seconds for the SLO panel (default 8.0)",
    )
    top.add_argument(
        "--clear",
        action="store_true",
        help="clear the terminal between frames (live-view mode)",
    )
    top.add_argument(
        "--nodes",
        type=int,
        default=None,
        metavar="K",
        help="show only the K busiest nodes (ranked by their binding "
        "resource) with a '+N more' footer; default: every node",
    )
    top.add_argument(
        "--sampling",
        choices=registered_sampling_policies(),
        default="full",
        help="telemetry sampling policy for the live registry "
        "(see docs/telemetry.md)",
    )
    top.set_defaults(func=_cmd_top)

    explain = sub.add_parser(
        "explain", help="render a decision trace written by `run --trace-out`"
    )
    explain.add_argument("path", help="JSONL trace file")
    explain.add_argument("--limit", type=int, default=None, metavar="N",
                         help="only the last N decision spans")
    explain.add_argument("--service", default=None,
                         help="restrict to one microservice")
    explain.add_argument("--actions-only", action="store_true",
                         help="skip ticks that emitted no actions")
    explain.set_defaults(func=_cmd_explain)

    profile = sub.add_parser(
        "profile", help="run one workload with per-phase wall-time attribution"
    )
    profile.add_argument("--workload", choices=sorted(WORKLOADS), default="cpu")
    profile.add_argument("--burst", choices=BURSTS, default="low")
    profile.add_argument("--algorithm", choices=ALL_POLICY_NAMES, default="hybrid")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--duration", type=float, default=None,
                         help="simulated seconds (default: the workload's own duration)")
    profile.add_argument("--json", metavar="PATH", default=None,
                         help="also write the phase report as JSON")
    profile.set_defaults(func=_cmd_profile)

    rep = sub.add_parser(
        "reproduce", help="run the paper's whole evaluation matrix and print every figure"
    )
    rep.add_argument("--seed", type=int, default=0)
    rep.add_argument(
        "--figures",
        nargs="+",
        choices=("fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8b", "fig10"),
        help="restrict to specific figures (default: all)",
    )
    rep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the evaluation matrix (default 1; "
        "results are byte-identical for any N)",
    )
    rep.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-addressed shard cache; an interrupted reproduction "
        "resumes from the completed shards",
    )
    rep.set_defaults(func=_cmd_reproduce)

    s3 = sub.add_parser("section3", help="run the Section III microbenchmarks (Figures 2-3)")
    s3.add_argument("--which", choices=("cpu", "memory", "network", "all"), default="all")
    s3.set_defaults(func=_cmd_section3)

    inspect_cmd = sub.add_parser("inspect", help="re-render a --json dump of earlier runs")
    inspect_cmd.add_argument("path", help="JSON file written by `run --json`")
    inspect_cmd.add_argument("--timeline", action="store_true",
                             help="also render saved timelines")
    inspect_cmd.set_defaults(func=_cmd_inspect)

    lint = sub.add_parser(
        "lint",
        help="run the determinism & invariant linter (rules in docs/dev-tooling.md)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files or directories to lint (default: src tests benchmarks examples)",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--root", default=None, help="repository root for rule scoping")
    lint.add_argument("--list-rules", action="store_true", help="print the rule catalogue")
    lint.add_argument(
        "--flow",
        action="store_true",
        help="also run the interprocedural FlowLint rules (see `analyze`)",
    )
    lint.set_defaults(func=_cmd_lint)

    analyze = sub.add_parser(
        "analyze",
        help="run FlowLint: interprocedural call-graph, hot-path, and "
        "parallel-safety analysis (rules in docs/dev-tooling.md)",
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files or directories to analyze (default: src/repro)",
    )
    analyze.add_argument("--format", choices=("text", "json"), default="text")
    analyze.add_argument("--root", default=None, help="repository root for logical paths")
    analyze.add_argument(
        "--report",
        metavar="FILE",
        default=None,
        help="also write the canonical repro.flow/1 JSON report to FILE",
    )
    analyze.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file (default: <root>/.flowlint-baseline.json when present)",
    )
    analyze.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to accept every current finding",
    )
    analyze.add_argument(
        "--list-rules", action="store_true", help="print the flow rule catalogue"
    )
    analyze.set_defaults(func=_cmd_analyze)

    sanitize = sub.add_parser(
        "sanitize",
        help="run the SimSan runtime-invariant probe (see docs/dev-tooling.md)",
    )
    sanitize.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_sanitizer_report.json",
        help="machine-readable report path (default: %(default)s)",
    )
    sanitize.set_defaults(func=_cmd_sanitize)

    trace = sub.add_parser("trace", help="print the synthetic Bitbrains aggregate (Figure 9)")
    trace.add_argument("--vms", type=int, default=100)
    trace.add_argument("--duration", type=float, default=1200.0)
    trace.add_argument("--interval", type=float, default=30.0)
    trace.add_argument("--stride", type=int, default=1)
    trace.add_argument("--seed", type=int, default=0)
    trace.set_defaults(func=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``hyscale-repro`` console script."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
