"""HyScale reproduction: hybrid and network autoscaling of dockerized
microservices, on a deterministic cluster simulator.

Reproduces Wong, Kwan, Jacobsen & Muthusamy, *HyScale: Hybrid and Network
Scaling of Dockerized Microservices in Cloud Data Centres*, ICDCS 2019.

Quickstart::

    from repro import Simulation, SimulationConfig, HyScaleCpuMem
    from repro.cluster import MicroserviceSpec
    from repro.workloads import CPU_BOUND, LowBurstLoad, ServiceLoad

    spec = MicroserviceSpec(name="api", profile="cpu_bound")
    load = ServiceLoad("api", CPU_BOUND, LowBurstLoad(base=8.0))
    sim = Simulation.build(
        config=SimulationConfig(),
        specs=[spec],
        loads=[load],
        policy=HyScaleCpuMem(),
    )
    summary = sim.run(duration=120.0)
    print(summary.as_row())

See ``examples/`` for full scenarios and ``benchmarks/`` for the scripts
that regenerate every figure in the paper.
"""

from repro.cluster.grants import ResourceGrants
from repro.config import ClusterConfig, OverheadModel, PAPER_CONFIG, SimulationConfig
from repro.core import (
    AddReplica,
    AutoscalingPolicy,
    ClusterView,
    HyScaleCpu,
    HyScaleCpuMem,
    KubernetesHpa,
    NetworkHpa,
    RemoveReplica,
    ScalingAction,
    VerticalScale,
    resolve_policy,
)
from repro.engine_core import ClusterState, register_backend, registered_backends, resolve_backend
from repro.errors import ReproError
from repro.experiments.runner import Simulation, run_experiment  # lint: disable=API002(back-compat re-export of the deprecated shim)
from repro.experiments.spec import RunSpec, SweepSpec
from repro.metrics import (
    MetricsCollector,
    RunSummary,
    ScalingEvent,
    ScalingEventLog,
    Sla,
    TimelinePoint,
    evaluate_sla,
)
from repro.obs import DecisionTracer, NullTracer, PhaseProfiler, Tracer
from repro.parallel import ShardCache, ShardError, SweepExecutor, SweepResult
from repro.sanitizer import (
    NULL_SANITIZER,
    NullSanitizer,
    Sanitizer,
    SanViolation,
    SimSanitizer,
)
from repro.telemetry import (
    NULL_REGISTRY,
    MetricRegistry,
    NullRegistry,
    RunTelemetry,
    SloTracker,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SimulationConfig",
    "ClusterConfig",
    "OverheadModel",
    "PAPER_CONFIG",
    # the paper's algorithms
    "AutoscalingPolicy",
    "KubernetesHpa",
    "NetworkHpa",
    "HyScaleCpu",
    "HyScaleCpuMem",
    "resolve_policy",
    # what policies consume and emit
    "ClusterView",
    "ScalingAction",
    "VerticalScale",
    "AddReplica",
    "RemoveReplica",
    # running experiments
    "Simulation",
    "run_experiment",
    "RunSpec",
    "SweepSpec",
    # engine backends
    "ClusterState",
    "ResourceGrants",
    "resolve_backend",
    "register_backend",
    "registered_backends",
    # parallel sweeps
    "SweepExecutor",
    "SweepResult",
    "ShardCache",
    "ShardError",
    # metrics
    "MetricsCollector",
    "RunSummary",
    "Sla",
    "evaluate_sla",
    "TimelinePoint",
    "ScalingEvent",
    "ScalingEventLog",
    # observability
    "Tracer",
    "NullTracer",
    "DecisionTracer",
    "PhaseProfiler",
    # streaming telemetry
    "MetricRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "RunTelemetry",
    "SloTracker",
    # the simulation sanitizer
    "Sanitizer",
    "NullSanitizer",
    "NULL_SANITIZER",
    "SimSanitizer",
    "SanViolation",
    # errors
    "ReproError",
]
