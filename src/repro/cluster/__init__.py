"""Simulated cluster substrate: nodes, containers, microservices, placement."""

from repro.cluster.cluster import Cluster
from repro.cluster.container import Container, ContainerState
from repro.cluster.fairshare import weighted_fair_share
from repro.cluster.grants import ResourceGrants
from repro.cluster.microservice import Microservice, MicroserviceSpec
from repro.cluster.node import Node
from repro.cluster.placement import (
    BinPackPlacement,
    PlacementStrategy,
    RandomPlacement,
    SpreadPlacement,
)
from repro.cluster.resources import ResourceVector

__all__ = [
    "Cluster",
    "Container",
    "ContainerState",
    "Microservice",
    "MicroserviceSpec",
    "Node",
    "ResourceGrants",
    "ResourceVector",
    "weighted_fair_share",
    "PlacementStrategy",
    "SpreadPlacement",
    "BinPackPlacement",
    "RandomPlacement",
]
