"""Cluster: the registry of nodes and microservices.

The cluster is pure bookkeeping plus the per-step drive loop over nodes; all
*mutations* (starting, resizing, removing containers) go through the
simulated Docker daemons in :mod:`repro.dockersim`, exactly as the paper's
NODE MANAGERs go through the real Docker API.
"""

from __future__ import annotations

import itertools

from repro.cluster.microservice import Microservice, MicroserviceSpec
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.config import ClusterConfig, OverheadModel
from repro.errors import ClusterError
from repro.sim.clock import SimClock
from repro.workloads.requests import Request


class Cluster:
    """Nodes + services, with capacity queries used by placement and HyScale."""

    def __init__(self, overheads: OverheadModel | None = None):
        self.overheads = overheads or OverheadModel()
        self.nodes: dict[str, Node] = {}
        self.services: dict[str, Microservice] = {}
        self._finished: list[Request] = []
        # Per-cluster (i.e. per-run) container-id sequence.  A process-global
        # counter here would leak across runs and break the guarantee that a
        # SimulationConfig fully determines a run (container ids appear in
        # the scaling-event stream).
        self._container_seq = itertools.count(1)

    def next_container_id(self, service: str, replica_index: int) -> str:
        """Allocate the next container id, unique within this cluster."""
        return f"{service}.r{replica_index}.c{next(self._container_seq)}"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: ClusterConfig, overheads: OverheadModel | None = None) -> "Cluster":
        """Build the worker fleet described by ``config`` (LBs are not nodes:
        they are modeled by :mod:`repro.platform.load_balancer`)."""
        config.validate()
        cluster = cls(overheads)
        capacity = ResourceVector(config.node_cpu, config.node_memory, config.node_network)
        for i in range(config.worker_nodes):
            cluster.add_node(
                cluster.make_node(f"node-{i:02d}", capacity, disk_capacity=config.node_disk)
            )
        return cluster

    def make_node(self, name: str, capacity: ResourceVector, *, disk_capacity: float) -> Node:
        """Construct a node for this cluster (factory hook).

        Backend subclasses (:class:`repro.engine_core.ArrayCluster`) override
        this to mint store-backed node views; everything else about fleet
        construction is shared.
        """
        return Node(name, capacity, self.overheads, disk_capacity=disk_capacity)

    def add_node(self, node: Node) -> None:
        """Register a machine (also used by the dynamic-fleet ablation)."""
        if node.name in self.nodes:
            raise ClusterError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node

    def remove_node(self, name: str, now: float) -> list[Request]:
        """Decommission a machine, failing everything running on it."""
        node = self.node(name)
        casualties: list[Request] = []
        for container_id in list(node.containers):
            container = node.containers[container_id]
            node.remove_container(container_id, now)
            service = self.services.get(container.service)
            if service is not None and container_id in service.replicas:
                service.forget(container_id)
        casualties.extend(node.drain_finished())
        del self.nodes[name]
        self._finished.extend(casualties)
        return casualties

    def register_service(self, spec: MicroserviceSpec) -> Microservice:
        """Create the (initially replica-less) service record."""
        if spec.name in self.services:
            raise ClusterError(f"duplicate service name {spec.name!r}")
        service = Microservice(spec)
        self.services[spec.name] = service
        return service

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Node by name, or raise."""
        try:
            return self.nodes[name]
        except KeyError:
            raise ClusterError(f"unknown node {name!r}") from None

    def service(self, name: str) -> Microservice:
        """Service by name, or raise."""
        try:
            return self.services[name]
        except KeyError:
            raise ClusterError(f"unknown service {name!r}") from None

    def node_of(self, container_id: str) -> Node:
        """Node hosting the given container, or raise."""
        for node in self.nodes.values():
            if container_id in node.containers:
                return node
        raise ClusterError(f"container {container_id} not hosted anywhere")

    def sorted_nodes(self) -> list[Node]:
        """Nodes in name order (deterministic iteration)."""
        return [self.nodes[name] for name in sorted(self.nodes)]

    def sorted_services(self) -> list[Microservice]:
        """Services in name order (deterministic iteration)."""
        return [self.services[name] for name in sorted(self.services)]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_capacity(self) -> ResourceVector:
        """Sum of node capacities."""
        return ResourceVector.sum(n.capacity for n in self.nodes.values())

    def total_allocated(self) -> ResourceVector:
        """Sum of node allocations."""
        return ResourceVector.sum(n.allocated() for n in self.nodes.values())

    def total_usage(self) -> ResourceVector:
        """Sum of node usage."""
        return ResourceVector.sum(n.usage() for n in self.nodes.values())

    def nodes_not_hosting(self, service: str) -> list[Node]:
        """Nodes without a replica of ``service`` — HyScale's horizontal
        candidates (Section IV-B1)."""
        return [n for n in self.sorted_nodes() if not n.hosts_service(service)]

    # ------------------------------------------------------------------
    # Engine integration
    # ------------------------------------------------------------------
    def on_step(self, clock: SimClock) -> None:
        """Drive every node one step and collect finished requests."""
        for node in self.sorted_nodes():
            node.step(clock.now, clock.dt)
            self._finished.extend(node.drain_finished())

    def metrics_totals(self) -> tuple[float, float, float, float, float, int, int] | None:
        """Batched timeline aggregates, or ``None`` to use the scalar pass.

        The base cluster has no batched representation, so the metrics
        actor runs its single-object pass; array-backed clusters return the
        same aggregates from store kernels (bit-identical floats).
        """
        return None

    def drain_finished(self) -> list[Request]:
        """Hand over and clear all requests that finished this step.

        Also sweeps the per-node buffers: scaling actions execute *after*
        the nodes' compute phase within a step, so their casualties would
        otherwise sit in node buffers until the next step — and be lost
        entirely on the final step of a run.
        """
        for node in self.sorted_nodes():
            self._finished.extend(node.drain_finished())
        finished, self._finished = self._finished, []
        return finished

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cluster(nodes={len(self.nodes)}, services={len(self.services)})"
