"""Per-node disk device model (the paper's declared-but-unimplemented axis).

Section VI: "Additional computing resource types, such as disk I/O, are
also supported, however, they are not currently implemented and will be
part of future works."  This module implements that axis for our platform:

* each node owns one :class:`DiskDevice` sized like the paper's testbed
  hardware (3 Gbit/s SAS-1 links in front of spinning disks — we model the
  *medium*: ~150 MB/s sequential throughput);
* containers' disk phases share the device fairly, with a seek-thrash
  penalty when many streams interleave (spindles hate concurrency — the
  disk analogue of the NIC's tx-queue contention);
* there are no disk *reservations* (neither Docker nor the paper's platform
  reserves disk bandwidth), so unlike CPU/memory this axis is purely
  usage-and-contention — which is exactly why scaling it needs its own
  algorithm (see :class:`repro.core.disk.DiskHpa`).
"""

from __future__ import annotations

from repro.cluster.fairshare import weighted_fair_share
from repro.errors import ClusterError


class DiskDevice:
    """One machine's disk: shared bandwidth with seek-thrash contention.

    Parameters
    ----------
    capacity:
        Sequential throughput in MB/s (default: a 2008-era SAS spindle).
    seek_penalty:
        Fractional aggregate-throughput loss per *additional* concurrent
        stream (interleaved access turns sequential reads into seeks).
    seek_penalty_cap:
        Lower bound on aggregate efficiency, however many streams fight.
    """

    def __init__(
        self,
        capacity: float = 150.0,
        seek_penalty: float = 0.12,
        seek_penalty_cap: float = 0.35,
    ):
        if capacity <= 0:
            raise ClusterError(f"disk capacity must be positive, got {capacity}")
        if not 0 <= seek_penalty < 1:
            raise ClusterError("seek_penalty must be in [0, 1)")
        if not 0 < seek_penalty_cap <= 1:
            raise ClusterError("seek_penalty_cap must be in (0, 1]")
        self.capacity = float(capacity)
        self.seek_penalty = float(seek_penalty)
        self.seek_penalty_cap = float(seek_penalty_cap)
        #: MB/s actually served per container last transfer (diagnostics).
        self.last_throughput: dict[str, float] = {}

    def efficiency(self, streams: int) -> float:
        """Aggregate throughput multiplier for ``streams`` concurrent users."""
        if streams <= 1:
            return 1.0
        return max(self.seek_penalty_cap, 1.0 - self.seek_penalty * (streams - 1))

    def transfer(self, offered: dict[str, float]) -> dict[str, float]:
        """Serve per-container offered loads (MB/s); returns grants (MB/s).

        Equal-weight max-min fair sharing of the (contention-degraded)
        device throughput.  Total grants never exceed effective capacity;
        the allocation is work-conserving.
        """
        active = {cid: load for cid, load in offered.items() if load > 0}
        for cid, load in offered.items():
            if load < 0:
                raise ClusterError(f"offered disk load for {cid!r} must be >= 0")
        if not active:
            self.last_throughput = {cid: 0.0 for cid in offered}
            return dict(self.last_throughput)

        effective = self.capacity * self.efficiency(len(active))
        ids = sorted(active)
        grants = weighted_fair_share(
            effective,
            [active[cid] for cid in ids],
            [1.0] * len(ids),
        )
        result = {cid: 0.0 for cid in offered}
        for cid, grant in zip(ids, grants):
            result[cid] = grant
        self.last_throughput = dict(result)
        return result
