"""Three-axis resource vectors (CPU cores, memory MiB, network Mbit/s).

The paper frames hybrid scaling as a multidimensional bin-packing problem
over exactly these axes (Section I).  :class:`ResourceVector` is the shared
currency: node capacities, container requests, usage samples, and
availability reports are all instances of it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator

#: Axis names, in canonical order.
AXES = ("cpu", "memory", "network")


@dataclass(frozen=True)
class ResourceVector:
    """An immutable (cpu, memory, network) triple with vector arithmetic.

    Units are cores, MiB, and Mbit/s respectively (see :mod:`repro.units`).
    Arithmetic is element-wise; comparisons of interest are the *dominance*
    relations used by placement (``fits_within``) rather than a total order.
    """

    cpu: float = 0.0
    memory: float = 0.0
    network: float = 0.0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero(cls) -> "ResourceVector":
        """The additive identity."""
        return cls(0.0, 0.0, 0.0)

    @classmethod
    def sum(cls, vectors: Iterable["ResourceVector"]) -> "ResourceVector":
        """Element-wise sum of an iterable of vectors."""
        cpu = memory = network = 0.0
        for v in vectors:
            cpu += v.cpu
            memory += v.memory
            network += v.network
        return cls(cpu, memory, network)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.cpu + other.cpu, self.memory + other.memory, self.network + other.network)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self.cpu - other.cpu, self.memory - other.memory, self.network - other.network)

    def __mul__(self, factor: float) -> "ResourceVector":
        return ResourceVector(self.cpu * factor, self.memory * factor, self.network * factor)

    __rmul__ = __mul__

    def __neg__(self) -> "ResourceVector":
        return self * -1.0

    def __iter__(self) -> Iterator[float]:
        yield self.cpu
        yield self.memory
        yield self.network

    # ------------------------------------------------------------------
    # Element-wise combinators
    # ------------------------------------------------------------------
    def clamp_floor(self, floor: float = 0.0) -> "ResourceVector":
        """Clamp every axis to at least ``floor`` (default: drop negatives)."""
        return ResourceVector(max(self.cpu, floor), max(self.memory, floor), max(self.network, floor))

    def elementwise_min(self, other: "ResourceVector") -> "ResourceVector":
        """Element-wise minimum."""
        return ResourceVector(min(self.cpu, other.cpu), min(self.memory, other.memory), min(self.network, other.network))

    def elementwise_max(self, other: "ResourceVector") -> "ResourceVector":
        """Element-wise maximum."""
        return ResourceVector(max(self.cpu, other.cpu), max(self.memory, other.memory), max(self.network, other.network))

    def with_axis(self, axis: str, value: float) -> "ResourceVector":
        """Return a copy with one named axis replaced."""
        if axis not in AXES:
            raise ValueError(f"unknown axis {axis!r}; expected one of {AXES}")
        return replace(self, **{axis: value})

    def axis(self, axis: str) -> float:
        """Read one named axis."""
        if axis not in AXES:
            raise ValueError(f"unknown axis {axis!r}; expected one of {AXES}")
        return getattr(self, axis)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def fits_within(self, capacity: "ResourceVector", tolerance: float = 1e-9) -> bool:
        """True if this vector fits inside ``capacity`` on every axis."""
        return (
            self.cpu <= capacity.cpu + tolerance
            and self.memory <= capacity.memory + tolerance
            and self.network <= capacity.network + tolerance
        )

    def is_nonnegative(self, tolerance: float = 1e-9) -> bool:
        """True if every axis is >= 0 (within tolerance)."""
        return self.cpu >= -tolerance and self.memory >= -tolerance and self.network >= -tolerance

    def is_zero(self, tolerance: float = 1e-9) -> bool:
        """True if every axis is 0 (within tolerance)."""
        return abs(self.cpu) <= tolerance and abs(self.memory) <= tolerance and abs(self.network) <= tolerance

    def utilization_of(self, capacity: "ResourceVector") -> "ResourceVector":
        """Element-wise ratio self/capacity (axes with zero capacity give 0)."""
        return ResourceVector(
            self.cpu / capacity.cpu if capacity.cpu > 0 else 0.0,
            self.memory / capacity.memory if capacity.memory > 0 else 0.0,
            self.network / capacity.network if capacity.network > 0 else 0.0,
        )

    def __repr__(self) -> str:
        return f"ResourceVector(cpu={self.cpu:.3f}, memory={self.memory:.1f}, network={self.network:.1f})"
