"""Frozen per-step resource grants handed to :meth:`Container.advance`.

The node's schedulers (fair-share CPU, disk device, NIC) each award one
resource per step.  Historically they called three separate container
methods (``advance_compute`` / ``advance_disk`` / ``advance_network``);
the unified API bundles the award into one immutable value object so a
scheduler — object-backed or array-backed — expresses "what this container
was granted" in a single vocabulary.

A field left at ``None`` means "this resource was not scheduled this
call": :meth:`Container.advance` only touches the phases whose grants are
present, which keeps the three scheduler passes independent exactly as the
legacy methods were.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ResourceGrants:
    """One step's resource awards for a single container.

    Attributes
    ----------
    cpu:
        Cores awarded by the node's weighted fair-share (``None`` = the CPU
        scheduler did not run for this container this call).
    contention:
        Co-location contention factor applied to the CPU grant (Section
        III-A's measured penalty); meaningful only when ``cpu`` is set.
    disk:
        Disk bandwidth awarded in MB/s (``None`` = disk not scheduled).
    net:
        Egress throughput awarded in Mbit/s (``None`` = NIC not scheduled).
    """

    cpu: float | None = None
    contention: float = 1.0
    disk: float | None = None
    net: float | None = None
