"""Weighted max-min fair sharing — the Docker CPU-shares model.

Docker CPU shares are *relative weights under contention* and fully
work-conserving: a container may use more than its proportional slice while
others are idle, and never less than its slice while it has demand
(Section III-A of the paper builds its vertical-scaling experiments on
exactly this behaviour).

The classic algorithm is progressive filling: repeatedly grant every
unsatisfied claimant capacity in proportion to its weight; claimants whose
demand is met drop out and their leftover is redistributed.
"""

from __future__ import annotations

from repro.errors import SimulationError


def weighted_fair_share(
    capacity: float,
    demands: list[float],
    weights: list[float],
    *,
    max_rounds: int = 64,
) -> list[float]:
    """Allocate ``capacity`` among claimants by weighted max-min fairness.

    Parameters
    ----------
    capacity:
        Total divisible capacity (e.g. node CPU cores).
    demands:
        Per-claimant maximum useful allocation; allocations never exceed a
        claimant's demand.
    weights:
        Per-claimant positive relative weights (e.g. Docker CPU shares).
        Claimants with zero demand may carry any weight.

    Returns
    -------
    list[float]
        Allocations, same order as inputs.  Invariants (property-tested):
        ``0 <= alloc[i] <= demands[i]``; ``sum(alloc) <= capacity``; and the
        allocation is work-conserving — if total demand >= capacity then
        ``sum(alloc) == capacity`` (up to float tolerance).
    """
    if len(demands) != len(weights):
        raise SimulationError("demands and weights must have equal length")
    if capacity < 0:
        raise SimulationError(f"capacity must be non-negative, got {capacity}")
    for i, (d, w) in enumerate(zip(demands, weights)):
        if d < 0:
            raise SimulationError(f"demand[{i}] must be non-negative, got {d}")
        if w < 0:
            raise SimulationError(f"weight[{i}] must be non-negative, got {w}")

    n = len(demands)
    allocations = [0.0] * n
    if n == 0 or capacity == 0:
        return allocations

    remaining = capacity
    active = [i for i in range(n) if demands[i] > 0]
    # Claimants with demand but zero weight receive capacity only after all
    # weighted claimants are satisfied (Docker gives minimum shares of 2, so
    # this is a corner case, but the algebra should still be total).
    zero_weight = [i for i in active if weights[i] == 0]
    active = [i for i in active if weights[i] > 0]

    for _ in range(max_rounds):
        if not active or remaining <= 1e-12:
            break
        total_weight = sum(weights[i] for i in active)
        satisfied: list[int] = []
        granted = 0.0
        for i in active:
            # Divide the weight ratio first: multiplying a subnormal weight
            # by the capacity before dividing loses precision and can
            # overshoot the proportional slice.
            slice_ = remaining * (weights[i] / total_weight)
            need = demands[i] - allocations[i]
            if slice_ >= need - 1e-12:
                grant = min(need, remaining - granted)
                allocations[i] += grant
                granted += grant
                satisfied.append(i)
        if not satisfied:
            # Nobody saturates: hand out the proportional slices and finish.
            for i in active:
                allocations[i] += remaining * (weights[i] / total_weight)
            remaining = 0.0
            break
        remaining -= granted
        active = [i for i in active if i not in satisfied]

    # Leftover capacity goes to zero-weight claimants, split evenly subject
    # to their demands (progressive filling with unit weights).
    if zero_weight and remaining > 1e-12:
        allocations_zw = weighted_fair_share(
            remaining,
            [demands[i] for i in zero_weight],
            [1.0] * len(zero_weight),
            max_rounds=max_rounds,
        )
        for i, alloc in zip(zero_weight, allocations_zw):
            allocations[i] = alloc

    return allocations
