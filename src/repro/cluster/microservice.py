"""Microservice specifications and replica sets.

A microservice is "an individual entity and not part of a group" (Section
V-A): one spec, N containerized replicas spread over the cluster.  The spec
carries the knobs every autoscaling algorithm in the paper consumes — the
initial per-replica allocation, the min/max replica bounds, and the target
utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.container import Container
from repro.cluster.resources import ResourceVector
from repro.errors import ClusterError


@dataclass(frozen=True)
class MicroserviceSpec:
    """Static description of one microservice deployment."""

    name: str
    #: Initial CPU request per replica, in cores.
    cpu_request: float = 0.5
    #: Memory limit per replica, MiB.  Also the "baseline memory
    #: requirement" a node must advertise before HyScale will spawn a new
    #: replica there (Section IV-B1).
    mem_limit: float = 512.0
    #: Guaranteed egress rate per replica, Mbit/s.
    net_rate: float = 50.0
    #: Reference disk bandwidth per replica, MB/s.  Purely a scaling target
    #: for the disk autoscaler extension — disk has no reservations.
    disk_quota: float = 50.0
    #: Replica bounds enforced by every algorithm (user-specified inputs to
    #: the Kubernetes autoscaler, Section IV-A1).
    min_replicas: int = 1
    max_replicas: int = 16
    #: Target utilization as a 0..1 fraction (the paper's ``Target_m``).
    target_utilization: float = 0.5
    #: Request-processing concurrency per replica (the application's thread
    #: pool / connection backlog).  Requests beyond this queue inside the
    #: container without consuming memory.
    max_concurrency: int = 16
    #: Stateful services must keep replicas consistent (Section IV-B:
    #: "horizontally scaling microservices that need to preserve state is
    #: non-trivial as it introduces the need for a consistency model").
    #: When True, every request pays a per-extra-replica synchronization
    #: overhead and new replicas must first transfer the state.
    stateful: bool = False
    #: Resident state to transfer when a stateful replica is created, MB.
    state_size_mb: float = 256.0
    #: Name of the workload profile driving this service's requests
    #: (resolved by :mod:`repro.workloads.profiles`); informational here.
    profile: str = "cpu_bound"

    def __post_init__(self) -> None:
        if not self.name:
            raise ClusterError("microservice name must be non-empty")
        if self.cpu_request <= 0 or self.mem_limit <= 0 or self.net_rate < 0:
            raise ClusterError(f"{self.name}: per-replica allocations must be positive")
        if self.min_replicas < 1:
            raise ClusterError(f"{self.name}: min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ClusterError(f"{self.name}: max_replicas must be >= min_replicas")
        if not 0 < self.target_utilization <= 1:
            raise ClusterError(f"{self.name}: target_utilization must be in (0, 1]")
        if self.max_concurrency < 1:
            raise ClusterError(f"{self.name}: max_concurrency must be >= 1")
        if self.disk_quota <= 0:
            raise ClusterError(f"{self.name}: disk_quota must be positive")
        if self.state_size_mb < 0:
            raise ClusterError(f"{self.name}: state_size_mb must be >= 0")

    def initial_allocation(self) -> ResourceVector:
        """Per-replica allocation vector at deployment time."""
        return ResourceVector(self.cpu_request, self.mem_limit, self.net_rate)


class Microservice:
    """A spec plus its live replica set."""

    def __init__(self, spec: MicroserviceSpec):
        self.spec = spec
        self.replicas: dict[str, Container] = {}
        self._next_replica_index = 0

    @property
    def name(self) -> str:
        """Service name (delegates to the spec)."""
        return self.spec.name

    def next_replica_index(self) -> int:
        """Monotonic index for naming the next replica."""
        index = self._next_replica_index
        self._next_replica_index += 1
        return index

    # ------------------------------------------------------------------
    # Replica registry
    # ------------------------------------------------------------------
    def track(self, container: Container) -> None:
        """Register a newly created replica."""
        if container.service != self.name:
            raise ClusterError(
                f"container {container.container_id} belongs to {container.service!r}, "
                f"not {self.name!r}"
            )
        if container.container_id in self.replicas:
            raise ClusterError(f"replica {container.container_id} already tracked")
        self.replicas[container.container_id] = container

    def forget(self, container_id: str) -> Container:
        """Deregister a replica (after removal or OOM kill)."""
        try:
            return self.replicas.pop(container_id)
        except KeyError:
            raise ClusterError(f"{self.name}: unknown replica {container_id}") from None

    def active_replicas(self) -> list[Container]:
        """Replicas occupying resources (PENDING or RUNNING), id-ordered."""
        return [c for _, c in sorted(self.replicas.items()) if c.is_active]

    def serving_replicas(self) -> list[Container]:
        """Replicas able to take traffic, id-ordered."""
        return [c for _, c in sorted(self.replicas.items()) if c.is_serving]

    @property
    def replica_count(self) -> int:
        """Number of active replicas (the autoscalers' ``current`` count)."""
        return len(self.active_replicas())

    # ------------------------------------------------------------------
    # Aggregates the algorithms consume
    # ------------------------------------------------------------------
    def total_requested(self) -> ResourceVector:
        """Sum of active replicas' allocations."""
        return ResourceVector.sum(
            ResourceVector(c.cpu_request, c.mem_limit, c.net_rate) for c in self.active_replicas()
        )

    def total_usage(self) -> ResourceVector:
        """Sum of active replicas' last-step measured usage."""
        return ResourceVector.sum(
            ResourceVector(c.cpu_usage, c.mem_usage, c.net_usage) for c in self.active_replicas()
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Microservice({self.name!r}, replicas={self.replica_count})"
