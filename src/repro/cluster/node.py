"""Simulated cluster machine.

Each node mirrors one box of the paper's testbed (4 cores, 8 GiB, one NIC).
Per simulation step a node:

1. progresses container boots,
2. runs the Docker CPU scheduler — weighted max-min fair share over CPU
   shares, with the Section III-A co-location contention penalty,
3. drives the NIC — HTB shaping plus tx-queue contention,
4. settles requests (completions, timeouts), and
5. OOM-kills containers whose working set exceeds the kill threshold.

The node is deliberately policy-free: it executes allocations, it never
decides them (that is the MONITOR's job, Section V-B/C).
"""

from __future__ import annotations

from repro.cluster.container import Container
from repro.cluster.disk import DiskDevice
from repro.cluster.grants import ResourceGrants
from repro.cluster.fairshare import weighted_fair_share
from repro.cluster.resources import ResourceVector
from repro.config import OverheadModel
from repro.errors import CapacityError, ClusterError
from repro.netsim.interface import NetworkInterface
from repro.workloads.requests import Request


class Node:
    """One machine: capacity, hosted containers, local schedulers."""

    def __init__(
        self,
        name: str,
        capacity: ResourceVector,
        overheads: OverheadModel | None = None,
        disk_capacity: float = 150.0,
    ):
        if not capacity.is_nonnegative() or capacity.cpu <= 0 or capacity.memory <= 0:
            raise ClusterError(f"node {name!r}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.overheads = overheads or OverheadModel()
        self.nic = NetworkInterface(capacity.network, self.overheads)
        self.disk = DiskDevice(disk_capacity)
        self.containers: dict[str, Container] = {}
        self._finished: list[Request] = []
        #: Containers OOM-killed during the last step (for daemon cleanup).
        self.last_oom_kills: list[Container] = []

    # ------------------------------------------------------------------
    # Hosting
    # ------------------------------------------------------------------
    def active_containers(self) -> list[Container]:
        """Containers occupying resources (PENDING or RUNNING), id-ordered."""
        return [c for _, c in sorted(self.containers.items()) if c.is_active]

    def serving_containers(self) -> list[Container]:
        """RUNNING containers, id-ordered."""
        return [c for _, c in sorted(self.containers.items()) if c.is_serving]

    def allocated(self) -> ResourceVector:
        """Sum of active containers' requested resources."""
        return ResourceVector.sum(
            ResourceVector(c.cpu_request, c.mem_limit, c.net_rate) for c in self.active_containers()
        )

    def available(self) -> ResourceVector:
        """Unreserved capacity (never negative: clamped at zero)."""
        return (self.capacity - self.allocated()).clamp_floor(0.0)

    def usage(self) -> ResourceVector:
        """Measured usage across active containers (last step)."""
        return ResourceVector.sum(
            ResourceVector(c.cpu_usage, c.mem_usage, c.net_usage) for c in self.active_containers()
        )

    def hosts_service(self, service: str) -> bool:
        """True if any active container on this node belongs to ``service``."""
        return any(c.service == service for c in self.active_containers())

    def can_fit(self, request: ResourceVector) -> bool:
        """True if the requested allocation fits in current availability."""
        return request.fits_within(self.available())

    def make_container(
        self,
        service: str,
        replica_index: int,
        *,
        cpu_request: float,
        mem_limit: float,
        net_rate: float,
        created_at: float = 0.0,
        boot_delay: float = 0.0,
        max_concurrency: int = 16,
        disk_quota: float = 50.0,
        container_id: str | None = None,
    ) -> Container:
        """Construct a container for this node (factory hook).

        The daemon routes ``docker run`` through this so array-backed nodes
        can mint :class:`~repro.engine_core.views.ContainerView` instances
        bound to their slot in the state store instead of plain containers.
        """
        return Container(
            service=service,
            replica_index=replica_index,
            cpu_request=cpu_request,
            mem_limit=mem_limit,
            net_rate=net_rate,
            created_at=created_at,
            boot_delay=boot_delay,
            max_concurrency=max_concurrency,
            disk_quota=disk_quota,
            overheads=self.overheads,
            container_id=container_id,
        )

    def maybe_oom_kills(self) -> bool:
        """Cheap pre-check: could this node host an OOM-killed container?

        The base node cannot answer without scanning, so it always says
        yes; array-backed nodes keep a counter and answer in O(1), letting
        the daemon's per-step reap skip the scan on healthy nodes.
        """
        return True

    def stats_buffer(self, horizon: float) -> object | None:
        """Frame-based stats recorder, or ``None`` for per-container windows.

        The node manager asks its node for this once at construction: the
        base node has no batched representation (the NM keeps classic
        :class:`~repro.dockersim.stats.StatsWindow` histories); array-backed
        nodes return a :class:`repro.engine_core.kernels.NodeStatsBuffer`.
        """
        return None

    def add_container(self, container: Container, *, enforce_capacity: bool = True) -> None:
        """Host a container, wiring up its NIC shaping class."""
        if container.container_id in self.containers:
            raise ClusterError(f"container {container.container_id} already on node {self.name}")
        request = ResourceVector(container.cpu_request, container.mem_limit, container.net_rate)
        if enforce_capacity and not self.can_fit(request):
            raise CapacityError(
                f"node {self.name}: {request} does not fit in {self.available()}"
            )
        self.containers[container.container_id] = container
        # HTB guarantee at the container's allocated rate with borrowing up
        # to link capacity: Docker cannot hard-cap network without tc, and
        # the paper's platform leaves container NICs work-conserving (only
        # the Section III microbenchmarks shape hard; they configure their
        # qdiscs explicitly).
        self.nic.attach(container.container_id, rate=container.net_rate)

    def remove_container(self, container_id: str, now: float, *, oom: bool = False) -> Container:
        """Stop and unhost a container; in-flight requests become removal failures."""
        container = self.containers.get(container_id)
        if container is None:
            raise ClusterError(f"container {container_id} not on node {self.name}")
        if container.is_active:
            container.terminate(now, oom=oom)
        self._finished.extend(container.drain_finished())
        if self.nic.is_attached(container_id):
            self.nic.detach(container_id)
        del self.containers[container_id]
        return container

    def detach_container(self, container_id: str) -> Container:
        """Unhost a container *without* terminating it (live migration).

        The container keeps its in-flight requests; the caller re-attaches
        it to another node via :meth:`add_container`.
        """
        container = self.containers.get(container_id)
        if container is None:
            raise ClusterError(f"container {container_id} not on node {self.name}")
        if self.nic.is_attached(container_id):
            self.nic.detach(container_id)
        del self.containers[container_id]
        return container

    def reshape_network(self, container_id: str, rate: float) -> None:
        """Apply a vertical network-rate change down to the NIC."""
        container = self.containers.get(container_id)
        if container is None:
            raise ClusterError(f"container {container_id} not on node {self.name}")
        container.net_rate = float(rate)
        self.nic.reshape(container_id, rate=rate)

    # ------------------------------------------------------------------
    # Per-step machinery
    # ------------------------------------------------------------------
    def step(self, now: float, dt: float) -> None:
        """Advance every hosted container by one step ending at ``now``."""
        self.last_oom_kills = []
        for container in self.active_containers():
            container.tick_boot(dt)

        self._schedule_cpu(dt)
        self._schedule_disk(dt)
        self._schedule_network(dt)

        for container in self.serving_containers():
            container.settle_requests(now)
            if container.over_oom_threshold:
                # The kernel kills the worst offender; requests die as
                # removal failures.  The daemon reaps the carcass.
                container.terminate(now, oom=True)
                self.last_oom_kills.append(container)
            self._finished.extend(container.drain_finished())

    def _schedule_cpu(self, dt: float) -> None:
        """Weighted fair-share CPU with the co-location contention penalty."""
        containers = self.serving_containers()
        if not containers:
            return
        demands = [c.cpu_demand(self.capacity.cpu) for c in containers]
        weights = [float(c.cpu_shares) for c in containers]
        grants = weighted_fair_share(self.capacity.cpu, demands, weights)

        background = self.overheads.container_background_cpu
        busy = sum(1 for d in demands if d > background + 1e-12)
        contention = 1.0
        if busy >= 2:
            contention = min(
                1.0 + self.overheads.colocation_contention * (busy - 1),
                self.overheads.colocation_cap,
            )
        for container, granted in zip(containers, grants):
            container.advance(ResourceGrants(cpu=granted, contention=contention), dt)

    def _schedule_disk(self, dt: float) -> None:
        """Fair-share the disk device over containers with pending I/O."""
        containers = self.serving_containers()
        offered = {c.container_id: c.disk_demand(dt) for c in containers}
        if not any(load > 0 for load in offered.values()):
            for c in containers:
                c.disk_usage = 0.0
            return
        grants = self.disk.transfer(offered)
        for container in containers:
            container.advance(ResourceGrants(disk=grants.get(container.container_id, 0.0)), dt)

    def _schedule_network(self, dt: float) -> None:
        """HTB shaping + tx-queue contention over all serving containers."""
        containers = self.serving_containers()
        offered = {c.container_id: c.net_demand(dt) for c in containers}
        if not any(load > 0 for load in offered.values()):
            for c in containers:
                c.net_usage = 0.0
            return
        throughput = self.nic.transmit(offered)
        for container in containers:
            container.advance(ResourceGrants(net=throughput.get(container.container_id, 0.0)), dt)

    def drain_finished(self) -> list[Request]:
        """Hand over and clear requests that finished on this node."""
        finished, self._finished = self._finished, []
        return finished

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.name}, containers={len(self.containers)}, avail={self.available()})"
