"""Simulated Docker container.

A container is the unit of deployment (each houses exactly one microservice
replica, as in Section V-A of the paper).  It carries:

* **allocations** — CPU request (cores; exposed to the daemon as Docker CPU
  shares), a hard memory limit, and an HTB network rate;
* **runtime state** — the lifecycle state machine and in-flight requests;
* **measured usage** — what ``docker stats`` would report: CPU cores used
  last step, resident memory, and egress throughput.

The *node* owns scheduling (fair-share CPU, NIC transmission); the container
owns distributing whatever it was granted across its in-flight requests
(processor sharing) and its own memory accounting.
"""

from __future__ import annotations

import enum
import itertools
import warnings

from repro.cluster.grants import ResourceGrants
from repro.config import OverheadModel
from repro.errors import ContainerStateError
from repro.units import cores_to_shares
from repro.workloads.requests import FailureReason, Request, RequestState

_container_seq = itertools.count(1)


def _fallback_container_id(service: str, replica_index: int) -> str:
    """Mint a process-global fallback id (ad-hoc containers only)."""
    return f"{service}.r{replica_index}.c{next(_container_seq)}"


class ContainerState(enum.Enum):
    """Container lifecycle, matching the simulated daemon's view."""

    PENDING = "pending"  # created, still booting
    RUNNING = "running"
    STOPPED = "stopped"  # removed gracefully or by scale-in
    OOM_KILLED = "oom_killed"  # killed by the kernel for exceeding memory


#: States in which the container occupies node resources.
ACTIVE_STATES = (ContainerState.PENDING, ContainerState.RUNNING)


class Container:
    """One microservice replica inside a simulated Docker container."""

    def __init__(
        self,
        service: str,
        replica_index: int,
        cpu_request: float,
        mem_limit: float,
        net_rate: float,
        *,
        created_at: float = 0.0,
        boot_delay: float = 0.0,
        max_concurrency: int = 16,
        disk_quota: float = 50.0,
        overheads: OverheadModel | None = None,
        container_id: str | None = None,
    ):
        if cpu_request < 0 or mem_limit <= 0 or net_rate < 0:
            raise ContainerStateError(
                "container allocations must satisfy cpu>=0, memory>0, network>=0"
            )
        if max_concurrency < 1:
            raise ContainerStateError("max_concurrency must be >= 1")
        # Simulation paths pass an id allocated by the run's Cluster so that
        # ids are a pure function of the run (the process-global fallback is
        # only for ad-hoc containers built in tests and microbenchmarks).
        self.container_id = container_id or _fallback_container_id(service, replica_index)
        self.service = service
        self.replica_index = replica_index
        self.created_at = created_at
        self.overheads = overheads or OverheadModel()

        # Allocations (mutated by `docker update`, i.e. vertical scaling).
        self.cpu_request = float(cpu_request)
        self.mem_limit = float(mem_limit)
        self.net_rate = float(net_rate)
        # Reference disk bandwidth (MB/s) for the disk scaler's utilization
        # denominator; not enforced (disk has no reservations).
        self.disk_quota = float(disk_quota)

        # Lifecycle.
        self.state = ContainerState.PENDING if boot_delay > 0 else ContainerState.RUNNING
        self.boot_remaining = float(boot_delay)
        self.stopped_at: float | None = None

        # Runtime.  ``inflight`` is arrival-ordered; only the first
        # ``max_concurrency`` are actively processed (the application's
        # thread pool), the rest wait in the connection backlog.
        self.max_concurrency = int(max_concurrency)
        self.inflight: list[Request] = []
        self.finished: list[Request] = []  # drained by the node each step

        # Measured usage (what `docker stats` reports).
        self.cpu_usage = 0.0  # cores consumed last step
        self.mem_usage = self.overheads.container_base_memory
        self.net_usage = 0.0  # Mbit/s egress last step
        self.disk_usage = 0.0  # MB/s of disk I/O last step

        # Lifetime counters.
        self.total_completed = 0
        self.total_failed = 0

        # CPU left over after compute this step; caps network syscall
        # throughput (see OverheadModel.net_cpu_per_mbit).
        self._net_cpu_headroom = 0.0

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def cpu_shares(self) -> int:
        """Docker CPU shares corresponding to the CPU request."""
        return cores_to_shares(self.cpu_request)

    @property
    def is_active(self) -> bool:
        """True while the container occupies node resources."""
        return self.state in ACTIVE_STATES

    @property
    def is_serving(self) -> bool:
        """True when the container can accept and progress requests."""
        return self.state is ContainerState.RUNNING

    def active_requests(self) -> list[Request]:
        """Requests inside the thread pool (arrival order, bounded)."""
        return self.inflight[: self.max_concurrency]

    def queued_requests(self) -> list[Request]:
        """Requests waiting in the connection backlog."""
        return self.inflight[self.max_concurrency :]

    def cpu_phase_requests(self) -> list[Request]:
        """In-flight requests still in their compute phase (arrival order).

        Progress flows through a *sliding* thread-pool window (see
        :meth:`advance`), so short requests queued behind the first
        ``max_concurrency`` can still complete within one step; the window
        bounds simultaneous residency (memory), not per-step turnover.
        """
        return [r for r in self.inflight if r.in_cpu_phase]

    def disk_phase_requests(self) -> list[Request]:
        """In-flight requests currently doing disk I/O (arrival order)."""
        return [r for r in self.inflight if r.in_disk_phase]

    def net_phase_requests(self) -> list[Request]:
        """In-flight requests currently transmitting (arrival order)."""
        return [r for r in self.inflight if r.in_net_phase]

    def memory_working_set(self) -> float:
        """Resident memory: application base footprint + active requests.

        Backlogged requests sit in the socket queue and cost no memory —
        which is what bounds the working set to
        ``base + max_concurrency * footprint``.
        """
        return self.overheads.container_base_memory + sum(
            r.resident_memory for r in self.active_requests()
        )

    @property
    def is_swapping(self) -> bool:
        """True when the working set exceeds the memory limit."""
        return self.memory_working_set() > self.mem_limit + 1e-9

    @property
    def over_oom_threshold(self) -> bool:
        """True when the working set exceeds ``oom_factor`` x the limit."""
        return self.memory_working_set() > self.overheads.oom_factor * self.mem_limit

    # ------------------------------------------------------------------
    # Scheduling interface used by the node
    # ------------------------------------------------------------------
    def cpu_demand(self, node_capacity: float) -> float:
        """How much CPU this container could usefully consume this step.

        Work-conserving model: with compute work pending the container will
        take any share it is granted (bounded only by node capacity); idle
        containers still burn the application's background CPU.
        """
        if not self.is_serving:
            return 0.0
        background = self.overheads.container_background_cpu
        if self.cpu_phase_requests() or self.net_phase_requests():
            # Pending transmissions also need CPU (networking syscalls).
            return node_capacity
        return min(background, node_capacity)

    def advance(self, grants: ResourceGrants, dt: float) -> None:
        """Spend this step's resource grants on in-flight work.

        The unified scheduling entry point: the node awards CPU, disk, and
        network through one frozen :class:`ResourceGrants` value; only the
        phases whose grants are present are advanced, so each scheduler
        pass stays independent.  Replaces the ``advance_compute`` /
        ``advance_disk`` / ``advance_network`` trio (kept below as
        deprecated shims).
        """
        if grants.cpu is not None:
            self._advance_compute(grants.cpu, dt, grants.contention)
        if grants.disk is not None:
            self._advance_disk(grants.disk, dt)
        if grants.net is not None:
            self._advance_network(grants.net, dt)

    def _advance_compute(self, granted_cores: float, dt: float, contention_factor: float) -> None:
        """Spend a CPU grant on in-flight compute, processor-sharing style.

        Parameters
        ----------
        granted_cores:
            Cores awarded by the node's weighted fair-share for this step.
        dt:
            Step width in seconds.
        contention_factor:
            ``1 + colocation_contention`` when other containers on the node
            also demanded CPU (Section III-A's measured 17 % penalty);
            1.0 otherwise.
        """
        if granted_cores < 0 or dt <= 0 or contention_factor < 1.0:
            raise ContainerStateError("invalid compute grant")
        background = min(self.overheads.container_background_cpu, granted_cores)
        useful = max(0.0, granted_cores - background)
        requests = self.cpu_phase_requests()
        if not requests:
            self.cpu_usage = background if self.is_serving else 0.0
            self._net_cpu_headroom = useful
            return

        efficiency = 1.0 / contention_factor
        if self.is_swapping:
            efficiency *= self.overheads.swap_slowdown

        budget = useful * dt * efficiency  # effective core-seconds this step
        consumed = 0.0
        # Processor sharing in epochs over a sliding thread-pool window: the
        # first ``max_concurrency`` pending requests progress at equal rate;
        # when the smallest finishes, the next queued request takes its slot
        # within the same step (no budget is stranded at step boundaries).
        candidates = [r for r in self.inflight if r.in_cpu_phase]
        while candidates and budget > 1e-12:
            window = candidates[: self.max_concurrency]
            smallest = min(r.cpu_remaining for r in window)
            per_request = min(budget / len(window), smallest)
            for request in window:
                request.advance_cpu(per_request)
            spent = per_request * len(window)
            consumed += spent
            budget -= spent
            if per_request < smallest - 1e-15:
                break  # budget exhausted mid-epoch
            candidates = [r for r in candidates if r.cpu_remaining > 1e-12]
        # Measured usage is what was actually burned (back out efficiency so
        # swap stalls still *look* busy to the monitor, as iowait does).
        compute_cores = consumed / (dt * efficiency) if efficiency > 0 else 0.0
        self.cpu_usage = background + compute_cores
        self._net_cpu_headroom = max(0.0, useful - compute_cores)

    def disk_demand(self, dt: float) -> float:
        """Disk I/O demand in MB/s this step (outstanding I/O / dt)."""
        if not self.is_serving:
            return 0.0
        return sum(r.disk_remaining for r in self.disk_phase_requests()) / dt

    def _advance_disk(self, granted_mb_per_s: float, dt: float) -> None:
        """Spend a disk grant (MB/s) on pending I/O, fair-share epochs."""
        if granted_mb_per_s < 0 or dt <= 0:
            raise ContainerStateError("invalid disk grant")
        candidates = self.disk_phase_requests()
        if not candidates:
            self.disk_usage = 0.0
            return
        budget = granted_mb_per_s * dt  # MB served this step
        served = 0.0
        while candidates and budget > 1e-12:
            window = candidates[: self.max_concurrency]
            smallest = min(r.disk_remaining for r in window)
            per_request = min(budget / len(window), smallest)
            for request in window:
                request.advance_disk(per_request)
            served += per_request * len(window)
            budget -= per_request * len(window)
            if per_request < smallest - 1e-15:
                break
            candidates = [r for r in candidates if r.disk_remaining > 1e-12]
        self.disk_usage = served / dt

    def net_demand(self, dt: float) -> float:
        """Egress demand in Mbit/s this step.

        Bounded both by the pending payload and by the CPU left over for
        networking syscalls — a compute-starved container cannot saturate
        its shaped rate (the coupling Section VI-A leans on).
        """
        if not self.is_serving:
            return 0.0
        pending = sum(r.net_remaining for r in self.net_phase_requests())
        demand = pending / dt
        coefficient = self.overheads.net_cpu_per_mbit
        if coefficient > 0:
            demand = min(demand, self._net_cpu_headroom / coefficient)
        return demand

    def _advance_network(self, granted_mbps: float, dt: float) -> None:
        """Spend a NIC grant on pending response payloads (fair split)."""
        if granted_mbps < 0 or dt <= 0:
            raise ContainerStateError("invalid network grant")
        requests = self.net_phase_requests()
        if not requests:
            self.net_usage = 0.0
            return
        budget = granted_mbps * dt  # Mbit transmitted this step
        transmitted = 0.0
        # Same epoch-based fair sharing as the CPU path: equal progress over
        # the window; finished transfers free their slot within the step.
        candidates = [r for r in self.inflight if r.in_net_phase]
        while candidates and budget > 1e-12:
            window = candidates[: self.max_concurrency]
            smallest = min(r.net_remaining for r in window)
            per_request = min(budget / len(window), smallest)
            for request in window:
                request.advance_net(per_request)
            transmitted += per_request * len(window)
            budget -= per_request * len(window)
            if per_request < smallest - 1e-15:
                break
            candidates = [r for r in candidates if r.net_remaining > 1e-12]
        self.net_usage = transmitted / dt
        # Networking syscalls burn CPU proportional to bytes pushed; the
        # monitor sees it as CPU usage (it is, to `docker stats`).
        self.cpu_usage += self.net_usage * self.overheads.net_cpu_per_mbit

    # ------------------------------------------------------------------
    # Deprecated per-resource entry points (use ``advance``)
    # ------------------------------------------------------------------
    def advance_compute(self, granted_cores: float, dt: float, contention_factor: float) -> None:
        """Deprecated: call :meth:`advance` with ``ResourceGrants(cpu=...)``."""
        warnings.warn(
            "Container.advance_compute() is deprecated; call "
            "Container.advance(ResourceGrants(cpu=..., contention=...), dt) "
            "(see docs/engine.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.advance(ResourceGrants(cpu=granted_cores, contention=contention_factor), dt)

    def advance_disk(self, granted_mb_per_s: float, dt: float) -> None:
        """Deprecated: call :meth:`advance` with ``ResourceGrants(disk=...)``."""
        warnings.warn(
            "Container.advance_disk() is deprecated; call "
            "Container.advance(ResourceGrants(disk=...), dt) (see docs/engine.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.advance(ResourceGrants(disk=granted_mb_per_s), dt)

    def advance_network(self, granted_mbps: float, dt: float) -> None:
        """Deprecated: call :meth:`advance` with ``ResourceGrants(net=...)``."""
        warnings.warn(
            "Container.advance_network() is deprecated; call "
            "Container.advance(ResourceGrants(net=...), dt) (see docs/engine.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.advance(ResourceGrants(net=granted_mbps), dt)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def tick_boot(self, dt: float) -> None:
        """Progress the boot timer; flips PENDING -> RUNNING when done."""
        if self.state is ContainerState.PENDING:
            self.boot_remaining -= dt
            if self.boot_remaining <= 1e-9:
                self.boot_remaining = 0.0
                self.state = ContainerState.RUNNING

    def freeze(self, duration: float) -> None:
        """Pause the container for a live migration.

        The container stops serving (state back to PENDING) for ``duration``
        seconds — the checkpoint/restore window.  In-flight requests survive
        the move but keep aging toward their deadlines, so long freezes cost
        timeouts: migration is cheap, not free.
        """
        if not self.is_active:
            raise ContainerStateError(f"cannot freeze {self.container_id} in state {self.state}")
        if duration < 0:
            raise ContainerStateError("freeze duration must be non-negative")
        self.state = ContainerState.PENDING
        self.boot_remaining = max(self.boot_remaining, float(duration))

    def accept(self, request: Request, now: float, overhead_factor: float = 1.0) -> None:
        """Take ownership of a routed request."""
        if not self.is_serving:
            raise ContainerStateError(
                f"container {self.container_id} cannot accept requests in state {self.state}"
            )
        request.assign(self.container_id, now, overhead_factor=overhead_factor)
        self.inflight.append(request)

    def settle_requests(self, now: float) -> None:
        """Complete finished requests and fail timed-out ones.

        A request whose local phases are done but whose downstream graph
        calls are still outstanding (``downstream_pending > 0``) stays in
        flight — holding its concurrency slot and memory — until the
        graph router joins the last call.  That hold is the back-pressure
        mechanism: a saturated downstream tier keeps upstream requests
        resident, raising upstream occupancy and response times.
        """
        still_inflight: list[Request] = []
        for request in self.inflight:
            if (
                request.state is RequestState.RUNNING
                and request.cpu_remaining <= 1e-12
                and request.disk_remaining <= 1e-12
                and request.net_remaining <= 1e-12
                and request.downstream_pending == 0
            ):
                if request.downstream_failed:
                    request.fail(now, FailureReason.CONNECTION)
                    self.total_failed += 1
                else:
                    request.complete(now)
                    self.total_completed += 1
                self.finished.append(request)
            elif now >= request.deadline():
                request.fail(now, FailureReason.CONNECTION)
                self.total_failed += 1
                self.finished.append(request)
            else:
                still_inflight.append(request)
        self.inflight = still_inflight
        self.mem_usage = self.memory_working_set()

    def terminate(self, now: float, *, oom: bool = False) -> list[Request]:
        """Stop the container, failing all in-flight requests as removals.

        Returns the failed requests so the caller can hand them to metrics.
        """
        if not self.is_active:
            raise ContainerStateError(f"container {self.container_id} already stopped")
        self.state = ContainerState.OOM_KILLED if oom else ContainerState.STOPPED
        self.stopped_at = now
        casualties = []
        for request in self.inflight:
            request.fail(now, FailureReason.REMOVAL)
            self.total_failed += 1
            casualties.append(request)
            self.finished.append(request)
        self.inflight = []
        self.cpu_usage = 0.0
        self.net_usage = 0.0
        self.disk_usage = 0.0
        self.mem_usage = 0.0
        return casualties

    def drain_finished(self) -> list[Request]:
        """Hand over and clear the finished-request buffer."""
        finished, self.finished = self.finished, []
        return finished

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Container({self.container_id}, state={self.state.value}, "
            f"cpu={self.cpu_request:.2f}, mem={self.mem_limit:.0f}, net={self.net_rate:.0f})"
        )
