"""Replica placement strategies.

The MONITOR decides *that* a replica must be added; placement decides
*where*.  The paper's constraint (Section IV-B1): a new replica goes to a
node "not hosting the same microservice, and advertising sufficient
available resources".  Strategies differ only in how they rank the feasible
nodes:

* :class:`SpreadPlacement` — most free CPU first (Kubernetes'
  least-allocated default; keeps load even),
* :class:`BinPackPlacement` — least free CPU that still fits (packs
  machines densely, the data-centre power-saving goal from Section I),
* :class:`RandomPlacement` — uniform over feasible nodes (baseline).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.sim.rng import RngStreams


class PlacementStrategy(abc.ABC):
    """Chooses a node for a new replica, or ``None`` if nothing fits."""

    def feasible(
        self,
        nodes: list[Node],
        request: ResourceVector,
        *,
        exclude_service: str | None = None,
    ) -> list[Node]:
        """Nodes that fit ``request``; optionally exclude hosts of a service."""
        out = []
        for node in nodes:
            if exclude_service is not None and node.hosts_service(exclude_service):
                continue
            if node.can_fit(request):
                out.append(node)
        return out

    def choose(
        self,
        nodes: list[Node],
        request: ResourceVector,
        *,
        exclude_service: str | None = None,
    ) -> Node | None:
        """Pick the placement target, or ``None`` when no node qualifies."""
        candidates = self.feasible(nodes, request, exclude_service=exclude_service)
        if not candidates:
            return None
        return self.rank(candidates, request)

    @abc.abstractmethod
    def rank(self, candidates: list[Node], request: ResourceVector) -> Node:
        """Select one node from a non-empty feasible set."""


class SpreadPlacement(PlacementStrategy):
    """Prefer the node with the most available CPU (ties: fewest containers,
    then name, for determinism)."""

    def rank(self, candidates: list[Node], request: ResourceVector) -> Node:
        return max(
            candidates,
            key=lambda n: (n.available().cpu, -len(n.containers), _reverse_name_key(n.name)),
        )


class BinPackPlacement(PlacementStrategy):
    """Prefer the fullest node that still fits (best-fit decreasing)."""

    def rank(self, candidates: list[Node], request: ResourceVector) -> Node:
        return min(candidates, key=lambda n: (n.available().cpu, n.name))


class RandomPlacement(PlacementStrategy):
    """Uniform choice over feasible nodes.

    Randomness must be *injected* (DET002): pass either a generator or the
    run's :class:`~repro.sim.rng.RngStreams`, from which the strategy draws
    the ``"cluster/placement"`` stream.  There is deliberately no default —
    a silently self-seeded strategy would detach placement from the run's
    single root seed.
    """

    #: Name of the stream drawn when an :class:`RngStreams` is injected.
    STREAM = "cluster/placement"

    def __init__(self, rng: np.random.Generator | RngStreams):
        self._rng = rng.stream(self.STREAM) if isinstance(rng, RngStreams) else rng

    def rank(self, candidates: list[Node], request: ResourceVector) -> Node:
        ordered = sorted(candidates, key=lambda n: n.name)
        return ordered[int(self._rng.integers(0, len(ordered)))]


def _reverse_name_key(name: str) -> tuple[int, ...]:
    """Key that makes ``max()`` prefer lexicographically *smaller* names."""
    return tuple(-ord(ch) for ch in name)
