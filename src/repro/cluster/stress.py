"""Stress containers used by the Section III microbenchmarks.

The paper isolates scaling effects by co-locating the measured microservice
with *progrium stress* (a CPU hog) or a custom container that "attempts to
hog all available CPU and network resources" (Section III-C).  These
subclasses reproduce that role: they never serve requests, they simply
present unbounded demand to the node's schedulers.
"""

from __future__ import annotations

from repro.cluster.container import Container
from repro.config import OverheadModel


class CpuStressContainer(Container):
    """progrium/stress: consumes every CPU cycle its shares entitle it to."""

    def __init__(
        self,
        name: str,
        cpu_request: float,
        *,
        mem_limit: float = 256.0,
        overheads: OverheadModel | None = None,
    ):
        super().__init__(
            service=name,
            replica_index=0,
            cpu_request=cpu_request,
            mem_limit=mem_limit,
            net_rate=0.0,
            overheads=overheads,
        )

    def cpu_demand(self, node_capacity: float) -> float:
        """Always saturate: stress spins on every core it can get."""
        return node_capacity if self.is_serving else 0.0

    def _advance_compute(self, granted_cores: float, dt: float, contention_factor: float) -> None:
        """Burn the grant; there are no requests to progress."""
        self.cpu_usage = granted_cores


class NetStressContainer(Container):
    """Network hog: offers ``offered_mbps`` of egress every step."""

    def __init__(
        self,
        name: str,
        net_rate: float,
        offered_mbps: float,
        *,
        cpu_request: float = 0.1,
        mem_limit: float = 256.0,
        overheads: OverheadModel | None = None,
    ):
        super().__init__(
            service=name,
            replica_index=0,
            cpu_request=cpu_request,
            mem_limit=mem_limit,
            net_rate=net_rate,
            overheads=overheads,
        )
        self.offered_mbps = float(offered_mbps)

    def net_demand(self, dt: float) -> float:
        """Constant offered load regardless of grants (an iperf -u flood)."""
        return self.offered_mbps if self.is_serving else 0.0

    def _advance_network(self, granted_mbps: float, dt: float) -> None:
        """Track throughput; the flood itself never completes."""
        self.net_usage = granted_mbps
