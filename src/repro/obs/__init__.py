"""Decision-trace observability and phase profiling.

The paper's MONITOR is an arbiter whose scaling decisions *are* the
contribution (Section V); this package makes those decisions auditable and
the simulator's wall-time measurable:

* :mod:`repro.obs.tracer` — the :class:`Tracer` protocol, the zero-overhead
  :class:`NullTracer` default, and the recording :class:`DecisionTracer`.
* :mod:`repro.obs.spans` — the plain-data span records one tick produces.
* :mod:`repro.obs.export` — deterministic JSONL persistence.
* :mod:`repro.obs.explain` — the operator-facing "why did it scale?" view.
* :mod:`repro.obs.profiler` — per-engine-phase wall-time accumulation.

Wiring: pass ``tracer=DecisionTracer()`` and/or ``profiler=PhaseProfiler()``
to :meth:`repro.Simulation.build` (or use the CLI's ``run --trace-out`` /
``explain`` / ``profile`` verbs).  See ``docs/observability.md``.
"""

from repro.obs.explain import render_explain, render_span
from repro.obs.export import (
    TRACE_SCHEMA,
    parse_trace_line,
    read_trace_jsonl,
    span_to_json_line,
    spans_to_jsonl,
    write_trace_jsonl,
)
from repro.obs.profiler import PhaseProfiler
from repro.obs.spans import (
    ActionRecord,
    DecisionSpan,
    LedgerStep,
    MetricSample,
    span_from_dict,
    span_to_dict,
)
from repro.obs.tracer import NULL_TRACER, DecisionTracer, NullTracer, Tracer

__all__ = [
    # the contract
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "DecisionTracer",
    # span records
    "DecisionSpan",
    "MetricSample",
    "LedgerStep",
    "ActionRecord",
    "span_to_dict",
    "span_from_dict",
    # persistence
    "TRACE_SCHEMA",
    "span_to_json_line",
    "spans_to_jsonl",
    "write_trace_jsonl",
    "parse_trace_line",
    "read_trace_jsonl",
    # rendering
    "render_span",
    "render_explain",
    # profiling
    "PhaseProfiler",
]
