"""Human-readable rendering of decision traces.

``hyscale-repro explain trace.jsonl`` answers the operator's question after
any surprising scaling episode: *what did the arbiter see, and why did it
act?*  Each tick renders as a header (time, policy, view shape + digest)
followed by the metric comparisons, ledger planning steps, and emitted
actions — every action annotated with the triggering value and threshold.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.spans import ActionRecord, DecisionSpan, LedgerStep, MetricSample


def _render_metric(sample: MetricSample) -> str:
    return (
        f"  metric  {sample.metric:<12} svc={sample.service:<18} "
        f"value={sample.value:.3f} threshold={sample.threshold:.3f}  -> {sample.verdict}"
    )


def _render_ledger(step: LedgerStep) -> str:
    amounts = []
    if step.cpu:
        amounts.append(f"cpu={step.cpu:.3f}")
    if step.memory:
        amounts.append(f"mem={step.memory:.0f}MiB")
    if step.network:
        amounts.append(f"net={step.network:.0f}Mbit/s")
    service = f" svc={step.service}" if step.service else ""
    joined = " ".join(amounts) if amounts else "-"
    return f"  ledger  {step.op:<14} node={step.node}{service}  {joined}"


def _render_action(action: ActionRecord) -> str:
    reason = f" [{action.reason}]" if action.reason else ""
    target = f" target={action.target}" if action.target else ""
    trigger = (
        f"  ({action.metric} {action.value:.3f} vs threshold {action.threshold:.3f})"
        if action.metric
        else ""
    )
    detail = f"  {action.detail}" if action.detail else ""
    return f"  action  {action.kind:<15} svc={action.service}{target}{reason}{trigger}{detail}"


def render_span(span: DecisionSpan, *, verbose: bool = True) -> str:
    """One tick as indented text."""
    header = (
        f"tick t={span.now:8.1f}s  policy={span.policy}  "
        f"view={span.services} services/{span.nodes} nodes/{span.replicas} replicas  "
        f"digest={span.digest}"
    )
    lines = [header]
    if verbose:
        lines.extend(_render_metric(m) for m in span.metrics)
        lines.extend(_render_ledger(s) for s in span.ledger)
    lines.extend(_render_action(a) for a in span.actions)
    lines.append(f"  applied {span.applied}/{span.emitted} (failed {span.failed})")
    return "\n".join(lines)


def render_explain(
    spans: Sequence[DecisionSpan],
    *,
    limit: int | None = None,
    service: str | None = None,
    actions_only: bool = False,
) -> str:
    """A whole trace as the operator-facing explanation.

    ``limit`` keeps the last N ticks; ``service`` drops ticks that touched
    neither a metric nor an action of that service; ``actions_only``
    suppresses the per-tick metric and ledger evidence.
    """
    selected = list(spans)
    if service is not None:
        selected = [
            s
            for s in selected
            if any(m.service == service for m in s.metrics)
            or any(a.service == service for a in s.actions)
        ]
    if limit is not None:
        selected = selected[-limit:]
    if not selected:
        return "(no decision spans)"
    body = "\n".join(render_span(span, verbose=not actions_only) for span in selected)
    total_actions = sum(s.emitted for s in selected)
    footer = f"{len(selected)} ticks, {total_actions} actions"
    return f"{body}\n{footer}"
