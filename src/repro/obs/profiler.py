"""Per-phase wall-time profiling of the simulation engine.

ROADMAP's north star ("as fast as the hardware allows") needs evidence
before optimization: which engine phase — ``generator``, ``lb``,
``cluster``, ``node-managers``, ``monitor``, ``metrics`` — actually burns
the wall-clock?  A :class:`PhaseProfiler` handed to
:class:`~repro.sim.engine.Engine` accumulates per-actor wall time and
arbitrary named counters, and renders them as a table or a JSON report
(the ``make profile`` / ``hyscale-repro profile`` artifact).

Determinism note: the profiler is the one component that *may* read the
host clock, because its measurements feed only the profile report — never
simulator state, traces, or metrics.  The time source is injected (and
defaults to ``time.perf_counter``), so tests drive it with a fake counter
and simulation results remain a pure function of the configuration.
"""

from __future__ import annotations

import json
import time
from typing import Callable

from repro.errors import ObservabilityError

#: Default wall-time source.  A *reference*, never called at import time;
#: timings derived from it are reporting-only (see the module docstring).
DEFAULT_TIMER: Callable[[], float] = time.perf_counter


class PhaseProfiler:
    """Accumulates per-phase wall time and named counters for one run."""

    def __init__(self, timer: Callable[[], float] | None = None) -> None:
        #: The wall-time source the engine brackets each phase with.
        self.timer: Callable[[], float] = timer if timer is not None else DEFAULT_TIMER
        #: Completed engine steps.
        self.steps = 0
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}
        self._counters: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording (called by the engine / instrumented actors)
    # ------------------------------------------------------------------
    def observe(self, phase: str, seconds: float) -> None:
        """Add one timed execution of ``phase``."""
        if seconds < 0:
            raise ObservabilityError(f"negative duration for phase {phase!r}: {seconds}")
        self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds
        self._calls[phase] = self._calls.get(phase, 0) + 1

    def count_step(self) -> None:
        """Mark one completed engine step."""
        self.steps += 1

    def increment(self, counter: str, amount: int = 1) -> None:
        """Bump a named counter (e.g. ``"metrics.samples"``)."""
        self._counters[counter] = self._counters.get(counter, 0) + amount

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def phase_names(self) -> tuple[str, ...]:
        """Phases seen so far, in first-observation (= engine phase) order."""
        return tuple(self._seconds)

    def seconds(self, phase: str) -> float:
        """Accumulated wall seconds of one phase (0.0 if never seen)."""
        return self._seconds.get(phase, 0.0)

    def calls(self, phase: str) -> int:
        """Times one phase executed (0 if never seen)."""
        return self._calls.get(phase, 0)

    def counters(self) -> dict[str, int]:
        """Snapshot of all named counters."""
        return dict(self._counters)

    @property
    def total_seconds(self) -> float:
        """Wall seconds across all phases."""
        return sum(self._seconds.values())

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> dict[str, object]:
        """The profile as plain data (the ``BENCH_phase_profile.json`` body)."""
        total = self.total_seconds
        phases: dict[str, dict[str, float | int]] = {}
        for name in self._seconds:
            seconds = self._seconds[name]
            calls = self._calls[name]
            phases[name] = {
                "seconds": seconds,
                "calls": calls,
                "share": seconds / total if total > 0 else 0.0,
                "mean_us": seconds / calls * 1e6 if calls else 0.0,
            }
        return {
            "steps": self.steps,
            "total_seconds": total,
            "phases": phases,
            "counters": dict(self._counters),
        }

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.report(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """The report as an aligned text table."""
        if not self._seconds:
            return "(no phases profiled)"
        total = self.total_seconds
        width = max(len(name) for name in self._seconds)
        lines = [f"{'phase':<{width}}  {'seconds':>9}  {'share':>6}  {'calls':>8}  {'mean':>9}"]
        for name in self._seconds:
            seconds = self._seconds[name]
            calls = self._calls[name]
            share = seconds / total if total > 0 else 0.0
            mean_us = seconds / calls * 1e6 if calls else 0.0
            lines.append(
                f"{name:<{width}}  {seconds:>9.4f}  {share:>5.1%}  {calls:>8d}  {mean_us:>7.1f}us"
            )
        lines.append(f"{'total':<{width}}  {total:>9.4f}  {1.0:>5.1%}  steps={self.steps}")
        if self._counters:
            lines.append("counters: " + ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items())))
        return "\n".join(lines)
