"""Structured records of one autoscaling decision round.

A :class:`DecisionSpan` captures *why* the MONITOR did what it did on one
tick: the view it saw (summarized by a content digest), the per-service
metric comparisons the policy evaluated, the provisional
:class:`~repro.core.policy.NodeLedger` bookkeeping it performed while
planning, and the actions it emitted — each annotated with the triggering
metric value and the threshold it was compared against.

Everything here is plain, JSON-serializable data.  The span types
deliberately do not reference simulator objects (views, actions, clusters),
so traces can be exported, re-read, and diffed without importing the rest
of the library — and so ``repro.obs`` stays a leaf package that the policy
layer can depend on without cycles.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Mapping

from repro.errors import ObservabilityError


@dataclass(frozen=True)
class MetricSample:
    """One policy-side comparison of a service metric against its threshold."""

    service: str
    #: Which signal was compared ("cpu", "memory", "network", "missing-cpu", ...).
    metric: str
    #: The observed value the policy acted on.
    value: float
    #: The threshold (target utilization, watermark, zero-deficit line, ...).
    threshold: float
    #: The policy's conclusion ("acquire", "reclaim", "within-tolerance", ...).
    verdict: str


@dataclass(frozen=True)
class LedgerStep:
    """One provisional mutation of the planning ledger."""

    #: Ledger operation: "take", "release", or "plan-placement".
    op: str
    node: str
    service: str = ""
    cpu: float = 0.0
    memory: float = 0.0
    network: float = 0.0


@dataclass(frozen=True)
class ActionRecord:
    """One emitted scaling action, with the evidence that triggered it."""

    #: Action kind: "add-replica", "remove-replica", "vertical-scale", "migrate-replica".
    kind: str
    service: str
    #: Container id (or target node for placements), when applicable.
    target: str = ""
    #: The policy's reason string ("acquire", "spill", "max-replicas", ...).
    reason: str = ""
    #: The metric whose value triggered the action.
    metric: str = ""
    #: The triggering metric value.
    value: float = 0.0
    #: The threshold the value was compared against.
    threshold: float = 0.0
    #: Free-form human detail ("cpu 0.50->1.25 on worker-03").
    detail: str = ""


@dataclass(frozen=True)
class DecisionSpan:
    """One complete monitor tick: view in, reasoning, actions out."""

    #: Simulated time of the tick.
    now: float
    #: Name of the deciding policy ("hybrid", "kubernetes", ...).
    policy: str
    #: Content digest of the :class:`~repro.core.view.ClusterView` consumed.
    digest: str
    #: View shape: service/node/replica counts at snapshot time.
    services: int
    nodes: int
    replicas: int
    #: Per-service metric comparisons, in evaluation order.
    metrics: tuple[MetricSample, ...] = ()
    #: Ledger planning steps, in execution order.
    ledger: tuple[LedgerStep, ...] = ()
    #: Emitted actions with their triggers, in emission order.
    actions: tuple[ActionRecord, ...] = ()
    #: Actions emitted by the policy this tick.
    emitted: int = 0
    #: Actions the monitor applied successfully / skipped as failed.
    applied: int = 0
    failed: int = 0


def span_to_dict(span: DecisionSpan) -> dict[str, Any]:
    """Flatten one span into plain dict/list/scalar data (JSON-ready)."""
    return asdict(span)


def _build(cls: type, payload: Mapping[str, Any], context: str) -> Any:
    names = {f.name for f in fields(cls)}
    unknown = set(payload) - names
    if unknown:
        raise ObservabilityError(f"{context} has unknown fields: {sorted(unknown)}")
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ObservabilityError(f"malformed {context}: {exc}") from None


def span_from_dict(payload: Mapping[str, Any]) -> DecisionSpan:
    """Rebuild a :class:`DecisionSpan` from :func:`span_to_dict` output."""
    data = dict(payload)
    try:
        metrics = tuple(_build(MetricSample, m, "metric sample") for m in data.pop("metrics", ()))
        ledger = tuple(_build(LedgerStep, s, "ledger step") for s in data.pop("ledger", ()))
        actions = tuple(_build(ActionRecord, a, "action record") for a in data.pop("actions", ()))
    except AttributeError:
        raise ObservabilityError("span payload entries must be mappings") from None
    data["metrics"] = metrics
    data["ledger"] = ledger
    data["actions"] = actions
    result: DecisionSpan = _build(DecisionSpan, data, "decision span")
    return result
