"""Decision-trace persistence: JSONL out, spans back in.

One span per line, keys sorted, compact separators — so a trace file is a
pure function of the spans, and two same-seed runs produce *byte-identical*
files (the determinism contract ``tests/test_determinism_end_to_end.py``
enforces).  Lines are self-contained JSON objects, so traces stream through
``jq``/``grep`` and partial files stay readable up to the cut.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ObservabilityError
from repro.obs.spans import DecisionSpan, span_from_dict, span_to_dict

#: Schema tag embedded in every line; bump when the span shape changes.
TRACE_SCHEMA = "repro.obs/1"


def span_to_json_line(span: DecisionSpan) -> str:
    """One span as its canonical single-line JSON encoding (no newline)."""
    payload = span_to_dict(span)
    payload["schema"] = TRACE_SCHEMA
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spans_to_jsonl(spans: Iterable[DecisionSpan]) -> str:
    """A whole trace as JSONL text (trailing newline included when non-empty)."""
    lines = [span_to_json_line(span) for span in spans]
    return "\n".join(lines) + "\n" if lines else ""


def write_trace_jsonl(spans: Sequence[DecisionSpan], path: str | Path) -> int:
    """Write a trace file; returns the number of spans written."""
    text = spans_to_jsonl(spans)
    Path(path).write_text(text, encoding="utf-8")
    return len(spans)


def parse_trace_line(line: str) -> DecisionSpan:
    """Parse one JSONL line back into a span."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"trace line is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ObservabilityError("trace line must be a JSON object")
    schema = payload.pop("schema", TRACE_SCHEMA)
    if schema != TRACE_SCHEMA:
        raise ObservabilityError(f"unsupported trace schema {schema!r} (want {TRACE_SCHEMA!r})")
    return span_from_dict(payload)


def read_trace_jsonl(path: str | Path) -> tuple[DecisionSpan, ...]:
    """Read a JSONL trace file back into spans."""
    spans: list[DecisionSpan] = []
    for lineno, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            spans.append(parse_trace_line(line))
        except ObservabilityError as exc:
            raise ObservabilityError(f"{path}:{lineno}: {exc}") from None
    return tuple(spans)
