"""The :class:`Tracer` contract and its two implementations.

The MONITOR and every policy emit decision evidence through a tracer:

* :class:`NullTracer` — the default.  Every hook is a constant-time no-op
  and ``enabled`` is ``False``, so instrumented code can skip building
  evidence strings entirely (``if tracer.enabled: ...``).  Runs without
  tracing pay nothing measurable.
* :class:`DecisionTracer` — records one :class:`~repro.obs.spans.DecisionSpan`
  per monitor tick, suitable for JSONL export (:mod:`repro.obs.export`) and
  human rendering (:mod:`repro.obs.explain`).

Span lifecycle is strictly bracketed: ``begin_tick`` opens a span, the
``record_*`` hooks append evidence to it, ``end_tick`` freezes and stores
it.  Out-of-order calls raise :class:`~repro.errors.ObservabilityError`
rather than silently mis-attributing evidence.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import ObservabilityError
from repro.instrument import NullInstrument
from repro.obs.spans import ActionRecord, DecisionSpan, LedgerStep, MetricSample


@runtime_checkable
class Tracer(Protocol):
    """What the platform requires of a decision tracer.

    Any object with these members plugs into
    :meth:`repro.Simulation.build`'s ``tracer=`` parameter.  All hooks are
    keyword-only so traces stay self-describing and implementations can
    evolve without positional breakage.
    """

    #: ``False`` on no-op tracers: instrumented code may skip building
    #: expensive evidence (digests, detail strings) when this is unset.
    enabled: bool

    def begin_tick(
        self, *, now: float, policy: str, digest: str, services: int, nodes: int, replicas: int
    ) -> None:
        """Open the span for one monitor tick."""
        ...  # pragma: no cover - protocol stub

    def record_metric(
        self, *, service: str, metric: str, value: float, threshold: float, verdict: str
    ) -> None:
        """Record one service-level metric-vs-threshold comparison."""
        ...  # pragma: no cover - protocol stub

    def record_ledger(
        self,
        *,
        op: str,
        node: str,
        service: str = "",
        cpu: float = 0.0,
        memory: float = 0.0,
        network: float = 0.0,
    ) -> None:
        """Record one provisional ledger mutation (take/release/plan)."""
        ...  # pragma: no cover - protocol stub

    def record_action(
        self,
        *,
        kind: str,
        service: str,
        target: str = "",
        reason: str = "",
        metric: str = "",
        value: float = 0.0,
        threshold: float = 0.0,
        detail: str = "",
    ) -> None:
        """Record one emitted action and the evidence that triggered it."""
        ...  # pragma: no cover - protocol stub

    def end_tick(self, *, emitted: int, applied: int, failed: int) -> None:
        """Close the span with the monitor's execution tallies."""
        ...  # pragma: no cover - protocol stub


class NullTracer(NullInstrument):
    """The zero-overhead default: every hook is a no-op.

    ``enabled``/statelessness come from the shared
    :class:`~repro.instrument.NullInstrument` discipline.
    """

    __slots__ = ()

    def begin_tick(
        self, *, now: float, policy: str, digest: str, services: int, nodes: int, replicas: int
    ) -> None:
        """No-op."""

    def record_metric(
        self, *, service: str, metric: str, value: float, threshold: float, verdict: str
    ) -> None:
        """No-op."""

    def record_ledger(
        self,
        *,
        op: str,
        node: str,
        service: str = "",
        cpu: float = 0.0,
        memory: float = 0.0,
        network: float = 0.0,
    ) -> None:
        """No-op."""

    def record_action(
        self,
        *,
        kind: str,
        service: str,
        target: str = "",
        reason: str = "",
        metric: str = "",
        value: float = 0.0,
        threshold: float = 0.0,
        detail: str = "",
    ) -> None:
        """No-op."""

    def end_tick(self, *, emitted: int, applied: int, failed: int) -> None:
        """No-op."""


#: Shared default instance — NullTracer is stateless, so one is enough.
NULL_TRACER = NullTracer()


class DecisionTracer:
    """Records one :class:`DecisionSpan` per monitor tick."""

    enabled = True

    def __init__(self) -> None:
        self._spans: list[DecisionSpan] = []
        self._open: DecisionSpan | None = None
        self._metrics: list[MetricSample] = []
        self._ledger: list[LedgerStep] = []
        self._actions: list[ActionRecord] = []

    # ------------------------------------------------------------------
    # Tracer hooks
    # ------------------------------------------------------------------
    def begin_tick(
        self, *, now: float, policy: str, digest: str, services: int, nodes: int, replicas: int
    ) -> None:
        """Open the span for one monitor tick (must not already be open)."""
        if self._open is not None:
            raise ObservabilityError(
                f"begin_tick at t={now} while the t={self._open.now} span is still open"
            )
        self._open = DecisionSpan(
            now=now, policy=policy, digest=digest, services=services, nodes=nodes, replicas=replicas
        )
        self._metrics.clear()
        self._ledger.clear()
        self._actions.clear()

    def record_metric(
        self, *, service: str, metric: str, value: float, threshold: float, verdict: str
    ) -> None:
        """Append one metric comparison to the open span."""
        self._require_open("record_metric")
        self._metrics.append(
            MetricSample(
                service=service, metric=metric, value=value, threshold=threshold, verdict=verdict
            )
        )

    def record_ledger(
        self,
        *,
        op: str,
        node: str,
        service: str = "",
        cpu: float = 0.0,
        memory: float = 0.0,
        network: float = 0.0,
    ) -> None:
        """Append one ledger step to the open span."""
        self._require_open("record_ledger")
        self._ledger.append(
            LedgerStep(op=op, node=node, service=service, cpu=cpu, memory=memory, network=network)
        )

    def record_action(
        self,
        *,
        kind: str,
        service: str,
        target: str = "",
        reason: str = "",
        metric: str = "",
        value: float = 0.0,
        threshold: float = 0.0,
        detail: str = "",
    ) -> None:
        """Append one emitted action to the open span."""
        self._require_open("record_action")
        self._actions.append(
            ActionRecord(
                kind=kind,
                service=service,
                target=target,
                reason=reason,
                metric=metric,
                value=value,
                threshold=threshold,
                detail=detail,
            )
        )

    def end_tick(self, *, emitted: int, applied: int, failed: int) -> None:
        """Freeze the open span and append it to :meth:`spans`."""
        head = self._require_open("end_tick")
        self._spans.append(
            DecisionSpan(
                now=head.now,
                policy=head.policy,
                digest=head.digest,
                services=head.services,
                nodes=head.nodes,
                replicas=head.replicas,
                metrics=tuple(self._metrics),
                ledger=tuple(self._ledger),
                actions=tuple(self._actions),
                emitted=emitted,
                applied=applied,
                failed=failed,
            )
        )
        self._open = None
        self._metrics.clear()
        self._ledger.clear()
        self._actions.clear()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def spans(self) -> tuple[DecisionSpan, ...]:
        """All completed spans, in tick order."""
        return tuple(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        """Drop all completed spans (an open span, if any, stays open)."""
        self._spans.clear()

    # ------------------------------------------------------------------
    def _require_open(self, hook: str) -> DecisionSpan:
        if self._open is None:
            raise ObservabilityError(f"{hook} called outside a begin_tick/end_tick bracket")
        return self._open
