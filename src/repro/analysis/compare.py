"""Multi-run comparison reports.

Bundles one workload's runs under every algorithm into a single object with
the paper's derived quantities (speedups vs. Kubernetes, failure
reductions, availability floor) plus a printable table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.speedup import failure_reduction, response_speedup
from repro.errors import ExperimentError
from repro.experiments.report import comparison_table
from repro.metrics.summary import RunSummary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.parallel.result import SweepResult


@dataclass(frozen=True)
class ComparisonReport:
    """All algorithms' results on one workload, plus derived metrics."""

    workload: str
    summaries: dict[str, RunSummary]
    baseline: str = "kubernetes"

    def __post_init__(self) -> None:
        if self.baseline not in self.summaries:
            raise ExperimentError(f"baseline {self.baseline!r} not among runs")

    def speedups(self) -> dict[str, float]:
        """Response-time speedup of each algorithm over the baseline."""
        base = self.summaries[self.baseline]
        return {name: response_speedup(s, base) for name, s in self.summaries.items()}

    def failure_reductions(self) -> dict[str, float]:
        """Failure-rate reduction factor of each algorithm over the baseline."""
        base = self.summaries[self.baseline]
        return {name: failure_reduction(s, base) for name, s in self.summaries.items()}

    def fastest(self) -> str:
        """Algorithm with the lowest user-traffic average response time."""
        return min(self.summaries, key=lambda n: self.summaries[n].user_avg_response_time)

    def most_available(self) -> str:
        """Algorithm with the fewest failed user requests (ties by name)."""
        return min(
            sorted(self.summaries),
            key=lambda n: self.summaries[n].user_percent_failed,
        )

    def availability_floor(self) -> float:
        """Worst user-traffic availability across algorithms (the paper's
        >= 99.8% check applies to Kubernetes/HyScale on CPU loads)."""
        return min(s.user_availability for s in self.summaries.values())

    def to_table(self) -> str:
        """Printable Figures-6-to-8-style table."""
        return comparison_table(self.summaries, title=self.workload)


def compare_runs(workload: str, summaries: dict[str, RunSummary], baseline: str = "kubernetes") -> ComparisonReport:
    """Build a :class:`ComparisonReport`, validating the inputs."""
    if not summaries:
        raise ExperimentError("no runs to compare")
    labels = {s.workload for s in summaries.values()}
    if len(labels) > 1:
        raise ExperimentError(f"runs come from different workloads: {sorted(labels)}")
    return ComparisonReport(workload=workload, summaries=dict(summaries), baseline=baseline)


def compare_sweep(result: SweepResult, baseline: str = "kubernetes") -> dict[str, ComparisonReport]:
    """One :class:`ComparisonReport` per workload label of a sweep result.

    Groups the shards of a :class:`~repro.parallel.SweepResult` by workload
    label and compares the algorithms within each group.  A group that does
    not contain ``baseline`` (e.g. an extensions-only sweep) falls back to
    its first algorithm in shard order, so the report still renders.
    """
    reports: dict[str, ComparisonReport] = {}
    for label, runs in result.by_label().items():
        group_baseline = baseline if baseline in runs else next(iter(runs))
        reports[label] = compare_runs(label, runs, baseline=group_baseline)
    return reports
