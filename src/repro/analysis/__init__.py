"""Cross-run analysis: speedups, crossovers, and multi-run comparison."""

from repro.analysis.compare import ComparisonReport, compare_runs, compare_sweep
from repro.analysis.stats import SeedAggregate, multi_seed, ordering_holds
from repro.analysis.timeline import allocation_efficiency, render_timeline, sparkline
from repro.analysis.speedup import (
    crossover_replicas,
    failure_reduction,
    response_speedup,
    speedup_matrix,
)

__all__ = [
    "response_speedup",
    "failure_reduction",
    "speedup_matrix",
    "crossover_replicas",
    "ComparisonReport",
    "compare_runs",
    "compare_sweep",
    "sparkline",
    "render_timeline",
    "allocation_efficiency",
    "SeedAggregate",
    "multi_seed",
    "ordering_holds",
]
