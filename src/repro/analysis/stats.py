"""Multi-seed aggregation — the paper averages every experiment over 5 runs.

:func:`multi_seed` runs one experiment factory under one algorithm for
several seeds and aggregates the figures' y-axes (mean response, failed %)
into mean ± population-std rows, so comparisons can be made the way the
paper made them instead of off a single draw.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable

from repro.errors import ExperimentError
from repro.metrics.summary import RunSummary


@dataclass(frozen=True)
class SeedAggregate:
    """Mean ± std of one algorithm's headline metrics over seeds."""

    algorithm: str
    seeds: tuple[int, ...]
    mean_response: float
    std_response: float
    mean_failed_pct: float
    std_failed_pct: float
    runs: tuple[RunSummary, ...]

    def response_interval(self, sigmas: float = 2.0) -> tuple[float, float]:
        """A +-N-sigma band around the mean response time."""
        return (
            max(0.0, self.mean_response - sigmas * self.std_response),
            self.mean_response + sigmas * self.std_response,
        )


def multi_seed(
    experiment_factory: Callable[[int], "object"],
    algorithm: str,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
) -> SeedAggregate:
    """Run ``experiment_factory(seed).run(algorithm)`` per seed and aggregate.

    ``experiment_factory`` is any callable returning an object with a
    ``run(algorithm) -> RunSummary`` method — the
    :class:`~repro.experiments.configs.ExperimentSpec` factories qualify
    directly (``lambda seed: cpu_bound("high", seed=seed)``).
    """
    if not seeds:
        raise ExperimentError("need at least one seed")
    runs = tuple(experiment_factory(seed).run(algorithm) for seed in seeds)
    responses = [r.avg_response_time for r in runs]
    failures = [r.percent_failed for r in runs]
    return SeedAggregate(
        algorithm=algorithm,
        seeds=tuple(seeds),
        mean_response=statistics.mean(responses),
        std_response=statistics.pstdev(responses),
        mean_failed_pct=statistics.mean(failures),
        std_failed_pct=statistics.pstdev(failures),
        runs=runs,
    )


def ordering_holds(
    experiment_factory: Callable[[int], "object"],
    faster: str,
    slower: str,
    seeds: tuple[int, ...] = (0, 1, 2),
) -> bool:
    """True if ``faster`` beats ``slower`` on response time at *every* seed.

    The reproduction's robustness criterion: an ordering that flips under
    reseeding is a coincidence, not a result.
    """
    for seed in seeds:
        spec = experiment_factory(seed)
        if spec.run(faster).avg_response_time >= spec.run(slower).avg_response_time:
            return False
    return True
