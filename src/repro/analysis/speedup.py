"""Speedup and crossover arithmetic — the paper's headline numbers.

The abstract claims "up to 1.49x speedups in response times for our hybrid
algorithms, and 1.69x speedups for our network algorithm under high-burst
network loads"; Section VI adds "up to 10 times fewer" failed requests and
a "59.22%" response-time drop.  These helpers compute exactly those
quantities from :class:`~repro.metrics.summary.RunSummary` pairs, and the
Figure 2/3 crossover locator used by the Section III analysis.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.experiments.section3 import ScalingPoint
from repro.metrics.summary import RunSummary


def response_speedup(candidate: RunSummary, baseline: RunSummary) -> float:
    """``baseline_rt / candidate_rt`` — >1 means the candidate is faster.

    This is the paper's "1.49x speedup" metric with Kubernetes as baseline.
    Compares the *user-traffic* view: identical to the run totals for
    single-service runs, end-to-end ingress times for application-graph
    runs (internal fan-out calls are capacity, not user latency).
    """
    if candidate.user_avg_response_time <= 0:
        raise ExperimentError("candidate has zero response time; cannot compute speedup")
    return baseline.user_avg_response_time / candidate.user_avg_response_time


def response_drop_percent(candidate: RunSummary, baseline: RunSummary) -> float:
    """Percent response-time reduction vs. baseline (the paper's 59.22%)."""
    if baseline.user_avg_response_time <= 0:
        raise ExperimentError("baseline has zero response time")
    return 100.0 * (1.0 - candidate.user_avg_response_time / baseline.user_avg_response_time)


def failure_reduction(candidate: RunSummary, baseline: RunSummary) -> float:
    """How many times fewer failures the candidate has (the paper's "10x").

    Returns ``inf`` when the candidate had zero failures but the baseline
    had some, and 1.0 when both are failure-free.
    """
    if candidate.user_requests == 0 or baseline.user_requests == 0:
        raise ExperimentError("both runs need traffic to compare failures")
    candidate_ratio = candidate.user_failed / candidate.user_requests
    baseline_ratio = baseline.user_failed / baseline.user_requests
    if candidate_ratio == 0:
        return float("inf") if baseline_ratio > 0 else 1.0
    return baseline_ratio / candidate_ratio


def speedup_matrix(summaries: dict[str, RunSummary], baseline: str = "kubernetes") -> dict[str, float]:
    """Speedup of every algorithm against one baseline."""
    if baseline not in summaries:
        raise ExperimentError(f"baseline {baseline!r} missing from summaries")
    base = summaries[baseline]
    return {name: response_speedup(s, base) for name, s in summaries.items()}


def crossover_replicas(curve_a: list[ScalingPoint], curve_b: list[ScalingPoint]) -> int | None:
    """Replica count where curve B first beats curve A (or ``None``).

    Used to locate where horizontal scaling starts to pay off on the
    Section III curves — e.g. where Figure 3's gains taper (successive
    improvements below 10 %) or where one strategy's response crosses the
    other's.
    """
    by_replicas_a = {p.replicas: p.avg_response_time for p in curve_a}
    for point in sorted(curve_b, key=lambda p: p.replicas):
        other = by_replicas_a.get(point.replicas)
        if other is not None and point.avg_response_time < other:
            return point.replicas
    return None


def taper_point(curve: list[ScalingPoint], threshold: float = 0.10) -> int | None:
    """First replica count where the marginal gain drops below ``threshold``.

    Figure 3's text: horizontal network gains "taper off at around 8
    replicas" — i.e. the first point whose improvement over the previous is
    under 10 %.
    """
    ordered = sorted(curve, key=lambda p: p.replicas)
    for prev, point in zip(ordered, ordered[1:]):
        if prev.avg_response_time <= 0:
            continue
        gain = 1.0 - point.avg_response_time / prev.avg_response_time
        if gain < threshold:
            return point.replicas
    return None
