"""Plot-free run timelines.

Renders a finished run's sampled timeline
(:class:`~repro.metrics.collector.TimelinePoint`) as unicode sparklines and
aligned text charts, so experiments are inspectable in a terminal or CI log
without any plotting dependency.  Used by the CLI's ``--timeline`` flag and
the examples.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ExperimentError
from repro.metrics.collector import TimelinePoint

#: Glyph ramp for sparklines, light to heavy.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """Render a series as a fixed-width unicode sparkline.

    Values are resampled to ``width`` points and mapped onto the block ramp
    between the series' own min and max (a flat series renders flat-low).
    """
    if not len(values):
        raise ExperimentError("cannot render an empty series")
    if width < 1:
        raise ExperimentError("width must be >= 1")
    arr = np.asarray(values, dtype=float)
    resampled = np.interp(
        np.linspace(0, len(arr) - 1, width), np.arange(len(arr)), arr
    )
    lo = float(resampled.min())
    span = float(resampled.max()) - lo
    if span <= 0:
        return _BLOCKS[1] * width
    indices = ((resampled - lo) / span * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[i] for i in indices)


def _row(label: str, values: Sequence[float], unit: str, width: int) -> str:
    arr = np.asarray(values, dtype=float)
    return (
        f"{label:<14s} [{arr.min():8.2f} .. {arr.max():8.2f}] {unit:<7s} "
        f"{sparkline(values, width)}"
    )


def render_timeline(timeline: Sequence[TimelinePoint], width: int = 72) -> str:
    """Multi-row sparkline chart of a run's cluster state over time.

    Rows: replica count, cluster CPU usage vs. allocation, memory usage,
    egress, in-flight requests, and powered machines.
    """
    if len(timeline) < 2:
        raise ExperimentError("timeline needs at least two samples to render")
    start, end = timeline[0].time, timeline[-1].time
    lines = [
        f"timeline {start:.0f}s .. {end:.0f}s ({len(timeline)} samples)",
        _row("replicas", [p.total_replicas for p in timeline], "", width),
        _row("cpu used", [p.cpu_usage for p in timeline], "cores", width),
        _row("cpu allocated", [p.cpu_allocated for p in timeline], "cores", width),
        _row("mem used", [p.mem_usage / 1024.0 for p in timeline], "GiB", width),
        _row("net egress", [p.net_usage for p in timeline], "Mbit/s", width),
        _row("in flight", [p.inflight for p in timeline], "reqs", width),
    ]
    if any(p.total_nodes for p in timeline):
        lines.append(_row("nodes on", [p.active_nodes for p in timeline], "", width))
    if any(p.window_completed for p in timeline):
        lines.append(
            _row("latency", [p.window_avg_response for p in timeline], "s", width)
        )
        lines.append(
            _row("failures", [float(p.window_failed) for p in timeline], "reqs", width)
        )
    return "\n".join(lines)


def allocation_efficiency(timeline: Sequence[TimelinePoint]) -> float:
    """Mean usage/allocation ratio over the run — the resource-efficiency
    angle of Section I (reclaiming overprovisioned resources).

    1.0 means every allocated core was busy; low values mean the scaler
    hoarded.  Samples with no allocation are skipped.
    """
    ratios = [
        p.cpu_usage / p.cpu_allocated for p in timeline if p.cpu_allocated > 0
    ]
    if not ratios:
        raise ExperimentError("timeline has no allocation samples")
    return float(np.mean(ratios))
