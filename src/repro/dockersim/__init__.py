"""Simulated Docker: per-node daemons, a cluster-wide client facade, and
``docker stats`` sampling windows."""

from repro.dockersim.api import DockerClient
from repro.dockersim.daemon import DockerDaemon
from repro.dockersim.stats import StatsSample, StatsWindow

__all__ = ["DockerClient", "DockerDaemon", "StatsSample", "StatsWindow"]
