"""``docker stats`` samples and averaging windows.

The paper's NODE MANAGERs gather "relevant resource usage information (i.e.,
CPU and memory usage) through the Docker API via 'docker stats'"
(Section V-B), and the MONITOR consumes *averages over the query period* —
Kubernetes' formulas are written over mean utilization.  So the daemon
produces instantaneous :class:`StatsSample` rows and the node manager keeps
them in a :class:`StatsWindow` that can answer "mean usage over the last
``horizon`` seconds".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import DockerSimError


@dataclass(frozen=True)
class StatsSample:
    """One instantaneous reading for one container."""

    timestamp: float
    cpu_usage: float  # cores actually consumed
    cpu_request: float  # cores allocated (the utilization denominator)
    mem_usage: float  # MiB resident
    mem_limit: float  # MiB allocated
    net_usage: float  # Mbit/s egress
    net_rate: float  # Mbit/s guaranteed
    disk_usage: float = 0.0  # MB/s of disk I/O
    disk_quota: float = 0.0  # MB/s reference quota (not enforced)

    @property
    def cpu_utilization(self) -> float:
        """``usage / requested`` — the paper's ``utilization_r`` (may exceed 1)."""
        return self.cpu_usage / self.cpu_request if self.cpu_request > 0 else 0.0

    @property
    def mem_utilization(self) -> float:
        """Memory analogue of :attr:`cpu_utilization`."""
        return self.mem_usage / self.mem_limit if self.mem_limit > 0 else 0.0

    @property
    def net_utilization(self) -> float:
        """Network analogue of :attr:`cpu_utilization`."""
        return self.net_usage / self.net_rate if self.net_rate > 0 else 0.0

    @property
    def disk_utilization(self) -> float:
        """Disk analogue of :attr:`cpu_utilization` (vs. the soft quota)."""
        return self.disk_usage / self.disk_quota if self.disk_quota > 0 else 0.0


class StatsWindow:
    """Bounded history of samples with trailing-mean queries."""

    def __init__(self, horizon: float = 30.0):
        if horizon <= 0:
            raise DockerSimError(f"horizon must be positive, got {horizon}")
        self.horizon = float(horizon)
        self._samples: deque[StatsSample] = deque()

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, sample: StatsSample) -> None:
        """Append a sample and evict anything older than the horizon."""
        if self._samples and sample.timestamp < self._samples[-1].timestamp:
            raise DockerSimError("samples must be recorded in time order")
        self._samples.append(sample)
        cutoff = sample.timestamp - self.horizon
        while self._samples and self._samples[0].timestamp < cutoff:
            self._samples.popleft()

    def latest(self) -> StatsSample | None:
        """Most recent sample, or ``None`` when empty."""
        return self._samples[-1] if self._samples else None

    def _recent(self, since: float) -> list[StatsSample]:
        return [s for s in self._samples if s.timestamp >= since]

    def mean_over(self, window: float) -> StatsSample | None:
        """Mean of each field over the trailing ``window`` seconds.

        Allocation fields (requests/limits) take the *latest* value — they
        are configuration, not signal — while usages are averaged, matching
        how the Kubernetes controller computes utilization.
        """
        latest = self.latest()
        if latest is None:
            return None
        recent = self._recent(latest.timestamp - window)
        n = len(recent)
        return StatsSample(
            timestamp=latest.timestamp,
            cpu_usage=sum(s.cpu_usage for s in recent) / n,
            cpu_request=latest.cpu_request,
            mem_usage=sum(s.mem_usage for s in recent) / n,
            mem_limit=latest.mem_limit,
            net_usage=sum(s.net_usage for s in recent) / n,
            net_rate=latest.net_rate,
            disk_usage=sum(s.disk_usage for s in recent) / n,
            disk_quota=latest.disk_quota,
        )
