"""Per-node simulated Docker daemon.

Exposes the four verbs the platform uses against real Docker:

* ``docker run``   -> :meth:`DockerDaemon.run` (with boot delay),
* ``docker update``-> :meth:`DockerDaemon.update` (vertical scaling of CPU
  shares / memory limit, plus tc reshaping for network),
* ``docker rm -f`` -> :meth:`DockerDaemon.remove`,
* ``docker stats`` -> :meth:`DockerDaemon.stats`.

``update`` enforces that total *reservations* stay within node capacity.
Real Docker would happily oversubscribe shares; our platform treats requests
as reservations (as Kubernetes does), and HyScale's equations explicitly cap
acquisitions at node availability — so the daemon is where policy bugs that
overshoot get caught.
"""

from __future__ import annotations

from repro.cluster.container import Container
from repro.cluster.node import Node
from repro.cluster.resources import ResourceVector
from repro.dockersim.stats import StatsSample
from repro.errors import CapacityError, ContainerNotFound, ContainerStateError
from repro.workloads.requests import Request


class DockerDaemon:
    """The Docker engine on one node."""

    def __init__(self, node: Node):
        self.node = node

    # ------------------------------------------------------------------
    # docker run
    # ------------------------------------------------------------------
    def run(
        self,
        service: str,
        replica_index: int,
        *,
        cpu_request: float,
        mem_limit: float,
        net_rate: float,
        now: float,
        boot_delay: float = 0.0,
        max_concurrency: int = 16,
        disk_quota: float = 50.0,
        enforce_capacity: bool = True,
        container_id: str | None = None,
    ) -> Container:
        """Create and host a container; it serves traffic once booted."""
        container = self.node.make_container(
            service,
            replica_index,
            cpu_request=cpu_request,
            mem_limit=mem_limit,
            net_rate=net_rate,
            created_at=now,
            boot_delay=boot_delay,
            max_concurrency=max_concurrency,
            disk_quota=disk_quota,
            container_id=container_id,
        )
        self.node.add_container(container, enforce_capacity=enforce_capacity)
        return container

    def adopt(self, container: Container, *, enforce_capacity: bool = True) -> None:
        """Host an externally built container (stress containers in tests)."""
        self.node.add_container(container, enforce_capacity=enforce_capacity)

    # ------------------------------------------------------------------
    # docker update
    # ------------------------------------------------------------------
    def update(
        self,
        container_id: str,
        *,
        cpu_request: float | None = None,
        mem_limit: float | None = None,
        net_rate: float | None = None,
        enforce_capacity: bool = True,
    ) -> Container:
        """Vertically rescale a container in place.

        CPU maps to ``docker update --cpu-shares``, memory to ``--memory``;
        network has no Docker verb (Section III-C), so it goes through the
        NIC's tc classes instead.
        """
        container = self._get(container_id)
        if not container.is_active:
            raise ContainerStateError(f"cannot update {container_id} in state {container.state}")

        new_cpu = container.cpu_request if cpu_request is None else float(cpu_request)
        new_mem = container.mem_limit if mem_limit is None else float(mem_limit)
        new_net = container.net_rate if net_rate is None else float(net_rate)
        if new_cpu < 0 or new_mem <= 0 or new_net < 0:
            raise ContainerStateError("updated allocations must satisfy cpu>=0, memory>0, network>=0")

        if enforce_capacity:
            others = self.node.allocated() - _reservation(container)
            total_cpu = others.cpu + new_cpu
            total_mem = others.memory + new_mem
            total_net = others.network + new_net
            cap = self.node.capacity
            if total_cpu > cap.cpu + 1e-9 or total_mem > cap.memory + 1e-9 or total_net > cap.network + 1e-9:
                raise CapacityError(
                    f"update of {container_id} would oversubscribe node {self.node.name}"
                )

        container.cpu_request = new_cpu
        container.mem_limit = new_mem
        if net_rate is not None:
            self.node.reshape_network(container_id, new_net)
        return container

    # ------------------------------------------------------------------
    # docker rm -f
    # ------------------------------------------------------------------
    def remove(self, container_id: str, now: float) -> list[Request]:
        """Force-remove a container; in-flight requests fail as removals."""
        self._get(container_id)
        container = self.node.remove_container(container_id, now)
        return [r for r in container.drain_finished()]

    # ------------------------------------------------------------------
    # docker stats
    # ------------------------------------------------------------------
    def stats(self, container_id: str, now: float) -> StatsSample:
        """Instantaneous usage reading for one container."""
        container = self._get(container_id)
        return StatsSample(
            timestamp=now,
            cpu_usage=container.cpu_usage,
            cpu_request=container.cpu_request,
            mem_usage=container.mem_usage,
            mem_limit=container.mem_limit,
            net_usage=container.net_usage,
            net_rate=container.net_rate,
            disk_usage=container.disk_usage,
            disk_quota=container.disk_quota,
        )

    def ps(self) -> list[Container]:
        """Active containers on this node (``docker ps``)."""
        return self.node.active_containers()

    def reap_oom_kills(self, now: float) -> list[Container]:
        """Clear kernel-killed containers off the node; return the corpses."""
        if not self.node.maybe_oom_kills():
            return []
        reaped = []
        for container in list(self.node.containers.values()):
            if container.state.name == "OOM_KILLED":
                self.node.remove_container(container.container_id, now)
                reaped.append(container)
        return reaped

    # ------------------------------------------------------------------
    def _get(self, container_id: str) -> Container:
        container = self.node.containers.get(container_id)
        if container is None:
            raise ContainerNotFound(f"no container {container_id} on node {self.node.name}")
        return container


def _reservation(container: Container) -> ResourceVector:
    """The reservation vector a container holds against its node."""
    return ResourceVector(container.cpu_request, container.mem_limit, container.net_rate)
